"""A GLR (generalized LR) parser driven by SLR(1) tables — the Bison stand-in.

The paper's fastest baseline is Bison run in GLR mode (Section 4.1): an
LR-table-driven parser that, on conflicts, forks its stack instead of failing,
maintaining a *graph-structured stack* (GSS, Tomita's algorithm / Lang 1974).
This module implements that driver in Python over the tables built by
:mod:`repro.glr.lr`:

* each input position has a frontier of GSS nodes labelled with LR states,
* all applicable reductions (including chains of reductions enabled by other
  reductions) are performed to a fixed point before the next token is shifted,
* shift actions advance every surviving stack top in lockstep, and
* the input is accepted when, with the end-of-input lookahead, some stack top
  reaches the accept action.

The driver recognizes; tree building for GLR requires packed parse forests,
which are outside what the paper's evaluation needs from this baseline (it
measures parse time).  ``parse_count`` exposes a derivation check used by the
tests to confirm ambiguity is explored.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..cfg.grammar import END_OF_INPUT, Grammar
from ..core.errors import ParseError
from ..core.languages import token_kind
from .lr import Accept, LRTable, Reduce, Shift, build_slr_table

__all__ = ["GLRParser", "GSSNode"]


class GSSNode:
    """A node of the graph-structured stack: an LR state within one frontier."""

    __slots__ = ("state", "predecessors")

    def __init__(self, state: int) -> None:
        self.state = state
        self.predecessors: Set["GSSNode"] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "GSSNode(state={}, preds={})".format(self.state, len(self.predecessors))


class GLRParser:
    """Generalized LR recognition over a (possibly conflicting) SLR(1) table."""

    def __init__(self, grammar: Grammar, table: Optional[LRTable] = None) -> None:
        self.source_grammar = grammar
        self.table = table if table is not None else build_slr_table(grammar)

    # ------------------------------------------------------------------ API
    def recognize(self, tokens: Sequence[Any]) -> bool:
        """True when the token sequence is in the grammar's language."""
        try:
            self._run(tokens)
        except ParseError:
            return False
        return True

    def parse_check(self, tokens: Sequence[Any]) -> bool:
        """Alias of :meth:`recognize` (kept for API symmetry with the others)."""
        return self.recognize(tokens)

    def conflicts(self) -> Tuple[int, int]:
        """(shift/reduce, reduce/reduce) conflict counts of the underlying table."""
        return self.table.conflicts()

    # ------------------------------------------------------------------ core
    def _run(self, tokens: Sequence[Any]) -> None:
        frontier: Dict[int, GSSNode] = {0: GSSNode(0)}

        for position, tok in enumerate(tokens):
            lookahead = token_kind(tok)
            self._reduce_frontier(frontier, lookahead)
            frontier = self._shift_frontier(frontier, lookahead)
            if not frontier:
                raise ParseError("unexpected token", position=position, token=tok)

        self._reduce_frontier(frontier, END_OF_INPUT)
        for node in frontier.values():
            for action in self.table.action[node.state].get(END_OF_INPUT, ()):
                if isinstance(action, Accept):
                    return
        raise ParseError("unexpected end of input", position=len(tokens))

    # ------------------------------------------------------------ reductions
    def _reduce_frontier(self, frontier: Dict[int, GSSNode], lookahead: Any) -> None:
        """Perform every reduction applicable with ``lookahead`` to a fixed point.

        New GSS nodes (and new edges into existing nodes) created by one
        reduction can enable further reductions, so the worklist keeps
        processing until the frontier stabilizes.
        """
        worklist: List[GSSNode] = list(frontier.values())
        while worklist:
            node = worklist.pop()
            for action in self.table.action[node.state].get(lookahead, ()):
                if not isinstance(action, Reduce):
                    continue
                production = action.production
                for base in self._paths(node, len(production.rhs)):
                    goto_state = self.table.goto[base.state].get(production.lhs)
                    if goto_state is None:
                        continue
                    existing = frontier.get(goto_state)
                    if existing is None:
                        fresh = GSSNode(goto_state)
                        fresh.predecessors.add(base)
                        frontier[goto_state] = fresh
                        worklist.append(fresh)
                    elif base not in existing.predecessors:
                        existing.predecessors.add(base)
                        # A new path into an existing node can enable new
                        # reductions both from it and from any frontier node
                        # whose pop path runs through it; conservatively
                        # revisit the whole frontier (Nozohoor-Farshi's fix to
                        # Tomita's algorithm).
                        worklist.extend(frontier.values())

    def _paths(self, node: GSSNode, length: int) -> Iterable[GSSNode]:
        """Every GSS node reachable by walking exactly ``length`` edges back."""
        if length == 0:
            return [node]
        current: Set[GSSNode] = {node}
        for _ in range(length):
            nxt: Set[GSSNode] = set()
            for item in current:
                nxt.update(item.predecessors)
            current = nxt
            if not current:
                break
        return current

    # ---------------------------------------------------------------- shifts
    def _shift_frontier(
        self, frontier: Dict[int, GSSNode], lookahead: Any
    ) -> Dict[int, GSSNode]:
        successors: Dict[int, GSSNode] = {}
        for node in frontier.values():
            for action in self.table.action[node.state].get(lookahead, ()):
                if not isinstance(action, Shift):
                    continue
                target = successors.get(action.state)
                if target is None:
                    target = GSSNode(action.state)
                    successors[action.state] = target
                target.predecessors.add(node)
        return successors
