"""GLR parser baseline (stand-in for Bison in GLR mode)."""

from .lr import Accept, LRItem, LRTable, Reduce, Shift, build_slr_table
from .parser import GLRParser, GSSNode

__all__ = [
    "GLRParser",
    "GSSNode",
    "LRTable",
    "LRItem",
    "Shift",
    "Reduce",
    "Accept",
    "build_slr_table",
]
