"""LR(0) automaton and SLR(1) parse-table construction.

Bison — the paper's third baseline — builds an LALR(1) (or, in GLR mode, a
possibly conflicting LALR(1)) table and drives it with a graph-structured
stack.  This module provides the table half of that pipeline:

* LR(0) items, closures and the canonical collection of item sets,
* SLR(1) ACTION/GOTO tables, where each ACTION cell holds a *list* of actions
  so that shift/reduce and reduce/reduce conflicts are preserved rather than
  rejected (GLR explores all of them), and
* conflict reporting, mirroring Bison's ``N shift/reduce, M reduce/reduce``
  summary (the paper reports 92 shift/reduce and 4 reduce/reduce conflicts for
  its Python grammar).

SLR(1) lookaheads are slightly weaker than Bison's LALR(1), which only means
our tables contain a few more conflicts; the GLR driver resolves them by
exploring both alternatives, so the recognized language is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..cfg.analyses import follow_sets
from ..cfg.grammar import END_OF_INPUT, Grammar, Nonterminal, Production

__all__ = [
    "LRItem",
    "Shift",
    "Reduce",
    "Accept",
    "LRTable",
    "build_slr_table",
]


@dataclass(frozen=True)
class LRItem:
    """An LR(0) item ``A → α • β`` identified by production index and dot."""

    production: Production
    dot: int

    @property
    def next_symbol(self) -> Optional[Any]:
        if self.dot < len(self.production.rhs):
            return self.production.rhs[self.dot]
        return None

    @property
    def is_complete(self) -> bool:
        return self.dot >= len(self.production.rhs)

    def advanced(self) -> "LRItem":
        return LRItem(self.production, self.dot + 1)

    def __str__(self) -> str:
        before = " ".join(str(s) for s in self.production.rhs[: self.dot])
        after = " ".join(str(s) for s in self.production.rhs[self.dot :])
        return "{} → {} • {}".format(self.production.lhs, before, after)


@dataclass(frozen=True)
class Shift:
    """Shift the lookahead token and go to ``state``."""

    state: int


@dataclass(frozen=True)
class Reduce:
    """Reduce by ``production``."""

    production: Production


@dataclass(frozen=True)
class Accept:
    """Accept the input."""


class LRTable:
    """SLR(1) ACTION/GOTO tables with conflicts preserved.

    ``action[state][terminal]`` is a list of :class:`Shift` / :class:`Reduce` /
    :class:`Accept` actions (more than one entry means a conflict), and
    ``goto[state][nonterminal_name]`` is the successor state.
    """

    def __init__(
        self,
        grammar: Grammar,
        states: List[FrozenSet[LRItem]],
        action: List[Dict[Any, List[Any]]],
        goto: List[Dict[str, int]],
    ) -> None:
        self.grammar = grammar
        self.states = states
        self.action = action
        self.goto = goto

    @property
    def state_count(self) -> int:
        return len(self.states)

    def conflicts(self) -> Tuple[int, int]:
        """Return ``(shift_reduce, reduce_reduce)`` conflict counts."""
        shift_reduce = 0
        reduce_reduce = 0
        for row in self.action:
            for actions in row.values():
                if len(actions) < 2:
                    continue
                shifts = sum(1 for act in actions if isinstance(act, Shift))
                reduces = sum(1 for act in actions if isinstance(act, Reduce))
                if shifts and reduces:
                    shift_reduce += 1
                if reduces >= 2:
                    reduce_reduce += 1
        return shift_reduce, reduce_reduce

    def is_deterministic(self) -> bool:
        """True when no cell holds more than one action (plain LR parsing works)."""
        return all(len(actions) <= 1 for row in self.action for actions in row.values())

    def describe(self) -> str:
        """A compact human-readable summary (state and conflict counts)."""
        shift_reduce, reduce_reduce = self.conflicts()
        return "LR table: {} states, {} shift/reduce and {} reduce/reduce conflicts".format(
            self.state_count, shift_reduce, reduce_reduce
        )


def _closure(items: Set[LRItem], grammar: Grammar) -> FrozenSet[LRItem]:
    closure = set(items)
    worklist = list(items)
    while worklist:
        item = worklist.pop()
        symbol = item.next_symbol
        if isinstance(symbol, Nonterminal):
            for production in grammar.productions_for(symbol.name):
                new_item = LRItem(production, 0)
                if new_item not in closure:
                    closure.add(new_item)
                    worklist.append(new_item)
    return frozenset(closure)


def _goto(items: FrozenSet[LRItem], symbol: Any, grammar: Grammar) -> FrozenSet[LRItem]:
    moved = {
        item.advanced()
        for item in items
        if item.next_symbol is not None and _symbols_equal(item.next_symbol, symbol)
    }
    if not moved:
        return frozenset()
    return _closure(moved, grammar)


def _symbols_equal(left: Any, right: Any) -> bool:
    return left == right


def build_slr_table(grammar: Grammar) -> LRTable:
    """Build the SLR(1) parse table for ``grammar`` (augmenting it first)."""
    grammar.validate()
    augmented = grammar.augmented()
    start_production = augmented.productions_for(augmented.start)[0]

    initial = _closure({LRItem(start_production, 0)}, augmented)
    states: List[FrozenSet[LRItem]] = [initial]
    state_index: Dict[FrozenSet[LRItem], int] = {initial: 0}
    transitions: Dict[Tuple[int, Any], int] = {}

    # Symbols over which transitions exist: every terminal and non-terminal.
    symbols: List[Any] = list(augmented.terminals) + [
        Nonterminal(name) for name in augmented.nonterminals
    ]

    worklist = [0]
    while worklist:
        index = worklist.pop()
        for symbol in symbols:
            successor = _goto(states[index], symbol, augmented)
            if not successor:
                continue
            if successor not in state_index:
                state_index[successor] = len(states)
                states.append(successor)
                worklist.append(state_index[successor])
            transitions[(index, _transition_key(symbol))] = state_index[successor]

    follow = follow_sets(augmented)
    action: List[Dict[Any, List[Any]]] = [dict() for _ in states]
    goto_table: List[Dict[str, int]] = [dict() for _ in states]

    for (index, symbol_key), target in transitions.items():
        if isinstance(symbol_key, tuple) and symbol_key[0] == "__nt__":
            goto_table[index][symbol_key[1]] = target
        else:
            action[index].setdefault(symbol_key, []).append(Shift(target))

    for index, items in enumerate(states):
        for item in items:
            if not item.is_complete:
                continue
            if item.production.lhs == augmented.start:
                action[index].setdefault(END_OF_INPUT, []).append(Accept())
                continue
            for lookahead in follow[item.production.lhs]:
                action[index].setdefault(lookahead, []).append(Reduce(item.production))

    # Deduplicate identical actions (a cell can receive the same reduce twice
    # through different FOLLOW paths).
    for row in action:
        for key, actions in row.items():
            unique: List[Any] = []
            for act in actions:
                if act not in unique:
                    unique.append(act)
            row[key] = unique

    return LRTable(augmented, states, action, goto_table)


def _transition_key(symbol: Any) -> Any:
    if isinstance(symbol, Nonterminal):
        return ("__nt__", symbol.name)
    return symbol
