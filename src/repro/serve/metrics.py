"""Contention-safe counters for the parsing service.

The engine's :class:`~repro.core.metrics.Metrics` is deliberately a plain
counter bag — fast, but only safe when its writers already share a lock
(the compiled table's paths do) or keep private instances.  The service
sits above many threads and an event loop, so its own bookkeeping needs an
explicitly synchronized counter type: :class:`ServiceMetrics` takes one
small lock per bump/read, which is nothing next to the parses being
counted.

Engine-level counters (derive calls, memo hits, ...) stay sharded: every
compiled table and every per-worker parser meters into its own private
:class:`~repro.core.metrics.Metrics`, and
:meth:`repro.serve.ParseService.stats` folds the shards into one aggregate
with :meth:`~repro.core.metrics.Metrics.merge` at read time — the
sharded-then-merged pattern described in :mod:`repro.core.metrics`.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["ServiceMetrics"]


#: Counter names, all starting at zero; ``snapshot()`` reports exactly these.
_COUNTERS = (
    "table_hits",
    "table_misses",
    "tables_evicted",
    "recognize_requests",
    "parse_requests",
    "batch_calls",
    "coalesced_requests",
    "sessions_opened",
    "sessions_closed",
    "sessions_evicted",
    "sessions_restored",
    "checkpoints_taken",
    "edit_requests",
    "edits_applied",
    "edit_tokens_refed",
    "dense_hits",
    "dense_fallbacks",
    "tables_warm_started",
    "tables_persisted",
    "pool_dispatches",
    "pool_retries",
    "workers_respawned",
    "enumerate_requests",
    "sample_requests",
    "trees_emitted",
    "tree_budget_clamped",
)

#: Membership view of ``_COUNTERS`` for O(1) validation before the lock.
_COUNTER_SET = frozenset(_COUNTERS)


class ServiceMetrics:
    """Locked counters for :class:`repro.serve.ParseService`.

    Every increment and read takes the instance's lock, so any number of
    worker threads plus the asyncio front door can meter through one
    instance without losing updates.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, int] = {name: 0 for name in _COUNTERS}

    def inc(self, name: str, amount: int = 1) -> None:
        """Atomically add ``amount`` to the counter ``name``.

        Unknown names fail *before* the lock with an error that lists the
        registered counters — a typo'd counter added in one layer must
        crash with a diagnosis, not a bare ``KeyError`` raised while the
        metrics lock is held inside a worker thread.
        """
        self._require_known(name)
        with self._lock:
            self._values[name] += amount

    def get(self, name: str) -> int:
        """Read one counter (atomically); unknown names raise like :meth:`inc`."""
        self._require_known(name)
        with self._lock:
            return self._values[name]

    @staticmethod
    def _require_known(name: str) -> None:
        if name not in _COUNTER_SET:
            raise ValueError(
                "unknown ServiceMetrics counter {!r}; register it in "
                "repro.serve.metrics._COUNTERS (known counters: {})".format(
                    name, ", ".join(_COUNTERS)
                )
            )

    def merge_snapshot(self, values: Dict[str, float]) -> None:
        """Fold another instance's :meth:`snapshot` into this one.

        The fleet-aggregation primitive: a pooled dispatcher collects each
        worker *process*'s counter snapshot over the wire and folds them
        into one fleet view.  Only registered counters are added; derived
        values (``table_hit_rate``) and unknown keys are ignored rather
        than raised — a snapshot from a newer worker build must fold, not
        crash the dispatcher.
        """
        with self._lock:
            for name, value in values.items():
                if name in _COUNTER_SET:
                    self._values[name] += int(value)

    def snapshot(self) -> Dict[str, float]:
        """A consistent copy of the service counters.

        ``table_hit_rate`` is included pre-computed (0.0 when nothing has
        been requested yet) because it is the number everyone asks of a
        cache.
        """
        with self._lock:
            values: Dict[str, float] = dict(self._values)
        lookups = values["table_hits"] + values["table_misses"]
        values["table_hit_rate"] = values["table_hits"] / lookups if lookups else 0.0
        return values

    def __repr__(self) -> str:
        parts = ["{}={}".format(k, v) for k, v in self.snapshot().items() if v]
        return "ServiceMetrics({})".format(", ".join(parts))
