"""Pipe transport between the pool dispatcher and its worker processes.

One worker process runs :func:`worker_main`: an inner
:class:`~repro.serve.ParseService` plus a registry of the grammars its
shard serves, reading request tuples off a duplex
:mod:`multiprocessing` pipe and answering each in arrival order.  The
dispatcher side holds one :class:`WorkerHandle` per worker: it frames
requests, tracks them until their reply arrives on a dedicated receiver
thread, bounds how many batches may be in flight (backpressure), and —
when the pipe goes quiet because the process died — hands everything
still pending to the pool's crash handler for respawn and resend.

**Wire format.**  Requests are tuples ``(tag, req_id, ...)`` with string
tags; replies are ``("ok", req_id, result, worker_ns)`` or
``("err", req_id, message, worker_ns)`` where ``worker_ns`` is the
worker-side handling time (filed into request traces as a ``worker``
span).  Batch payloads are **pre-pickled bytes**, not live objects, for
two reasons: the dispatcher can cache an encoding and replay it across
calls (:class:`repro.serve.pool.PreparedBatch`), and recognition batches
on kind-pure grammars are encoded as *kind strings only* — recognition
on a kind-pure table is value-insensitive (the dense core's premise),
and a bare string is its own kind, so shipping ``tok.kind`` instead of
pickling every ``Tok`` cuts the per-token wire cost by ~60× (measured;
the difference between the pool beating the in-process service and
losing to it).  Parse batches always carry the real tokens — trees hold
token values.

**Delivery contract.**  Within one live worker process the pipe is FIFO,
so a grammar registration sent before a batch is always applied before
it.  Across a crash the handle's pending set is replayed by the pool;
a request caught mid-send during the crash window may be delivered
twice, which is safe (recognition and tree extraction are pure) — the
duplicate reply finds no pending entry and is dropped.
"""

from __future__ import annotations

import itertools
import os
import pickle
import signal
import threading
from collections import OrderedDict
from concurrent.futures import Future
from time import perf_counter_ns
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..compile.serialize import dump_table
from ..core.errors import ReproError
from ..core.languages import token_kind
from .service import ParseService
from .store import TableStore

__all__ = [
    "WorkerCrashed",
    "WorkerError",
    "WorkerHandle",
    "PendingRequest",
    "encode_recognize_payload",
    "encode_parse_payload",
    "decode_recognize_payload",
    "worker_main",
]

#: Pickle protocol for everything crossing the pipe (payloads and frames).
WIRE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Decoded recognize payloads a worker memoizes (a PreparedBatch replayed
#: against the same worker decodes once, not per call).
_DECODE_CACHE_SIZE = 8


class WorkerError(ReproError):
    """A worker process answered a request with an error (request-scoped).

    The remote exception's type and message, re-raised dispatcher-side for
    the one request that caused it; the worker itself is still healthy and
    keeps serving.
    """


class WorkerCrashed(ReproError):
    """A request could not complete because its worker died too many times.

    Raised from a pending request's future when the pool's resend budget
    (``max_retries``) is exhausted — every retry landed on a worker that
    died before answering.
    """


# --------------------------------------------------------------------------
# payload encoding
# --------------------------------------------------------------------------

def _kinds_only(streams: Sequence[Sequence[Any]]) -> Optional[List[List[str]]]:
    """The batch as kind-string rows, or None when any kind is not a string."""
    rows: List[List[str]] = []
    for stream in streams:
        row: List[str] = []
        for token in stream:
            kind = token_kind(token)
            if not isinstance(kind, str):
                return None
            row.append(kind)
        rows.append(row)
    return rows


def encode_recognize_payload(streams: Sequence[Sequence[Any]], pure: bool) -> bytes:
    """Encode a recognition batch for the wire.

    On a kind-pure grammar the streams ship as kind strings (value-free,
    ~60× cheaper to pickle than token objects; sound because kind-pure
    recognition never reads a value and a bare string is its own kind).
    Impure grammars — and exotic tokens with non-string kinds — fall back
    to shipping the tokens themselves.
    """
    if pure:
        rows = _kinds_only(streams)
        if rows is not None:
            return pickle.dumps(("kinds", rows), WIRE_PROTOCOL)
    return pickle.dumps(("toks", [list(stream) for stream in streams]), WIRE_PROTOCOL)


def encode_parse_payload(streams: Sequence[Sequence[Any]]) -> bytes:
    """Encode a parse batch (always the real tokens — trees carry values)."""
    return pickle.dumps(("toks", [list(stream) for stream in streams]), WIRE_PROTOCOL)


def decode_recognize_payload(
    payload: bytes, cache: "Optional[OrderedDict[bytes, List[List[Any]]]]" = None
) -> List[List[Any]]:
    """Decode a recognition payload (worker side), through ``cache`` if given.

    ``kinds`` rows decode to lists of bare strings, which the engines
    treat as tokens whose kind is the string itself.  The cache keys on
    the payload bytes, so a :class:`~repro.serve.pool.PreparedBatch`
    replayed at a worker unpickles once.
    """
    if cache is not None:
        hit = cache.get(payload)
        if hit is not None:
            cache.move_to_end(payload)
            return hit
    _tag, streams = pickle.loads(payload)
    if cache is not None:
        cache[payload] = streams
        while len(cache) > _DECODE_CACHE_SIZE:
            cache.popitem(last=False)
    return streams


# --------------------------------------------------------------------------
# worker process
# --------------------------------------------------------------------------

def worker_main(conn: Any, store_root: str, threads: int, index: int) -> None:
    """One pool worker: serve requests off ``conn`` until ``bye`` or EOF.

    Runs an inner :class:`ParseService` (``threads`` threads — usually 1;
    process-level parallelism is the pool's job) and a registry of the
    shard's grammars, keyed by fingerprint.  Requests are handled strictly
    in arrival order, so a registration always precedes the batches that
    rely on it.  SIGINT is ignored — shutdown is the dispatcher's ``bye``
    (or its ``terminate()``), never an inherited Ctrl-C.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    store = TableStore(store_root)
    service = ParseService(workers=threads)
    grammars: Dict[str, Any] = {}
    decode_cache: "OrderedDict[bytes, List[List[Any]]]" = OrderedDict()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "bye":
                break
            req_id = message[1]
            started = perf_counter_ns()
            try:
                result = _handle(message, service, store, grammars, decode_cache)
            except BaseException as exc:  # noqa: BLE001 - the reply IS the report
                reply = (
                    "err",
                    req_id,
                    "{}: {}".format(type(exc).__name__, exc),
                    perf_counter_ns() - started,
                )
            else:
                reply = ("ok", req_id, result, perf_counter_ns() - started)
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        service.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


def _handle(
    message: Tuple[Any, ...],
    service: ParseService,
    store: TableStore,
    grammars: Dict[str, Any],
    decode_cache: "OrderedDict[bytes, List[List[Any]]]",
) -> Any:
    """Dispatch one request tuple to the worker's inner service."""
    tag = message[0]
    if tag == "rec":
        _tag, _req_id, fingerprint, payload = message
        streams = decode_recognize_payload(payload, decode_cache)
        return service.recognize_many(_grammar(grammars, fingerprint), streams)
    if tag == "par":
        _tag, _req_id, fingerprint, payload = message
        _enc, streams = pickle.loads(payload)
        return service.parse_many(_grammar(grammars, fingerprint), streams)
    if tag == "enu":
        # Ranked enumeration: the ranking crosses the wire by registered
        # name (rankings are code, not data); ``k`` arrives pre-clamped by
        # the dispatcher so this worker's own budget never re-clamps it.
        _tag, _req_id, fingerprint, payload, k, ranking_name = message
        _enc, streams = pickle.loads(payload)
        return service.enumerate_many(
            _grammar(grammars, fingerprint), streams, k=k, ranking=ranking_name
        )
    if tag == "sam":
        # ``seed`` is already offset by the chunk's start index, so the
        # worker's per-stream ``seed + i`` reproduces the exact global
        # ``seed + stream_index`` arithmetic of the in-process service.
        _tag, _req_id, fingerprint, payload, n, seed = message
        _enc, streams = pickle.loads(payload)
        return service.sample_many(
            _grammar(grammars, fingerprint), streams, n=n, seed=seed
        )
    if tag == "reg":
        _tag, _req_id, fingerprint, blob, table_path = message
        if fingerprint in grammars:
            entry = service.tables.peek(fingerprint)
            return {
                "pure": entry.table.pure if entry is not None else True,
                "warm_loaded": False,
            }
        root = pickle.loads(blob)
        warm_loaded = False
        if table_path is not None and os.path.exists(table_path):
            # The resolver ignores the document's (post-optimization)
            # fingerprint: this path was keyed dispatcher-side by the same
            # raw-root fingerprint the registration carries.
            warm_loaded = service.warm_start([table_path], lambda _fp: root) > 0
        grammars[fingerprint] = root
        entry = service.table_for(root)
        return {"pure": entry.table.pure, "warm_loaded": warm_loaded}
    if tag == "per":
        _tag, _req_id, fingerprint = message
        entry = service.tables.peek(fingerprint)
        if entry is None:
            raise WorkerError(
                "cannot persist {}: not in this worker's table cache".format(
                    fingerprint[:12]
                )
            )
        # Requests are serialized through this loop, so no batch is
        # deriving into the table while it is being dumped.
        return store.persist_document(
            dump_table(entry.table), fingerprint, overwrite=False
        )
    if tag == "sta":
        stats = service.stats()
        stats["histograms"] = service.obs.histogram_snapshots()
        stats["pid"] = os.getpid()
        return stats
    raise WorkerError("unknown request tag {!r}".format(tag))


def _grammar(grammars: Dict[str, Any], fingerprint: str) -> Any:
    """The registered grammar for ``fingerprint`` (a crisp error when absent)."""
    try:
        return grammars[fingerprint]
    except KeyError:
        raise WorkerError(
            "grammar {} was never registered with this worker".format(fingerprint[:12])
        ) from None


# --------------------------------------------------------------------------
# dispatcher side
# --------------------------------------------------------------------------

class PendingRequest:
    """One in-flight request: its frame, its future, and its resend count."""

    __slots__ = ("message", "future", "retries")

    def __init__(self, message: Tuple[Any, ...], future: "Future[Any]", retries: int) -> None:
        self.message = message
        self.future = future
        self.retries = retries

    def __repr__(self) -> str:
        return "PendingRequest({}, retries={})".format(self.message[0], self.retries)


class WorkerHandle:
    """The dispatcher's end of one worker: framing, tracking, backpressure.

    Parameters
    ----------
    index:
        The worker's stable position in the pool (its hash-ring identity —
        respawns keep it).
    context:
        The :mod:`multiprocessing` context to spawn with.
    store_root:
        Table-store directory the worker warm-starts from.
    threads:
        Thread count of the worker's inner service.
    inflight:
        Maximum *slotted* requests (batches) in flight at once; submitting
        past it blocks the dispatcher thread — the pool's backpressure.
    on_down:
        Called (from the receiver thread) when the pipe dies outside a
        deliberate close; receives this handle.

    Locking: the send lock serializes every frame written to the pipe
    *and* the crash/respawn transition, so a dispatcher thread blocked on
    it during a respawn wakes up talking to the replacement process, with
    the shard's grammars already re-registered ahead of it in the pipe.
    The pending map has its own lock so the receiver thread never waits
    behind a writer blocked on a full pipe.
    """

    def __init__(
        self,
        index: int,
        context: Any,
        store_root: str,
        threads: int,
        inflight: int,
        on_down: Callable[["WorkerHandle"], None],
    ) -> None:
        self.index = index
        self.generation = 0
        #: Fingerprints the *current* process has been sent a ``reg`` for
        #: (pool-managed; cleared on respawn).
        self.registered: set = set()
        self.process: Any = None
        self._context = context
        self._store_root = store_root
        self._threads = threads
        self._inflight = inflight
        self._on_down = on_down
        self._conn: Any = None
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: Dict[int, PendingRequest] = {}
        self._req_ids = itertools.count()
        self.slots = threading.Semaphore(inflight)
        self._closing = False

    # ------------------------------------------------------------- lifecycle
    def spawn(self) -> None:
        """Start the worker process (receiver thread started separately).

        Split from :meth:`start_receiver` so a pool booting N workers can
        fork all processes before it starts any threads — fork-after-thread
        is the pattern to avoid, not fork-then-thread.
        """
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        self.process = self._context.Process(
            target=worker_main,
            args=(child_conn, self._store_root, self._threads, self.index),
            name="repro-pool-worker-{}".format(self.index),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self._conn = parent_conn

    def start_receiver(self) -> None:
        """Start the thread that reads this generation's replies."""
        receiver = threading.Thread(
            target=self._receive_loop,
            args=(self._conn, self.generation),
            name="repro-pool-recv-{}-g{}".format(self.index, self.generation),
            daemon=True,
        )
        receiver.start()

    @property
    def pid(self) -> Optional[int]:
        """The live worker process id (None before spawn)."""
        return self.process.pid if self.process is not None else None

    def close(self, timeout: float = 5.0) -> None:
        """Politely stop the worker; escalate to terminate after ``timeout``."""
        self._closing = True
        try:
            with self._send_lock:
                self._conn.send(("bye",))
        except (OSError, AttributeError, ValueError):
            pass
        if self.process is not None:
            self.process.join(timeout)
            if self.process.is_alive():  # pragma: no cover - slow-exit fallback
                self.process.terminate()
                self.process.join(timeout)
        try:
            self._conn.close()
        except (OSError, AttributeError):
            pass
        for pending in self.take_pending():
            if not pending.future.done():
                pending.future.set_exception(
                    WorkerCrashed(
                        "worker {} closed with request still pending".format(self.index)
                    )
                )

    # ------------------------------------------------------------ submission
    def submit(
        self, tag: str, *args: Any, retries: int = 0, slot: bool = True
    ) -> "Future[Any]":
        """Frame and send one request; the future resolves to ``(result, ns)``.

        ``slot=True`` (batches) acquires one of the handle's in-flight
        slots first — blocking when the worker is ``inflight`` batches
        behind — and releases it when the future completes, whatever the
        outcome.  Control traffic (``reg``/``sta``/``per``) passes
        ``slot=False`` so it cannot deadlock behind the very batches it
        manages.
        """
        future: "Future[Any]" = Future()
        if slot:
            slots = self.slots  # bind: a respawn swaps self.slots for a fresh one
            slots.acquire()
            future.add_done_callback(lambda _f: slots.release())
        with self._send_lock:
            self._locked_send(PendingRequest((tag,) + (next(self._req_ids),) + args, future, retries))
        return future

    def _locked_send(self, pending: PendingRequest) -> None:
        """Register ``pending`` and write its frame (send lock held by caller)."""
        with self._pending_lock:
            self._pending[pending.message[1]] = pending
        try:
            self._conn.send(pending.message)
        except (BrokenPipeError, OSError, ValueError):
            # The process died under us: leave the request pending — the
            # receiver's EOF is about to hand it to the crash handler.
            pass

    def take_pending(self) -> List[PendingRequest]:
        """Drain and return every tracked in-flight request."""
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        return pending

    # ---------------------------------------------------------- reincarnation
    def reincarnate(
        self, provision: Callable[["WorkerHandle", List[PendingRequest]], None]
    ) -> None:
        """Replace a dead process, atomically with re-provisioning.

        Under the send lock: drain the pending set, reset the slot
        semaphore (drained requests keep their claim on the *old* one, so
        resends never deadlock on slots), bump the generation, spawn the
        replacement and its receiver, then run ``provision(handle,
        drained)`` — the pool re-registers the shard's grammars and
        resends the drained requests through :meth:`provision_send`.  Only
        then does the lock release, so any dispatcher thread that was
        blocked mid-submit wakes up behind the re-registrations in pipe
        order.
        """
        with self._send_lock:
            drained = self.take_pending()
            self.registered = set()
            self.slots = threading.Semaphore(self._inflight)
            self.generation += 1
            try:
                self._conn.close()
            except (OSError, AttributeError):
                pass
            self.spawn()
            self.start_receiver()
            provision(self, drained)

    def provision_send(
        self, tag: str, *args: Any, future: "Optional[Future[Any]]" = None, retries: int = 0
    ) -> "Future[Any]":
        """Send from inside a :meth:`reincarnate` provision callback.

        Identical framing to :meth:`submit` but assumes the caller already
        holds the send lock and never touches the slot semaphore (drained
        requests were admitted once; re-admitting them could deadlock the
        crash handler).
        """
        if future is None:
            future = Future()
        self._locked_send(PendingRequest((tag,) + (next(self._req_ids),) + args, future, retries))
        return future

    def resend(self, pending: PendingRequest) -> None:
        """Replay a drained request on the current process (provision-only)."""
        pending.retries += 1
        self._locked_send(pending)

    # -------------------------------------------------------------- receiving
    def _receive_loop(self, conn: Any, generation: int) -> None:
        """Resolve replies for one process generation; report its death."""
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            tag, req_id, body, worker_ns = message
            with self._pending_lock:
                pending = self._pending.pop(req_id, None)
            if pending is None:
                continue  # duplicate delivery from a crash window; drop
            if pending.future.done():  # pragma: no cover - cancelled caller
                continue
            if tag == "ok":
                pending.future.set_result((body, worker_ns))
            else:
                pending.future.set_exception(WorkerError(body))
        if not self._closing and generation == self.generation:
            self._on_down(self)

    def __repr__(self) -> str:
        return "WorkerHandle(index={}, pid={}, generation={})".format(
            self.index, self.pid, self.generation
        )
