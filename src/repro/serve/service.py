"""`ParseService` — the concurrent, batched front door to the parsing engines.

One object owns everything a server process needs to parse heavy traffic:

* a bounded LRU of compiled grammar tables
  (:class:`~repro.serve.cache.TableCache`, keyed by structural
  fingerprint, hit/miss metered),
* a thread pool running batched :meth:`ParseService.recognize_many` /
  :meth:`ParseService.parse_many` over token-stream batches,
* an asyncio front door (:meth:`ParseService.parse` /
  :meth:`ParseService.recognize`) that coalesces identical
  grammar+input requests in flight,
* a :class:`~repro.serve.sessions.SessionManager` for long-lived streaming
  parses with checkpoints and idle eviction.

**Division of labour between the engines.**  Recognition rides the shared
compiled table's dense core
(:class:`~repro.compile.automaton.DenseCore`): warm tokens are lock-free
linked-row probes from any number of threads, cold edges derive once under
the table lock and are promoted into the core on the way out
(:mod:`repro.compile.automaton`'s contract).  Batches meter their dense
hit/fallback split into ``ServiceMetrics`` (``dense_hits`` /
``dense_fallbacks``), so promotion progress shows up in :meth:`stats`.  Tree extraction cannot ride
class-interned transitions, so :meth:`parse_many` runs the *interpreted*
engine instead — one thread-confined
:class:`~repro.core.parse.DerivativeParser` per (worker thread × grammar),
each over its own private :func:`~repro.core.languages.clone_graph` copy,
so workers never contend and never touch a shared graph.  That per-worker
pool is how the service enforces the engine's concurrency contract rather
than asking callers to read it.

A note on expectations: CPython's GIL means the thread pool interleaves
rather than parallelizes pure-Python parsing, so worker count buys
*concurrency* (slow streams don't block fast ones; C-level work overlaps),
not linear speedup.  The service's throughput win over a naive sequential
caller comes from the warm shared table and the amortized compile — see
``benchmarks/bench_serve_throughput.py`` for the measured factors.
"""

from __future__ import annotations

import asyncio
import math
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter_ns
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..compile.automaton import as_root
from ..compile.executor import CompiledParser
from ..core.errors import EmptyForestError, ParseError, ReproError
from ..core.forest_query import ForestQuery, ranking_by_name
from ..core.languages import clone_graph, structural_fingerprint
from ..core.metrics import Metrics
from ..core.parse import DerivativeParser
from ..incremental import DEFAULT_CHECKPOINT_EVERY
from ..obs.exposition import prometheus_exposition
from ..obs.observer import Observer
from ..obs.trace import activated, stage
from .cache import CacheEntry, TableCache
from .metrics import ServiceMetrics
from .sessions import ParseSession, SessionCheckpoint, SessionManager

__all__ = ["ForestOutcome", "ParseOutcome", "ParseService", "ServiceClosed"]

#: Default per-request tree budget for the forest endpoints: the most
#: trees one enumerate/sample request may materialize service-side.
DEFAULT_TREE_BUDGET = 64


class ServiceClosed(ReproError):
    """The service was used after :meth:`ParseService.close`."""


class ParseOutcome:
    """The result of one service-side parse: a tree or a diagnosed failure.

    Batch APIs must not let one malformed stream blow up the other
    thousand, so :meth:`ParseService.parse_many` reports per-stream
    outcomes instead of raising: ``ok`` with the ``tree``, or ``not ok``
    with the engine's :class:`~repro.core.errors.ParseError` (whose
    ``position`` pins the exact offending token, Earley-identical).
    """

    __slots__ = ("ok", "tree", "error")

    def __init__(self, ok: bool, tree: Any = None, error: Optional[ParseError] = None) -> None:
        self.ok = ok
        self.tree = tree
        self.error = error

    @property
    def failure_position(self) -> Optional[int]:
        """The failing token index reported by the diagnosis (None when ok)."""
        return self.error.position if self.error is not None else None

    def __repr__(self) -> str:
        if self.ok:
            return "ParseOutcome(ok)"
        return "ParseOutcome(failed@{})".format(self.failure_position)


class ForestOutcome:
    """The result of one service-side forest query (top-k or samples).

    ``ok`` with ``trees`` (the ranked prefix or the drawn samples) and the
    forest's exact derivation ``count`` (an ``int``; ``math.inf`` for
    cyclic forests) — or ``not ok`` with the diagnosed ``error``: a
    :class:`~repro.core.errors.ParseError` for unrecognized input, an
    :class:`~repro.core.errors.EmptyForestError` when sampling a treeless
    forest, or a ``ValueError`` when the forest is cyclic (infinitely many
    derivations cannot be ranked or sampled uniformly).
    """

    __slots__ = ("ok", "trees", "count", "error")

    def __init__(
        self,
        ok: bool,
        trees: Optional[List[Any]] = None,
        count: Optional[Any] = None,
        error: Optional[Exception] = None,
    ) -> None:
        self.ok = ok
        self.trees = trees if trees is not None else []
        self.count = count
        self.error = error

    @property
    def failure_position(self) -> Optional[int]:
        """The failing token index when the error carries one (else None)."""
        return getattr(self.error, "position", None)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ForestOutcome):
            return NotImplemented
        return (
            self.ok == other.ok
            and self.trees == other.trees
            and self.count == other.count
            and type(self.error) is type(other.error)
            and str(self.error) == str(other.error)
        )

    def __hash__(self) -> int:  # pragma: no cover - outcomes are not set keys
        return hash((self.ok, self.count))

    def __repr__(self) -> str:
        if self.ok:
            return "ForestOutcome(ok, {} trees of {})".format(len(self.trees), self.count)
        return "ForestOutcome(failed: {!r})".format(self.error)


class ParseService:
    """Concurrent batched parsing over cached compiled grammar tables.

    Parameters
    ----------
    workers:
        Thread-pool size for the batch and async APIs (>= 1).
    table_cache_size:
        Maximum number of compiled grammar tables retained (LRU).
    session_idle_ttl:
        Seconds of inactivity after which a streaming session is evicted;
        ``None`` (default) keeps sessions until closed.
    metrics:
        Optional shared :class:`ServiceMetrics`.
    observer:
        Optional :class:`repro.obs.Observer` bundling request tracing,
        latency histograms and the structured lifecycle logger.  The
        default observer keeps tracing off and logging silent but still
        collects latency histograms (they cost one small lock per
        *request*, never per token).

    The service is a context manager; :meth:`close` shuts the pool down and
    closes every session.  All public methods are safe to call from any
    thread; the ``async`` front door additionally coalesces duplicate
    in-flight requests per event loop.
    """

    def __init__(
        self,
        workers: int = 4,
        table_cache_size: int = 32,
        session_idle_ttl: Optional[float] = None,
        metrics: Optional[ServiceMetrics] = None,
        observer: Optional[Observer] = None,
        max_trees_per_request: int = DEFAULT_TREE_BUDGET,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1, got {}".format(workers))
        if max_trees_per_request < 1:
            raise ValueError(
                "max_trees_per_request must be >= 1, got {}".format(max_trees_per_request)
            )
        self.workers = workers
        #: Per-request tree budget for the forest endpoints; requests asking
        #: for more (or for everything) are clamped here and metered as
        #: ``tree_budget_clamped`` — ambiguous forests can hold 10^21 trees.
        self.max_trees_per_request = max_trees_per_request
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.obs = observer if observer is not None else Observer()
        self.tables = TableCache(table_cache_size, self.metrics, logger=self.obs.logger)
        self.sessions = SessionManager(
            self.metrics, idle_ttl=session_idle_ttl, logger=self.obs.logger
        )
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._local = threading.local()
        #: Live per-worker engine Metrics shards for stats()-time aggregation
        #: (reads of stale ints are acceptable there).  When a worker's
        #: per-thread pool evicts a parser, its shard is folded into
        #: ``_retired_engine`` and removed, so neither list nor memory grows
        #: with the number of grammars the service has ever seen.
        self._worker_metrics: List[Metrics] = []
        self._retired_engine = Metrics()
        self._worker_metrics_lock = threading.Lock()
        #: In-flight async requests keyed by (op, fingerprint, tokens) —
        #: touched only from event-loop callbacks, per-loop by construction.
        self._inflight: Dict[Tuple[Any, ...], "asyncio.Future[Any]"] = {}
        #: Tiny id-keyed memo for structural fingerprints (strong root refs
        #: keep the ids stable); bounded, lock-guarded.
        self._fingerprints: "OrderedDict[int, Tuple[Any, str]]" = OrderedDict()
        self._fingerprints_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the worker pool and close every session (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.sessions.close_all()
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ParseService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceClosed("this ParseService has been closed")

    # ---------------------------------------------------------------- tables
    def table_for(self, grammar: Any) -> CacheEntry:
        """The warm cache entry for ``grammar`` (compiling on first sight).

        The structural fingerprint is memoized per root object, so a warm
        lookup costs two dictionary probes instead of an O(graph) hash walk.
        When a request trace is active, the two steps land as the
        ``fingerprint`` and ``table`` stages.
        """
        self._require_open()
        with stage("fingerprint"):
            fingerprint = self._fingerprint(grammar)
        with stage("table"):
            return self.tables.get_or_compile(grammar, fingerprint=fingerprint)

    def warm_start(self, paths: Iterable[str], grammar_for: Any) -> int:
        """Preload serialized tables into the table cache (no request needed).

        Delegates to :meth:`TableCache.warm_start`: each path's table
        document is restored **with zero derivations** and cached under its
        fingerprint, so the first request for that grammar is a table hit.
        ``grammar_for`` maps fingerprints to grammars (mapping, callable,
        or a single grammar).  Returns the number of tables loaded.  This
        is how a pooled worker process warm-starts its shard from the
        dispatcher's table store before traffic arrives.
        """
        self._require_open()
        return len(self.tables.warm_start(paths, grammar_for))

    def _fingerprint(self, grammar: Any) -> str:
        """Structural fingerprint of ``grammar``, memoized per root object."""
        root = as_root(grammar)
        key = id(root)
        with self._fingerprints_lock:
            hit = self._fingerprints.get(key)
            if hit is not None and hit[0] is root:
                self._fingerprints.move_to_end(key)
                return hit[1]
        fingerprint = structural_fingerprint(root)
        with self._fingerprints_lock:
            self._fingerprints[key] = (root, fingerprint)
            while len(self._fingerprints) > 64:
                self._fingerprints.popitem(last=False)
        return fingerprint

    # ------------------------------------------------------------ batch APIs
    def recognize_many(self, grammar: Any, streams: Iterable[Sequence[Any]]) -> List[bool]:
        """Recognize a batch of token streams; one bool per stream, in order.

        All streams ride the one shared compiled table: the first batch
        warms it, later batches (and later streams of this one) are pure
        table walks fanned across the worker pool.
        """
        self._require_open()
        started = perf_counter_ns()
        with self.obs.tracer.request("recognize_many") as trace:
            entry = self.table_for(grammar)
            streams = list(streams)
            self.metrics.inc("batch_calls")
            self.metrics.inc("recognize_requests", len(streams))
            parser = CompiledParser(table=entry.table)

            def run(stream: Sequence[Any]) -> Tuple[bool, int, int]:
                # Pool threads never inherited the request's contextvar;
                # re-enter the trace (no-op when the request is untraced).
                with activated(trace):
                    t0 = perf_counter_ns()
                    result = parser.recognize_with_stats(stream)
                    elapsed = perf_counter_ns() - t0
                if len(stream) and result[2] == 0:
                    # Warm-path rate: every token rode the dense core.
                    self.obs.record("ns_per_token_dense", elapsed // len(stream))
                return result

            results = list(self._executor.map(run, streams))
        self.obs.record("request_latency_ns", perf_counter_ns() - started)
        self.obs.record("batch_size", len(streams))
        hits = sum(result[1] for result in results)
        fallbacks = sum(result[2] for result in results)
        if hits:
            self.metrics.inc("dense_hits", hits)
        if fallbacks:
            self.metrics.inc("dense_fallbacks", fallbacks)
        return [result[0] for result in results]

    def parse_many(self, grammar: Any, streams: Iterable[Sequence[Any]]) -> List[ParseOutcome]:
        """Parse a batch of token streams into :class:`ParseOutcome` objects.

        Tree extraction runs on the per-worker interpreted parser pool
        (thread-confined graphs — the concurrency contract), so outcomes
        carry real parse trees and exact failure positions and the workers
        never contend on shared state.
        """
        self._require_open()
        started = perf_counter_ns()
        with self.obs.tracer.request("parse_many") as trace:
            entry = self.table_for(grammar)
            streams = list(streams)
            self.metrics.inc("batch_calls")
            self.metrics.inc("parse_requests", len(streams))

            def run(stream: Sequence[Any]) -> ParseOutcome:
                with activated(trace):
                    return self._parse_one(entry, stream)

            results = list(self._executor.map(run, streams))
        self.obs.record("request_latency_ns", perf_counter_ns() - started)
        self.obs.record("batch_size", len(streams))
        return results

    def enumerate_many(
        self,
        grammar: Any,
        streams: Iterable[Sequence[Any]],
        k: Optional[int] = None,
        ranking: Any = "size",
    ) -> List[ForestOutcome]:
        """Top-``k`` trees per stream, best-first under ``ranking``.

        One :class:`ForestOutcome` per stream, in order: the ranked tree
        prefix plus the forest's exact derivation count.  ``k`` (and the
        ``k=None`` "give me everything" case) is clamped to the service's
        ``max_trees_per_request`` budget — extraction is lazy, so a stream
        with 10^21 parses costs the same as one with 10.  ``ranking`` is a
        :class:`~repro.core.forest_query.Ranking` or a registered name.
        """
        self._require_open()
        ranking = ranking_by_name(ranking)
        if ranking is None:
            raise ValueError("enumerate_many requires a ranking")
        started = perf_counter_ns()
        with self.obs.tracer.request("enumerate_many") as trace:
            entry = self.table_for(grammar)
            streams = list(streams)
            self.metrics.inc("batch_calls")
            self.metrics.inc("enumerate_requests", len(streams))
            effective_k = self._clamp_trees(k, requests=len(streams))

            def run(stream: Sequence[Any]) -> ForestOutcome:
                with activated(trace):
                    return self._enumerate_one(entry, stream, effective_k, ranking)

            results = list(self._executor.map(run, streams))
        self.obs.record("request_latency_ns", perf_counter_ns() - started)
        self.obs.record("batch_size", len(streams))
        emitted = sum(len(outcome.trees) for outcome in results)
        if emitted:
            self.metrics.inc("trees_emitted", emitted)
        return results

    def sample_many(
        self,
        grammar: Any,
        streams: Iterable[Sequence[Any]],
        n: int = 1,
        seed: int = 0,
    ) -> List[ForestOutcome]:
        """``n`` uniform samples per stream over each stream's parse forest.

        Stream ``i`` samples from ``random.Random(seed + i)`` — explicit,
        replayable seeds (the repo audits against global RNG use), and the
        same arithmetic the pooled service applies per shard, so pooled and
        in-process results are byte-identical.  ``n`` is clamped to the
        service's ``max_trees_per_request`` budget.
        """
        self._require_open()
        started = perf_counter_ns()
        with self.obs.tracer.request("sample_many") as trace:
            entry = self.table_for(grammar)
            streams = list(streams)
            self.metrics.inc("batch_calls")
            self.metrics.inc("sample_requests", len(streams))
            effective_n = self._clamp_trees(n, requests=len(streams))

            def run(indexed: Tuple[int, Sequence[Any]]) -> ForestOutcome:
                index, stream = indexed
                with activated(trace):
                    return self._sample_one(entry, stream, effective_n, seed + index)

            results = list(self._executor.map(run, enumerate(streams)))
        self.obs.record("request_latency_ns", perf_counter_ns() - started)
        self.obs.record("batch_size", len(streams))
        emitted = sum(len(outcome.trees) for outcome in results)
        if emitted:
            self.metrics.inc("trees_emitted", emitted)
        return results

    def _clamp_trees(self, requested: Optional[int], requests: int = 1) -> int:
        """Clamp a per-request tree ask to the service budget (metered)."""
        budget = self.max_trees_per_request
        if requested is None or requested > budget:
            self.metrics.inc("tree_budget_clamped", requests)
            return budget
        return requested

    # -------------------------------------------------------- worker parsers
    def _worker_parser(self, entry: CacheEntry) -> DerivativeParser:
        """This thread's private interpreted parser for ``entry``'s grammar.

        Built on first use per (worker thread × grammar) from the entry's
        pristine seed — cloning is a read-only traversal, safe to run from
        any number of workers at once.  The pool is LRU-bounded per thread
        by the table cache's capacity so a worker cannot hoard graphs for
        grammars the service itself has forgotten.
        """
        pool: "Optional[OrderedDict[str, DerivativeParser]]" = getattr(
            self._local, "parsers", None
        )
        if pool is None:
            pool = OrderedDict()
            self._local.parsers = pool
        parser = pool.get(entry.fingerprint)
        if parser is None:
            worker_metrics = Metrics()
            with self._worker_metrics_lock:
                self._worker_metrics.append(worker_metrics)
            parser = DerivativeParser(
                clone_graph(entry.pristine_root), metrics=worker_metrics
            )
            pool[entry.fingerprint] = parser
            while len(pool) > self.tables.capacity:
                _, evicted = pool.popitem(last=False)
                with self._worker_metrics_lock:
                    self._retired_engine.merge(evicted.metrics)
                    try:
                        self._worker_metrics.remove(evicted.metrics)
                    except ValueError:  # pragma: no cover - defensive
                        pass
        else:
            pool.move_to_end(entry.fingerprint)
        return parser

    def _parse_one(self, entry: CacheEntry, stream: Sequence[Any]) -> ParseOutcome:
        """Parse one stream on this worker's thread-confined parser."""
        parser = self._worker_parser(entry)
        started = perf_counter_ns()
        try:
            with stage("tree"):
                tree = parser.parse(list(stream))
            outcome = ParseOutcome(True, tree=tree)
        except ParseError as error:
            outcome = ParseOutcome(False, error=error)
        finally:
            # Per-parse caches (memo + hash-consing table) grow with every
            # distinct input; clearing them bounds a worker's memory by one
            # parse instead of its whole service lifetime.
            parser.reset()
        if len(stream):
            # The interpreted object-graph engine's warm rate, per token.
            self.obs.record(
                "ns_per_token_object", (perf_counter_ns() - started) // len(stream)
            )
        return outcome

    def _enumerate_one(
        self, entry: CacheEntry, stream: Sequence[Any], k: int, ranking: Any
    ) -> ForestOutcome:
        """Top-k one stream on this worker's thread-confined parser."""
        parser = self._worker_parser(entry)
        try:
            try:
                with stage("forest"):
                    forest = parser.parse_forest(list(stream))
            except ParseError as error:
                return ForestOutcome(False, error=error)
            with stage("rank"):
                query = ForestQuery(forest, ranking)
                count = query.count
                if count == math.inf:
                    return ForestOutcome(
                        False,
                        count=count,
                        error=ValueError(
                            "cannot rank a cyclic forest: infinitely many derivations"
                        ),
                    )
                trees = [tree for _score, tree in query.iter_ranked(k)]
            return ForestOutcome(True, trees=trees, count=count)
        finally:
            parser.reset()

    def _sample_one(
        self, entry: CacheEntry, stream: Sequence[Any], n: int, seed: int
    ) -> ForestOutcome:
        """Sample one stream on this worker's thread-confined parser."""
        parser = self._worker_parser(entry)
        try:
            try:
                with stage("forest"):
                    forest = parser.parse_forest(list(stream))
            except ParseError as error:
                return ForestOutcome(False, error=error)
            with stage("sample"):
                query = ForestQuery(forest)
                count = query.count
                try:
                    trees = query.sample_n(seed, n)
                except (EmptyForestError, ValueError) as error:
                    return ForestOutcome(False, count=count, error=error)
            return ForestOutcome(True, trees=trees, count=count)
        finally:
            parser.reset()

    def _recognize_one(self, entry: CacheEntry, stream: Sequence[Any]) -> bool:
        """Recognize one stream on the shared compiled table (dense-metered)."""
        started = perf_counter_ns()
        accepted, hits, fallbacks = CompiledParser(table=entry.table).recognize_with_stats(
            stream
        )
        elapsed = perf_counter_ns() - started
        if hits:
            self.metrics.inc("dense_hits", hits)
        if fallbacks:
            self.metrics.inc("dense_fallbacks", fallbacks)
        if len(stream) and fallbacks == 0:
            self.obs.record("ns_per_token_dense", elapsed // len(stream))
        return accepted

    # ------------------------------------------------------ asyncio front door
    async def parse(self, grammar: Any, tokens: Sequence[Any]) -> ParseOutcome:
        """Parse one stream from async code, coalescing duplicates in flight.

        Two coroutines awaiting ``parse`` with the same grammar (by
        structural fingerprint) and the same token sequence while the first
        is still running share one worker execution and one result
        (``coalesced_requests`` counts the saved runs).  Requires a running
        event loop; the blocking work happens on the service's pool.
        """
        tokens = tuple(tokens)
        key = (self._fingerprint(grammar), tokens)
        return await self._coalesced(
            "parse",
            key,
            "parse_requests",
            lambda: self._parse_one(self.table_for(grammar), tokens),
        )

    async def recognize(self, grammar: Any, tokens: Sequence[Any]) -> bool:
        """Recognize one stream from async code (coalesced like :meth:`parse`)."""
        tokens = tuple(tokens)
        key = (self._fingerprint(grammar), tokens)
        return await self._coalesced(
            "recognize",
            key,
            "recognize_requests",
            lambda: self._recognize_one(self.table_for(grammar), tokens),
        )

    async def enumerate(
        self,
        grammar: Any,
        tokens: Sequence[Any],
        k: Optional[int] = None,
        ranking: Any = "size",
    ) -> ForestOutcome:
        """Top-k one stream from async code (coalesced like :meth:`parse`).

        Identical in-flight requests — same grammar, tokens, ``k`` and
        ranking — share one worker execution.
        """
        tokens = tuple(tokens)
        ranking = ranking_by_name(ranking)
        if ranking is None:
            raise ValueError("enumerate requires a ranking")
        key = (self._fingerprint(grammar), tokens, k, ranking.name)
        return await self._coalesced(
            "enumerate",
            key,
            "enumerate_requests",
            lambda: self._enumerate_one(
                self.table_for(grammar), tokens, self._clamp_trees(k), ranking
            ),
        )

    async def sample(
        self,
        grammar: Any,
        tokens: Sequence[Any],
        n: int = 1,
        seed: int = 0,
    ) -> ForestOutcome:
        """Uniformly sample one stream from async code (coalesced).

        The seed is part of the coalescing key, so two concurrent requests
        share a worker execution only when they would draw the exact same
        trees anyway.
        """
        tokens = tuple(tokens)
        key = (self._fingerprint(grammar), tokens, n, seed)
        return await self._coalesced(
            "sample",
            key,
            "sample_requests",
            lambda: self._sample_one(
                self.table_for(grammar), tokens, self._clamp_trees(n), seed
            ),
        )

    async def edit(
        self, session: Any, start: int, end: int, new_tokens: Sequence[Any]
    ):
        """Apply one edit to a streaming session from async code.

        ``session`` is a session id or a :class:`ParseSession` of this
        service.  Gets the same treatment as :meth:`parse`/:meth:`recognize`:
        metered (``edit_requests``), run on the worker pool, and coalesced —
        two coroutines submitting the *identical* edit to the same session
        while the first is in flight share one application.  Returns the
        :class:`~repro.incremental.EditResult`.

        Coalescing is by value and scoped to the in-flight window, so read
        it as best-effort retry dedup, not transactional semantics: a retry
        arriving *after* the first application completes applies again, and
        two *independent* clients submitting byte-identical concurrent edits
        share one application.  Callers needing exactly-once across clients
        should disambiguate their edits (distinct content/positions) or
        serialize through :meth:`edit_session`.
        """
        session_id = session.session_id if isinstance(session, ParseSession) else session
        new_tokens = tuple(new_tokens)
        key = (session_id, start, end, new_tokens)
        return await self._coalesced(
            "edit",
            key,
            "edit_requests",
            lambda: self.edit_session(session_id, start, end, new_tokens, _metered=False),
        )

    async def _coalesced(
        self,
        op: str,
        key: Tuple[Any, ...],
        request_metric: str,
        blocking: Callable[[], Any],
    ) -> Any:
        # The shared future is completed by a done-callback on the executor
        # job, not by the leader coroutine: cancelling the leader (client
        # timeout) must not fan CancelledError out to coalesced followers
        # whose requests are still valid.  Every awaiter shields the shared
        # future for the same reason — an awaiting task's cancellation would
        # otherwise cancel the future under everyone else.
        self._require_open()
        loop = asyncio.get_running_loop()
        key = (op, id(loop)) + key
        existing = self._inflight.get(key)
        if existing is not None:
            self.metrics.inc("coalesced_requests")
            self.obs.logger.log("coalesced_hit", op=op)
            return await asyncio.shield(existing)
        self.metrics.inc(request_metric)
        future: "asyncio.Future[Any]" = loop.create_future()
        self._inflight[key] = future

        def work() -> Any:
            # Runs on a pool thread, so the request context opened here is
            # visible to every stage() the blocking body reaches.
            started = perf_counter_ns()
            with self.obs.tracer.request(op):
                result = blocking()
            self.obs.record("request_latency_ns", perf_counter_ns() - started)
            return result

        def transfer(done: "asyncio.Future[Any]") -> None:
            self._inflight.pop(key, None)
            exception = done.exception()
            if future.cancelled():
                return
            if exception is not None:
                future.set_exception(exception)
                # Mark retrieved: an awaiter-less failure must not warn.
                future.exception()
            else:
                future.set_result(done.result())

        loop.run_in_executor(self._executor, work).add_done_callback(transfer)
        return await asyncio.shield(future)

    # --------------------------------------------------------------- sessions
    def open_session(
        self,
        grammar: Any,
        keep_tokens: bool = True,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> ParseSession:
        """Begin a long-lived streaming parse; see :class:`ParseSession`.

        Token-retaining sessions (the default) keep a checkpoint trail —
        one O(1) snapshot per ``checkpoint_every`` tokens — and support
        :meth:`ParseSession.apply_edit` / the :meth:`edit` front door.
        ``keep_tokens=False`` gives O(1) memory per token for
        recognition-only streams (``tree()``/``apply_edit``/checkpoint
        token replay become unavailable).
        """
        self._require_open()
        entry = self.table_for(grammar)
        return self.sessions.open(
            entry, keep_tokens=keep_tokens, checkpoint_every=checkpoint_every
        )

    def restore_session(self, checkpoint: SessionCheckpoint) -> ParseSession:
        """Resume a new session from a checkpoint (see :meth:`SessionManager.restore`)."""
        self._require_open()
        return self.sessions.restore(checkpoint)

    def edit_session(
        self,
        session: Any,
        start: int,
        end: int,
        new_tokens: Sequence[Any],
        _metered: bool = True,
    ):
        """Synchronously apply one edit to a session (id or object).

        The blocking counterpart of :meth:`edit` — resolves the session in
        this service's registry and delegates to
        :meth:`ParseSession.apply_edit`.
        """
        self._require_open()
        if _metered:
            self.metrics.inc("edit_requests")
        if isinstance(session, ParseSession):
            session = self.sessions.get(session.session_id)
        else:
            session = self.sessions.get(session)
        result = session.apply_edit(start, end, new_tokens)
        self.obs.record("edit_tokens_refed", result.refed_tokens)
        return result

    # ------------------------------------------------------------- inspection
    def stats(self) -> Dict[str, Any]:
        """Service counters plus aggregated engine metrics and cache state.

        Engine counters are folded from the per-table and per-worker shards
        at read time; values may trail in-flight work by a few increments
        (stale reads of integers are harmless), which is the price of
        keeping the hot paths lock-free.

        ``latency`` carries the observer's histogram digests (count / sum /
        min / max / mean / p50 / p95 / p99 per series — request latency,
        warm-path ns/token, batch sizes, re-fed edit tokens); ``traces``
        is the tracer's digest of the recent sampled-request ring,
        including aggregate per-stage span totals.
        """
        snapshot = self.metrics.snapshot()
        engine = Metrics()
        for entry in self.tables.entries():
            engine.merge(entry.engine_metrics)
        with self._worker_metrics_lock:
            shards = list(self._worker_metrics)
            engine.merge(self._retired_engine)
        for shard in shards:
            engine.merge(shard)
        return {
            "service": snapshot,
            "engine": engine.as_dict(),
            "tables_cached": len(self.tables),
            "table_capacity": self.tables.capacity,
            "live_sessions": len(self.sessions),
            "workers": self.workers,
            "latency": self.obs.summaries(),
            "traces": self.obs.tracer.digest(),
        }

    def exposition(self) -> str:
        """:meth:`stats` rendered in Prometheus text format.

        Counters, gauges and full ``_bucket``/``_sum``/``_count`` series
        for every latency histogram — what a scrape endpoint (or
        ``python -m repro.serve --stats``) emits.
        """
        return prometheus_exposition(self.stats(), self.obs.histogram_snapshots())

    def __repr__(self) -> str:
        return "ParseService(workers={}, tables={}/{}, sessions={})".format(
            self.workers, len(self.tables), self.tables.capacity, len(self.sessions)
        )
