"""``python -m repro.serve`` — a smoke-test CLI over :class:`ParseService`.

Feeds source files (arguments, or stdin when none are given) through the
service's batched APIs and emits one event per file plus a summary — the
quickest way to see the serve layer work end to end against real inputs:

.. code-block:: console

    $ python -m repro.serve --grammar pl0 program1.pl0 program2.pl0
    $ echo "var x; begin x := 1 end." | python -m repro.serve --grammar pl0
    $ python -m repro.serve --grammar python --parse my_module.py
    $ python -m repro.serve --stats program1.pl0   # + Prometheus & JSON stats

``--grammar`` picks the grammar *and* the matching tokenizer: ``pl0`` uses
a small scanner over Wirth's lexical rules, ``python`` the stdlib-driven
:func:`repro.lexer.python_tokens.tokenize_python` bridge.  ``--parse``
extracts a tree (per-worker interpreted engine) instead of recognizing on
the compiled table.  Exit status is 0 when every input is accepted.

Output rides :class:`repro.obs.StructuredLogger`: readable ``key=value``
lines on a TTY, one JSON document per line when piped (so shell pipelines
get machine-parseable events without a flag).  ``--stats`` appends the
service's Prometheus text exposition and a single-line JSON snapshot of
:meth:`ParseService.stats`; ``--trace`` turns on span tracing for the run
so the stats include per-stage timings.
"""

from __future__ import annotations

import argparse
import re
import sys
import time
from typing import Any, Callable, List, Optional, Tuple

from ..core.errors import LexError
from ..grammars import PL0_KEYWORDS, pl0_grammar, python_grammar
from ..lexer.python_tokens import tokenize_python
from ..lexer.tokens import Tok
from ..obs import Observer, StructuredLogger, json_snapshot
from .pool import PooledParseService
from .service import ParseService

__all__ = ["main", "tokenize_pl0"]


_PL0_SCANNER = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>\d+)
  | (?P<op>:=|<=|>=|[-+*/()=#<>,;.])
    """,
    re.VERBOSE,
)

_PL0_KEYWORD_SET = frozenset(PL0_KEYWORDS)


def tokenize_pl0(text: str) -> List[Tok]:
    """Tokenize PL/0 source into the kinds :func:`repro.grammars.pl0_grammar` uses.

    Keywords (case-insensitive, as in Wirth's reports) become their own
    kinds, identifiers ``IDENT``, integers ``NUMBER``, operators and
    punctuation their literal text.  Raises
    :class:`~repro.core.errors.LexError` on any unscannable character.
    """
    out: List[Tok] = []
    position = 0
    while position < len(text):
        match = _PL0_SCANNER.match(text, position)
        if match is None:
            raise LexError(
                "cannot tokenize PL/0 input at offset {} ({!r}...)".format(
                    position, text[position : position + 10]
                ),
                position=position,
            )
        if match.lastgroup == "ident":
            lexeme = match.group()
            lowered = lexeme.lower()
            if lowered in _PL0_KEYWORD_SET:
                out.append(Tok(lowered, lexeme))
            else:
                out.append(Tok("IDENT", lexeme))
        elif match.lastgroup == "number":
            out.append(Tok("NUMBER", match.group()))
        elif match.lastgroup == "op":
            out.append(Tok(match.group(), match.group()))
        position = match.end()
    return out


#: Grammar name → (grammar factory, tokenizer) for ``--grammar``.
GRAMMARS: "dict[str, Tuple[Callable[[], Any], Callable[[str], List[Tok]]]]" = {
    "pl0": (pl0_grammar, tokenize_pl0),
    "python": (python_grammar, tokenize_python),
}


def _read_inputs(paths: List[str]) -> List[Tuple[str, str]]:
    """Read every (label, source) input: named files, or stdin for ``-``/none."""
    if not paths:
        return [("<stdin>", sys.stdin.read())]
    inputs: List[Tuple[str, str]] = []
    for path in paths:
        if path == "-":
            inputs.append(("<stdin>", sys.stdin.read()))
        else:
            with open(path, "r", encoding="utf-8") as handle:
                inputs.append((path, handle.read()))
    return inputs


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.serve``; returns the exit status."""
    cli = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Parse files through the concurrent ParseService (smoke test).",
    )
    cli.add_argument("files", nargs="*", help="source files ('-' or none: stdin)")
    cli.add_argument(
        "--grammar",
        choices=sorted(GRAMMARS),
        default="pl0",
        help="grammar + tokenizer to use (default: pl0)",
    )
    cli.add_argument(
        "--workers", type=int, default=4, help="worker threads (default: 4)"
    )
    cli.add_argument(
        "--pool",
        type=int,
        default=0,
        metavar="N",
        help=(
            "fan batches over N sharded worker processes instead of the "
            "in-process thread pool (default: 0, in-process)"
        ),
    )
    cli.add_argument(
        "--parse",
        action="store_true",
        help="extract a parse tree per input instead of recognizing",
    )
    cli.add_argument(
        "--stats",
        action="store_true",
        help="also emit the Prometheus exposition and a JSON stats snapshot",
    )
    cli.add_argument(
        "--trace",
        action="store_true",
        help="trace every request's stages (shows up under --stats)",
    )
    args = cli.parse_args(argv)

    grammar_factory, tokenizer = GRAMMARS[args.grammar]
    grammar = grammar_factory()
    inputs = _read_inputs(args.files)

    logger = StructuredLogger.for_stream(sys.stdout)
    labels: List[str] = []
    streams: List[List[Tok]] = []
    lex_failures: List[Tuple[str, str]] = []
    for label, source in inputs:
        try:
            streams.append(tokenizer(source))
            labels.append(label)
        except LexError as error:
            lex_failures.append((label, str(error)))

    all_ok = not lex_failures
    observer = Observer(tracing=args.trace, logger=logger)
    if args.pool > 0:
        service: Any = PooledParseService(workers=args.pool, observer=observer)
    else:
        service = ParseService(workers=args.workers, observer=observer)
    with service:
        started = time.perf_counter()
        if args.parse:
            outcomes = service.parse_many(grammar, streams)
            verdicts = [
                "ok" if outcome.ok else "parse error: {}".format(outcome.error)
                for outcome in outcomes
            ]
            all_ok = all_ok and all(outcome.ok for outcome in outcomes)
        else:
            accepted = service.recognize_many(grammar, streams)
            verdicts = ["ok" if flag else "rejected" for flag in accepted]
            all_ok = all_ok and all(accepted)
        elapsed = time.perf_counter() - started

        for label, stream, verdict in zip(labels, streams, verdicts):
            logger.log("result", input=label, verdict=verdict, tokens=len(stream))
        for label, message in lex_failures:
            logger.log("lex_error", input=label, message=message)

        tokens_total = sum(len(stream) for stream in streams)
        stats = service.stats()
        logger.log(
            "summary",
            inputs=len(streams),
            tokens=tokens_total,
            seconds=round(elapsed, 6),
            tok_per_s=round(tokens_total / elapsed) if elapsed > 0 else 0,
            tables_cached=stats["tables_cached"],
            table_capacity=stats["table_capacity"],
            table_hit_rate=stats["service"]["table_hit_rate"],
            workers=stats["workers"],
        )
        if args.stats:
            sys.stdout.write(service.exposition())
            sys.stdout.write(json_snapshot(stats) + "\n")
    return 0 if all_ok else 1
