"""`PooledParseService` — a sharded multi-process pool behind the service API.

CPython's GIL caps :class:`~repro.serve.ParseService` at one core: its
thread pool buys *concurrency*, not parallel token throughput.  This
module buys the other axis.  A dispatcher in the application process fans
``recognize_many`` / ``parse_many`` batches over N worker *processes*,
each running its own inner service on its own interpreter — N cores of
pure-Python parsing instead of one.

The design is shaped by what made the in-process service fast, because a
naive process pool destroys all of it:

* **Shard by grammar, not round-robin.**  Requests route by the grammar's
  :func:`~repro.core.languages.structural_fingerprint` on a consistent
  hash ring (``replication`` workers per grammar), so each worker's table
  cache stays hot for its shard — the compile-once, walk-forever economics
  of the single-process service, preserved per worker.  The ring means
  adding grammars never reshuffles existing assignments.
* **Warm starts from the table store.**  The dispatcher persists each
  grammar's compiled table to an on-disk
  :class:`~repro.serve.store.TableStore` after its first served batch
  (asking a worker that already holds it warm), and every *later* worker
  that grammar touches — shard replicas, crash respawns, whole new fleets
  via :meth:`PooledParseService.preload` — loads it back with **zero
  derivations** (:func:`repro.compile.load_table`'s contract).  A fleet
  cold-starts at warm-cache speed.
* **Cheap wire format.**  Recognition batches on kind-pure grammars cross
  the pipe as kind strings (~60× cheaper than pickling token objects —
  the difference between beating and losing to the in-process service);
  :class:`PreparedBatch` additionally caches encodings across repeat
  calls.  See :mod:`repro.serve.transport`.
* **Crash containment.**  A dead worker is detected by pipe EOF, respawned
  in place (same ring position), re-registered with its shard's grammars —
  warm from the store — and its in-flight requests are resent, bounded by
  ``max_retries``; callers see a completed batch, not a stack trace,
  unless the same request keeps killing workers
  (:class:`~repro.serve.transport.WorkerCrashed`).
* **One fleet view.**  ``stats()`` folds every worker's service counters
  (:meth:`~repro.serve.metrics.ServiceMetrics.merge_snapshot`), engine
  counters (:meth:`~repro.core.metrics.Metrics.merge`) and latency
  histograms (:meth:`~repro.obs.histogram.Histogram.merge`, folded under
  ``worker_``-prefixed series) into one dict shaped like the in-process
  ``stats()``, and ``exposition()`` renders the same Prometheus text.
  Request traces gain ``dispatch`` and ``worker`` spans.

The result is the same calling convention as ``ParseService`` —
``recognize_many(grammar, streams)`` / ``parse_many(grammar, streams)``,
exact same answers (a differential property test holds the two engines
equal, tree for tree) — with throughput that scales with cores instead of
saturating one.

**Lock order.**  The dispatcher uses two lock families: each handle's
send lock (serializes its pipe and its crash transition) and the pool's
state lock (the grammar registry).  The crash handler acquires them
send-then-state; nothing ever acquires state-then-send — registration
builds its to-do under the state lock but performs every pipe write after
releasing it, coordinating racers through per-worker acknowledgement
futures instead.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import tempfile
import threading
from bisect import bisect_right
from collections import OrderedDict
from concurrent.futures import Future
from time import perf_counter_ns
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..compile.automaton import GrammarTable, as_root
from ..compile.executor import CompiledParser
from ..core.languages import clone_graph, structural_fingerprint
from ..core.metrics import Metrics
from ..obs.exposition import prometheus_exposition
from ..obs.histogram import Histogram
from ..obs.observer import Observer
from ..obs.trace import stage
from ..core.forest_query import RANKINGS, ranking_by_name
from .metrics import ServiceMetrics
from .service import DEFAULT_TREE_BUDGET, ForestOutcome, ParseOutcome, ServiceClosed
from .store import TableStore
from .transport import (
    WIRE_PROTOCOL,
    PendingRequest,
    WorkerCrashed,
    WorkerHandle,
    encode_parse_payload,
    encode_recognize_payload,
)

__all__ = ["HashRing", "PooledParseService", "PreparedBatch"]

#: Request-trace names per wire tag (see :mod:`repro.serve.transport`).
_POOL_REQUEST_NAMES = {
    "rec": "pool_recognize_many",
    "par": "pool_parse_many",
    "enu": "pool_enumerate_many",
    "sam": "pool_sample_many",
}


class HashRing:
    """Consistent hashing of grammar fingerprints onto worker indices.

    ``vnodes`` virtual points per worker smooth the distribution; hashes
    come from :mod:`hashlib` (stable across processes and
    ``PYTHONHASHSEED``, unlike the builtin ``hash``).  :meth:`shard`
    walks clockwise from the fingerprint's point collecting *distinct*
    workers, so a grammar's replicas always land on different processes.
    """

    def __init__(self, workers: int, vnodes: int = 64) -> None:
        if workers < 1:
            raise ValueError("ring needs >= 1 worker, got {}".format(workers))
        points: List[Tuple[int, int]] = []
        for worker in range(workers):
            for vnode in range(vnodes):
                digest = hashlib.sha256(
                    "worker:{}:vnode:{}".format(worker, vnode).encode("ascii")
                ).hexdigest()
                points.append((int(digest[:16], 16), worker))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._workers = [worker for _, worker in points]
        self.size = workers

    def shard(self, fingerprint: str, count: int) -> List[int]:
        """The ``count`` distinct workers serving ``fingerprint``, primary first."""
        count = min(count, self.size)
        point = int(hashlib.sha256(fingerprint.encode("ascii")).hexdigest()[:16], 16)
        start = bisect_right(self._hashes, point)
        chosen: List[int] = []
        for offset in range(len(self._workers)):
            worker = self._workers[(start + offset) % len(self._workers)]
            if worker not in chosen:
                chosen.append(worker)
                if len(chosen) == count:
                    break
        return chosen


class PreparedBatch:
    """A batch with its wire encodings cached across repeated calls.

    Encoding a batch (pickling streams, or flattening them to kind rows)
    is the dispatcher's main per-call CPU cost; a caller replaying the
    same streams — a benchmark loop, a poller re-validating a corpus —
    wraps them once with :meth:`PooledParseService.prepare` and passes the
    result anywhere ``streams`` goes.  Payload bytes are memoized per
    (operation, chunking, purity), and the workers' decode caches key on
    those same bytes, so a replayed batch is never re-pickled on either
    side of the pipe.
    """

    __slots__ = ("fingerprint", "streams", "_payloads")

    def __init__(self, fingerprint: str, streams: List[Sequence[Any]]) -> None:
        self.fingerprint = fingerprint
        self.streams = streams
        self._payloads: Dict[Tuple[Any, ...], List[bytes]] = {}

    def payloads(
        self, operation: str, bounds: Tuple[Tuple[int, int], ...], pure: bool
    ) -> List[bytes]:
        """The cached chunk payloads for one (operation, chunking, purity)."""
        key = (operation, bounds, pure)
        cached = self._payloads.get(key)
        if cached is None:
            if operation == "rec":
                cached = [
                    encode_recognize_payload(self.streams[lo:hi], pure)
                    for lo, hi in bounds
                ]
            else:
                cached = [encode_parse_payload(self.streams[lo:hi]) for lo, hi in bounds]
            self._payloads[key] = cached
        return cached

    def __len__(self) -> int:
        return len(self.streams)

    def __repr__(self) -> str:
        return "PreparedBatch({}..., {} streams, {} encodings)".format(
            self.fingerprint[:12], len(self.streams), len(self._payloads)
        )


class _GrammarInfo:
    """Dispatcher-side state for one grammar.

    ``blob`` is the pickled pristine clone every registration replays;
    ``shard`` the ring assignment; ``acks`` one acknowledgement future per
    shard worker (the coordination point that keeps batches behind their
    registration without holding any lock across a pipe write);
    ``persisted``/``persist_requested`` drive the persist-once flow.
    """

    __slots__ = ("blob", "shard", "acks", "pure", "persisted", "persist_requested")

    def __init__(self, blob: bytes, shard: List[int], persisted: bool) -> None:
        self.blob = blob
        self.shard = shard
        self.acks: "Dict[int, Future[Any]]" = {}
        self.pure: bool = True
        self.persisted = persisted
        self.persist_requested = persisted


class PooledParseService:
    """Multi-process sharded parsing with the ``ParseService`` batch API.

    Parameters
    ----------
    workers:
        Worker *processes* (>= 1).  Throughput scales with this up to the
        machine's cores; each worker runs its own interpreter and table
        cache.
    replication:
        Workers per grammar on the hash ring (>= 1, capped at
        ``workers``).  One grammar's batches split across its replicas;
        more replication spreads a hot grammar wider at the cost of
        warming more caches.
    store:
        The warm-start table store: a :class:`TableStore`, a directory
        path, or None for a private temporary directory (fleet-lifetime
        warm starts only).
    inflight_per_worker:
        Batches one worker may have in flight before submission blocks
        (the backpressure bound).
    threads_per_worker:
        Thread count of each worker's inner service (default 1 — the
        pool's parallelism is processes, not threads).
    max_retries:
        Resends a request may consume across worker crashes before its
        future fails with :class:`WorkerCrashed`.
    metrics / observer:
        Dispatcher-side :class:`ServiceMetrics` / :class:`Observer`
        (defaults constructed, exactly like ``ParseService``).
    start_method:
        :mod:`multiprocessing` start method; default prefers ``fork``
        (sub-millisecond spawns) where available.

    The pool is a context manager; :meth:`close` stops the fleet.  The
    batch APIs are safe to call from any number of threads.
    """

    def __init__(
        self,
        workers: int = 4,
        replication: int = 2,
        store: Union[TableStore, str, None] = None,
        inflight_per_worker: int = 16,
        threads_per_worker: int = 1,
        max_retries: int = 1,
        metrics: Optional[ServiceMetrics] = None,
        observer: Optional[Observer] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1, got {}".format(workers))
        if replication < 1:
            raise ValueError("replication must be >= 1, got {}".format(replication))
        self.workers = workers
        self.replication = min(replication, workers)
        self.max_retries = max_retries
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.obs = observer if observer is not None else Observer()
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        if isinstance(store, TableStore):
            self.store = store
        elif isinstance(store, str):
            self.store = TableStore(store)
        else:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-pool-")
            self.store = TableStore(self._tempdir.name)
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else available[0]
        self._context = multiprocessing.get_context(start_method)
        self._ring = HashRing(workers)
        self._grammars: Dict[str, _GrammarInfo] = {}
        self._state_lock = threading.Lock()
        self._fingerprints: "OrderedDict[int, Tuple[Any, str]]" = OrderedDict()
        self._closed = False
        self._handles = [
            WorkerHandle(
                index,
                self._context,
                self.store.root,
                threads_per_worker,
                inflight_per_worker,
                self._on_worker_down,
            )
            for index in range(workers)
        ]
        # Fork every process before starting any receiver thread: the
        # fleet boots from a thread-free parent.
        for handle in self._handles:
            handle.spawn()
        for handle in self._handles:
            handle.start_receiver()

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop every worker and release a pool-owned store (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            handle.close()
        if self._tempdir is not None:
            self._tempdir.cleanup()

    def __enter__(self) -> "PooledParseService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceClosed("this PooledParseService has been closed")

    def worker_pids(self) -> List[Optional[int]]:
        """The live worker process ids, by ring index (kill-test hook)."""
        return [handle.pid for handle in self._handles]

    # ------------------------------------------------------------ batch APIs
    def recognize_many(
        self, grammar: Any, streams: Union[Iterable[Sequence[Any]], PreparedBatch]
    ) -> List[bool]:
        """Recognize a batch across the grammar's shard; one bool per stream.

        Same contract as :meth:`ParseService.recognize_many` — answers in
        input order — with the batch split contiguously over the shard's
        workers and reassembled on the way back.
        """
        return self._run_batch("rec", grammar, streams)

    def parse_many(
        self, grammar: Any, streams: Union[Iterable[Sequence[Any]], PreparedBatch]
    ) -> List[ParseOutcome]:
        """Parse a batch across the shard into :class:`ParseOutcome` objects.

        Trees and failure positions are produced by the workers'
        interpreted engines and shipped back whole — identical, tree for
        tree, to the in-process service's outcomes.
        """
        return self._run_batch("par", grammar, streams)

    def enumerate_many(
        self,
        grammar: Any,
        streams: Union[Iterable[Sequence[Any]], PreparedBatch],
        k: Optional[int] = None,
        ranking: Any = "size",
    ) -> List[ForestOutcome]:
        """Top-``k`` trees per stream across the shard, best-first.

        Same contract — and byte-identical outcomes — as
        :meth:`ParseService.enumerate_many`: ranked extraction is
        deterministic, so sharding the batch cannot change any answer.
        The ranking crosses the pipe by its registered name (rankings are
        code, not data), so it must come from
        :data:`repro.core.forest_query.RANKINGS`; ``k`` is clamped to the
        dispatcher's tree budget before dispatch.
        """
        ranking = ranking_by_name(ranking)
        if ranking is None:
            raise ValueError("enumerate_many requires a ranking")
        if RANKINGS.get(ranking.name) is not ranking:
            raise ValueError(
                "pooled enumeration needs a ranking registered in "
                "repro.core.forest_query.RANKINGS so workers can resolve it "
                "by name; {!r} is not registered".format(ranking.name)
            )
        name = ranking.name
        return self._run_batch(
            "enu",
            grammar,
            streams,
            extras=lambda lo, hi, k=k, name=name: (self._clamp_trees(k, hi - lo), name),
        )

    def sample_many(
        self,
        grammar: Any,
        streams: Union[Iterable[Sequence[Any]], PreparedBatch],
        n: int = 1,
        seed: int = 0,
    ) -> List[ForestOutcome]:
        """``n`` uniform samples per stream across the shard.

        Byte-identical to :meth:`ParseService.sample_many` with the same
        ``seed``: each chunk ships ``seed + chunk_start``, so a worker's
        local ``seed + i`` lands on the exact global ``seed +
        stream_index`` the in-process service uses — chunking is invisible
        in the draws.
        """
        return self._run_batch(
            "sam",
            grammar,
            streams,
            extras=lambda lo, hi, n=n, seed=seed: (
                self._clamp_trees(n, hi - lo),
                seed + lo,
            ),
        )

    def _clamp_trees(self, requested: Optional[int], requests: int) -> int:
        """Clamp a tree ask to the dispatcher's budget (mirrors the service)."""
        budget = DEFAULT_TREE_BUDGET
        if requested is None or requested > budget:
            self.metrics.inc("tree_budget_clamped", requests)
            return budget
        return requested

    def prepare(self, grammar: Any, streams: Iterable[Sequence[Any]]) -> PreparedBatch:
        """Wrap ``streams`` for repeated dispatch (see :class:`PreparedBatch`)."""
        self._require_open()
        fingerprint, _root = self._fingerprint(grammar)
        return PreparedBatch(fingerprint, list(streams))

    def _run_batch(
        self,
        operation: str,
        grammar: Any,
        streams: Any,
        extras: Optional[Callable[[int, int], Tuple[Any, ...]]] = None,
    ) -> List[Any]:
        """Shard, encode, fan out and reassemble one batch (every operation).

        ``extras(lo, hi)`` — when given — produces the operation-specific
        arguments appended to each chunk's frame after the payload (the
        ``k``/ranking of an enumeration, the ``n``/offset-seed of a
        sampling run), called once per chunk with that chunk's bounds.
        """
        self._require_open()
        started = perf_counter_ns()
        name = _POOL_REQUEST_NAMES[operation]
        with self.obs.tracer.request(name) as trace:
            with stage("fingerprint"):
                fingerprint, root = self._fingerprint(grammar)
            prepared: Optional[PreparedBatch] = None
            if isinstance(streams, PreparedBatch):
                if streams.fingerprint != fingerprint:
                    raise ValueError(
                        "PreparedBatch was prepared for grammar {}..., not {}...".format(
                            streams.fingerprint[:12], fingerprint[:12]
                        )
                    )
                prepared = streams
                stream_list: List[Sequence[Any]] = prepared.streams
            else:
                stream_list = list(streams)
            if not stream_list:
                return []
            info, _warm = self._ensure_registered(fingerprint, root)
            bounds = _chunk_bounds(len(stream_list), len(info.shard))
            with stage("dispatch"):
                if prepared is not None:
                    payloads = prepared.payloads(operation, bounds, info.pure)
                elif operation == "rec":
                    payloads = [
                        encode_recognize_payload(stream_list[lo:hi], info.pure)
                        for lo, hi in bounds
                    ]
                else:
                    payloads = [
                        encode_parse_payload(stream_list[lo:hi]) for lo, hi in bounds
                    ]
                futures = [
                    self._handles[info.shard[chunk]].submit(
                        operation,
                        fingerprint,
                        payload,
                        *(extras(*bounds[chunk]) if extras is not None else ()),
                    )
                    for chunk, payload in enumerate(payloads)
                ]
            self.metrics.inc("pool_dispatches", len(futures))
            results: List[Any] = []
            for future in futures:
                body, worker_ns = future.result()
                if trace is not None:
                    trace.add_span("worker", perf_counter_ns() - worker_ns, worker_ns)
                results.extend(body)
        self.obs.record("request_latency_ns", perf_counter_ns() - started)
        self.obs.record("batch_size", len(stream_list))
        if not info.persisted:
            self._request_persist(fingerprint, info)
        return results

    # ---------------------------------------------------------- registration
    def _fingerprint(self, grammar: Any) -> Tuple[str, Any]:
        """``(fingerprint, root)`` for ``grammar``, memoized per root object."""
        root = as_root(grammar)
        key = id(root)
        with self._state_lock:
            hit = self._fingerprints.get(key)
            if hit is not None and hit[0] is root:
                self._fingerprints.move_to_end(key)
                return hit[1], root
        fingerprint = structural_fingerprint(root)
        with self._state_lock:
            self._fingerprints[key] = (root, fingerprint)
            while len(self._fingerprints) > 64:
                self._fingerprints.popitem(last=False)
        return fingerprint, root

    def _ensure_registered(self, fingerprint: str, root: Any) -> Tuple[_GrammarInfo, int]:
        """Register ``root`` with every worker of its shard (idempotent).

        First sight pickles a pristine clone of the grammar once (the blob
        every registration and every respawn replays) and assigns the
        shard off the ring.  Each shard worker gets one ``reg`` — with the
        store path when a serialized table is on disk, so the worker
        warm-loads instead of compiling — coordinated through per-worker
        acknowledgement futures created under the state lock but *sent*
        outside it (see the module's lock-order note): racing threads find
        the future and wait on it rather than re-sending.  Returns the
        info plus how many of the registrations this call sent were
        answered ``warm_loaded`` (what :meth:`preload` reports).
        """
        to_send: List[Tuple[WorkerHandle, "Future[Any]"]] = []
        with self._state_lock:
            info = self._grammars.get(fingerprint)
            if info is None:
                blob = pickle.dumps(clone_graph(root), WIRE_PROTOCOL)
                info = _GrammarInfo(
                    blob,
                    self._ring.shard(fingerprint, self.replication),
                    self.store.has(fingerprint),
                )
                self._grammars[fingerprint] = info
            for index in info.shard:
                if index not in info.acks:
                    ack: "Future[Any]" = Future()
                    info.acks[index] = ack
                    to_send.append((self._handles[index], ack))
        for handle, ack in to_send:
            path = (
                self.store.path_for(fingerprint) if self.store.has(fingerprint) else None
            )
            handle.registered.add(fingerprint)
            submitted = handle.submit("reg", fingerprint, info.blob, path, slot=False)
            submitted.add_done_callback(lambda done, ack=ack: _chain(done, ack))
        warm_loaded = 0
        sent_acks = {id(ack) for _handle, ack in to_send}
        for index in list(info.shard):
            ack = info.acks[index]
            try:
                body, _worker_ns = ack.result()
            except BaseException:
                # Registration failed (worker kept crashing); un-claim the
                # slot so a later request can retry it, then surface.
                with self._state_lock:
                    if info.acks.get(index) is ack:
                        del info.acks[index]
                raise
            info.pure = bool(body["pure"])
            if id(ack) in sent_acks and body.get("warm_loaded"):
                warm_loaded += 1
        return info, warm_loaded

    def _request_persist(self, fingerprint: str, info: _GrammarInfo) -> None:
        """Ask the shard's primary to write its warm table to the store (once)."""
        with self._state_lock:
            if info.persist_requested:
                return
            info.persist_requested = True
        handle = self._handles[info.shard[0]]
        future = handle.submit("per", fingerprint, slot=False)

        def finished(done: "Future[Any]") -> None:
            if done.exception() is None:
                info.persisted = True
                self.metrics.inc("tables_persisted")
                self.obs.logger.log(
                    "table_persisted", fingerprint=fingerprint, worker=handle.index
                )
            else:
                # The worker died (or lost the table) before persisting;
                # let a later batch try again.
                with self._state_lock:
                    info.persist_requested = info.persisted

        future.add_done_callback(finished)

    def seed_store(self, grammar: Any, streams: Iterable[Sequence[Any]]) -> str:
        """Compile, warm and persist ``grammar``'s table dispatcher-side.

        The organic persist path saves whatever the shard's *primary*
        happened to explore, which under ``replication > 1`` is only its
        slice of the traffic.  ``seed_store`` instead builds a table in
        the dispatcher process, drives ``streams`` through it (a
        representative workload — e.g. the corpus a fleet will serve), and
        persists the result under the grammar's dispatch key.  A fleet
        :meth:`preload`-ed from the seeded store then recognizes that
        workload with **zero derivations on every worker** — the
        benchmark's cold-start gate.  Returns the stored path.
        """
        self._require_open()
        fingerprint, root = self._fingerprint(grammar)
        table = GrammarTable(clone_graph(root))
        parser = CompiledParser(table=table)
        for stream in streams:
            parser.recognize(stream)
        return self.store.persist(table, fingerprint=fingerprint)

    def preload(self, grammars: Iterable[Any]) -> int:
        """Register grammars fleet-wide ahead of traffic; returns warm loads.

        For each grammar, every worker on its shard gets a registration —
        with the table store path whenever a serialized table is on disk,
        in which case the worker warm-loads it with **zero derivations**.
        A fleet restarted over a populated store serves its first request
        at warm-cache speed (the pool benchmark asserts fleet-wide
        ``derive_calls == 0`` after exactly this call).  Grammars missing
        from the store register cold: their shard compiles lazily on first
        traffic and the table is persisted for next time.  Returns the
        number of (grammar × worker) registrations that warm-loaded.
        """
        self._require_open()
        warm_loaded = 0
        for grammar in grammars:
            fingerprint, root = self._fingerprint(grammar)
            _info, warm = self._ensure_registered(fingerprint, root)
            warm_loaded += warm
        return warm_loaded

    # ------------------------------------------------------------- inspection
    def stats(self) -> Dict[str, Any]:
        """One fleet-wide stats dict, shaped like :meth:`ParseService.stats`.

        Worker service counters fold through
        :meth:`ServiceMetrics.merge_snapshot` together with the
        dispatcher's own (the ``pool_*`` counters live only here); engine
        counters fold through :meth:`Metrics.merge`; worker latency
        histograms fold under ``worker_``-prefixed series next to the
        dispatcher's end-to-end ones.  A ``pool`` section carries the
        per-worker breakdown (pid, generation, cached tables, request
        counts).
        """
        return self._collect()[0]

    def exposition(self) -> str:
        """Fleet :meth:`stats` rendered in Prometheus text format.

        The same families the in-process service exposes, now fleet-wide,
        plus the ``worker_``-prefixed histogram families and the
        ``pool_*`` dispatcher counters.
        """
        stats, histograms = self._collect()
        return prometheus_exposition(stats, histograms)

    def _collect(self) -> Tuple[Dict[str, Any], Dict[str, Histogram]]:
        """Gather and fold every worker's stats reply into the fleet view."""
        self._require_open()
        futures = [(handle, handle.submit("sta", slot=False)) for handle in self._handles]
        fleet = ServiceMetrics()
        fleet.merge_snapshot(self.metrics.snapshot())
        engine = Metrics()
        histograms: Dict[str, Histogram] = dict(self.obs.histogram_snapshots())
        tables_cached = 0
        table_capacity = 0
        live_sessions = 0
        per_worker: List[Dict[str, Any]] = []
        for handle, future in futures:
            body, _worker_ns = future.result()
            fleet.merge_snapshot(body["service"])
            engine.merge(Metrics(**body["engine"]))
            for series, shard in body["histograms"].items():
                folded = histograms.get("worker_" + series)
                if folded is None:
                    folded = histograms["worker_" + series] = Histogram()
                folded.merge(shard)
            tables_cached += body["tables_cached"]
            table_capacity += body["table_capacity"]
            live_sessions += body["live_sessions"]
            per_worker.append(
                {
                    "index": handle.index,
                    "pid": body["pid"],
                    "generation": handle.generation,
                    "tables_cached": body["tables_cached"],
                    "recognize_requests": body["service"].get("recognize_requests", 0),
                    "parse_requests": body["service"].get("parse_requests", 0),
                }
            )
        stats = {
            "service": fleet.snapshot(),
            "engine": engine.as_dict(),
            "tables_cached": tables_cached,
            "table_capacity": table_capacity,
            "live_sessions": live_sessions,
            "workers": self.workers,
            "latency": {name: hist.summary() for name, hist in histograms.items()},
            "traces": self.obs.tracer.digest(),
            "pool": {
                "workers": self.workers,
                "replication": self.replication,
                "store": self.store.root,
                "grammars": len(self._grammars),
                "per_worker": per_worker,
            },
        }
        return stats, histograms

    # ---------------------------------------------------------- crash handling
    def _on_worker_down(self, handle: WorkerHandle) -> None:
        """Receiver-thread callback: a worker died outside a deliberate close.

        Respawns the worker at the same ring index, replays its shard's
        registrations (warm from the store wherever a table was
        persisted), and resends what the dead process had in flight — all
        atomically under the handle's send lock, so concurrently blocked
        submitters land behind the re-registrations.  Requests exceeding
        ``max_retries`` fail with :class:`WorkerCrashed`.
        """
        if self._closed:
            return
        old_pid = handle.pid

        def provision(worker: WorkerHandle, drained: List[PendingRequest]) -> None:
            with self._state_lock:
                shard_grammars = [
                    (fingerprint, info)
                    for fingerprint, info in self._grammars.items()
                    if worker.index in info.shard
                ]
            for fingerprint, info in shard_grammars:
                path = (
                    self.store.path_for(fingerprint)
                    if self.store.has(fingerprint)
                    else None
                )
                worker.provision_send("reg", fingerprint, info.blob, path)
                worker.registered.add(fingerprint)
            for pending in drained:
                if pending.future.done():
                    continue
                if pending.retries + 1 > self.max_retries:
                    pending.future.set_exception(
                        WorkerCrashed(
                            "worker {} died {} time(s) handling this request".format(
                                worker.index, pending.retries + 1
                            )
                        )
                    )
                    continue
                self.metrics.inc("pool_retries")
                worker.resend(pending)

        handle.reincarnate(provision)
        self.metrics.inc("workers_respawned")
        self.obs.logger.log(
            "worker_respawned",
            index=handle.index,
            old_pid=old_pid,
            new_pid=handle.pid,
            generation=handle.generation,
        )

    def __repr__(self) -> str:
        return "PooledParseService(workers={}, replication={}, grammars={})".format(
            self.workers, self.replication, len(self._grammars)
        )


def _chain(done: "Future[Any]", ack: "Future[Any]") -> None:
    """Forward a transport future's outcome onto a registration ack."""
    if ack.done():  # pragma: no cover - defensive
        return
    exception = done.exception()
    if exception is not None:
        ack.set_exception(exception)
    else:
        ack.set_result(done.result())


def _chunk_bounds(n_streams: int, n_workers: int) -> Tuple[Tuple[int, int], ...]:
    """Contiguous, near-even ``(lo, hi)`` chunk bounds for a batch.

    At most ``n_workers`` chunks, never an empty one; the first
    ``n_streams % n_chunks`` chunks take the extra stream.
    """
    n_chunks = min(n_streams, n_workers)
    base, extra = divmod(n_streams, n_chunks)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for chunk in range(n_chunks):
        hi = lo + base + (1 if chunk < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return tuple(bounds)
