"""A bounded LRU cache of compiled grammar tables, keyed by structure.

The service's unit of warmth is the compiled
:class:`~repro.compile.automaton.GrammarTable`.  Compiling one is the
expensive, once-per-grammar step; everything after it is dictionary probes.
:class:`TableCache` owns that step for the service:

* **Keyed by** :func:`~repro.core.languages.structural_fingerprint` of the
  *caller's* root, so two structurally identical grammar objects — a
  grammar re-parsed from the same BNF in two requests, say — resolve to the
  one warm table, which the root-anchored sharing of
  :func:`~repro.compile.automaton.compile_grammar` (keyed on object
  identity) cannot do.
* **Service-private graphs.**  A cache miss clones the caller's graph
  twice (:func:`~repro.core.languages.clone_graph`): the table compiles —
  and locks, memoizes, prunes — one clone, and the second stays *pristine*,
  never derived on, as the read-only seed from which worker threads clone
  their own thread-confined interpreted parsers.  The service never
  mutates, locks or anchors anything the caller handed it.
* **Bounded.**  At most ``capacity`` tables are retained, LRU-evicted.
  Eviction only drops the *cache's* reference: batches, sessions and
  checkpoints hold the :class:`CacheEntry` strongly, so an in-flight parse
  keeps its table alive and intact (the concurrency suite asserts this).
* **Compile-once under contention.**  Concurrent misses on one fingerprint
  coalesce on a future; a single thread compiles, the rest wait.

Hit/miss/eviction counts land in the service's
:class:`~repro.serve.metrics.ServiceMetrics`.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any, Dict, Iterable, List, Optional

from ..compile.automaton import GrammarTable, as_root
from ..compile.serialize import restore_table
from ..core.languages import Language, clone_graph, structural_fingerprint
from ..core.metrics import Metrics
from ..obs.logging import NULL_LOGGER, StructuredLogger
from .metrics import ServiceMetrics

__all__ = ["CacheEntry", "TableCache"]


class CacheEntry:
    """One cached grammar: the shared compiled table plus a pristine seed.

    ``table`` is the service-private :class:`GrammarTable` every
    recognition rides (thread-safe per its own contract).
    ``pristine_root`` is a clone of the same grammar that is never parsed
    on — its only job is to be read by :func:`clone_graph` when a worker
    thread needs a private graph for tree extraction, which makes
    concurrent seeding safe without any lock.  Holders of an entry keep the
    table alive across cache eviction.
    """

    __slots__ = ("fingerprint", "table", "pristine_root", "engine_metrics")

    def __init__(
        self,
        fingerprint: str,
        table: GrammarTable,
        pristine_root: Language,
        engine_metrics: Metrics,
    ) -> None:
        self.fingerprint = fingerprint
        self.table = table
        self.pristine_root = pristine_root
        #: The table's private engine counter bag (advanced only under the
        #: table lock); aggregated by :meth:`repro.serve.ParseService.stats`.
        self.engine_metrics = engine_metrics

    def __repr__(self) -> str:
        return "CacheEntry({}..., {!r})".format(self.fingerprint[:12], self.table)


class TableCache:
    """Bounded LRU of :class:`CacheEntry` objects keyed by grammar structure."""

    def __init__(
        self,
        capacity: int = 32,
        metrics: Optional[ServiceMetrics] = None,
        logger: Optional[StructuredLogger] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("table cache capacity must be >= 1, got {}".format(capacity))
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.logger = logger if logger is not None else NULL_LOGGER
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        #: In-flight compilations, so concurrent misses compile once.
        self._building: Dict[str, "Future[CacheEntry]"] = {}

    # ------------------------------------------------------------------ API
    def get_or_compile(self, grammar: object, fingerprint: Optional[str] = None) -> CacheEntry:
        """Return the warm entry for ``grammar``, compiling it on first sight.

        A hit (by structural fingerprint) refreshes the entry's LRU
        position.  A miss compiles a service-private table; a miss that
        races another thread's in-flight compile of the same grammar waits
        for it instead of compiling twice (counted as a hit — the table was
        shared, not rebuilt).  Callers that already know the grammar's
        fingerprint (the service memoizes it per root object) pass it in to
        skip the O(graph) hash walk on warm lookups.
        """
        root = as_root(grammar)
        if fingerprint is None:
            fingerprint = structural_fingerprint(root)
        future: "Optional[Future[CacheEntry]]" = None
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.metrics.inc("table_hits")
                return entry
            future = self._building.get(fingerprint)
            if future is None:
                future = Future()
                self._building[fingerprint] = future
                building = True
            else:
                building = False
        if not building:
            self.metrics.inc("table_hits")
            return future.result()
        try:
            entry = self._compile(root, fingerprint)
        except BaseException as exc:
            with self._lock:
                self._building.pop(fingerprint, None)
            future.set_exception(exc)
            raise
        evicted: List[str] = []
        with self._lock:
            self._entries[fingerprint] = entry
            self._building.pop(fingerprint, None)
            while len(self._entries) > self.capacity:
                stale, _ = self._entries.popitem(last=False)
                evicted.append(stale)
        if evicted:
            self.metrics.inc("tables_evicted", len(evicted))
            for stale in evicted:
                self.logger.log("table_evicted", fingerprint=stale, reason="capacity")
        self.metrics.inc("table_misses")
        future.set_result(entry)
        return entry

    def warm_start(
        self,
        paths: Iterable[str],
        grammar_for: Any,
    ) -> List[CacheEntry]:
        """Preload serialized tables into the cache without a request.

        ``paths`` name table documents written by
        :func:`repro.compile.save_table`; ``grammar_for`` resolves each
        document's *compiled* fingerprint (taken over the
        post-optimization root — what :func:`repro.compile.dump_table`
        stamps) to its grammar — a mapping ``fingerprint → grammar``, a
        one-argument callable, or a single grammar (when every path
        belongs to it).  Each document is restored into a service-private
        table (:func:`repro.compile.restore_table` — strict, so a wrong
        grammar is refused, and **zero derivations**: loaded tables run
        warm straight from disk) and cached under the *caller-side* key —
        :func:`structural_fingerprint` of the resolved grammar's raw root,
        the same key :meth:`get_or_compile` looks up — so the next request
        for that grammar is a ``table_hits`` instead of a compile.  The
        two fingerprints differ whenever optimization rewrites the root;
        conflating them would cache warm tables where no lookup ever
        finds them.  Grammars already cached are skipped (the live table
        is at least as warm).  Returns the entries inserted, in path
        order; each insertion is metered as ``tables_warm_started`` and
        may LRU-evict exactly like a compile.

        A resolver returning ``None`` (or a mapping without the
        fingerprint) raises ``KeyError`` naming the fingerprint — a store
        directory with a stray table must fail loudly, not half-load.
        """
        inserted: List[CacheEntry] = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            grammar = self._resolve_grammar(grammar_for, data.get("fingerprint"))
            root = as_root(grammar)
            fingerprint = structural_fingerprint(root)
            with self._lock:
                already = fingerprint in self._entries
            if already:
                continue
            engine_metrics = Metrics()
            table = restore_table(data, clone_graph(root), metrics=engine_metrics)
            entry = CacheEntry(fingerprint, table, clone_graph(root), engine_metrics)
            evicted: List[str] = []
            with self._lock:
                if fingerprint in self._entries:  # raced a concurrent compile
                    continue
                self._entries[fingerprint] = entry
                while len(self._entries) > self.capacity:
                    stale, _ = self._entries.popitem(last=False)
                    evicted.append(stale)
            self.metrics.inc("tables_warm_started")
            self.logger.log("table_warm_started", fingerprint=fingerprint, path=path)
            if evicted:
                self.metrics.inc("tables_evicted", len(evicted))
                for stale in evicted:
                    self.logger.log("table_evicted", fingerprint=stale, reason="capacity")
            inserted.append(entry)
        return inserted

    @staticmethod
    def _resolve_grammar(grammar_for: Any, fingerprint: str) -> object:
        """Resolve a warm-start grammar source to the grammar for ``fingerprint``."""
        if callable(grammar_for):
            grammar = grammar_for(fingerprint)
        elif hasattr(grammar_for, "get") and hasattr(grammar_for, "__getitem__"):
            grammar = grammar_for.get(fingerprint)
        else:
            grammar = grammar_for  # a single grammar for every path
        if grammar is None:
            raise KeyError(
                "warm_start has no grammar for fingerprint {!r}".format(fingerprint)
            )
        return grammar

    def _compile(self, root: Language, fingerprint: str) -> CacheEntry:
        """Build a service-private table (and pristine seed) for ``root``."""
        started = time.perf_counter()
        engine_metrics = Metrics()
        table = GrammarTable(clone_graph(root), metrics=engine_metrics)
        pristine = clone_graph(root)
        self.logger.log(
            "table_compiled",
            fingerprint=fingerprint,
            seconds=time.perf_counter() - started,
        )
        return CacheEntry(fingerprint, table, pristine, engine_metrics)

    # ------------------------------------------------------------ inspection
    def peek(self, fingerprint: str) -> Optional[CacheEntry]:
        """The entry for ``fingerprint`` without touching LRU order, or None."""
        with self._lock:
            return self._entries.get(fingerprint)

    def entries(self) -> List[CacheEntry]:
        """The cached entries, least- to most-recently used."""
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every cached table (in-flight holders keep theirs alive)."""
        with self._lock:
            dropped = list(self._entries)
            self._entries.clear()
        if dropped:
            self.metrics.inc("tables_evicted", len(dropped))
            for fingerprint in dropped:
                self.logger.log("table_evicted", fingerprint=fingerprint, reason="clear")

    def __repr__(self) -> str:
        return "TableCache({}/{} entries)".format(len(self), self.capacity)
