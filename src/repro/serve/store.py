"""An on-disk store of serialized compiled tables, keyed by fingerprint.

The pool's warm-start currency.  A compiled
:class:`~repro.compile.automaton.GrammarTable` is expensive once per
grammar; a *serialized* one (:mod:`repro.compile.serialize`) loads back
with **zero derivations**.  :class:`TableStore` gives that load a home: one
directory, one ``<fingerprint>.table.json`` document per grammar, written
atomically so a reader never sees a half-written table.

The sharded pool (:mod:`repro.serve.pool`) uses it in both directions: the
dispatcher asks the worker that first compiled (and warmed) a table to
persist it here, and every later worker spawned for that grammar's shard —
including crash respawns — preloads it through
:meth:`repro.serve.cache.TableCache.warm_start` instead of deriving
anything.  The store is deliberately dumb: no locking beyond the atomic
rename (last writer wins — both writers hold equivalent tables), no
eviction, no metadata.  It is equally usable standalone, as a build
artifact cache shipped next to an application.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from ..compile.automaton import GrammarTable
from ..compile.serialize import dump_table, restore_table
from ..core.metrics import Metrics

__all__ = ["TableStore"]

#: Filename suffix of every stored document (fingerprints are hex, so the
#: names never need escaping).
_SUFFIX = ".table.json"


class TableStore:
    """A directory of serialized compiled tables, one per grammar fingerprint.

    Parameters
    ----------
    root:
        Directory to keep the documents in (created if missing).

    Writes are atomic (temp file + ``os.replace`` in the same directory),
    so concurrent readers — pool workers warm-starting while the dispatcher
    persists — always see either the complete previous document or the
    complete new one.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------ paths
    def path_for(self, fingerprint: str) -> str:
        """The document path for ``fingerprint`` (whether or not it exists)."""
        return os.path.join(self.root, fingerprint + _SUFFIX)

    def has(self, fingerprint: str) -> bool:
        """True when a document for ``fingerprint`` is on disk."""
        return os.path.exists(self.path_for(fingerprint))

    def fingerprints(self) -> List[str]:
        """Every stored fingerprint, sorted (the store's whole inventory)."""
        out = []
        for name in os.listdir(self.root):
            if name.endswith(_SUFFIX):
                out.append(name[: -len(_SUFFIX)])
        return sorted(out)

    def paths(self) -> List[str]:
        """Every stored document path, in :meth:`fingerprints` order."""
        return [self.path_for(fingerprint) for fingerprint in self.fingerprints()]

    # ------------------------------------------------------------------- save
    def persist(
        self,
        table: GrammarTable,
        fingerprint: Optional[str] = None,
        overwrite: bool = True,
    ) -> str:
        """Write ``table``'s document atomically; returns the path.

        ``fingerprint`` names the document — pass the key your *loads*
        will use.  The default, ``table.fingerprint``, is the compiled
        identity (taken over the post-optimization root); the pool instead
        keys its store by the raw root's
        :func:`~repro.core.languages.structural_fingerprint`, because that
        is what a dispatcher can compute without compiling.  The two
        differ whenever optimization rewrites the root.  ``overwrite=False``
        keeps an existing document (first writer wins — the usual pool
        case, where every candidate writer holds an equivalent warm table
        and rewriting is wasted IO).
        """
        return self.persist_document(
            dump_table(table),
            fingerprint if fingerprint is not None else table.fingerprint,
            overwrite=overwrite,
        )

    def persist_document(
        self, document: Dict[str, Any], fingerprint: str, overwrite: bool = True
    ) -> str:
        """Write an already-dumped table document atomically (see :meth:`persist`)."""
        path = self.path_for(fingerprint)
        if not overwrite and os.path.exists(path):
            return path
        handle, temp_path = tempfile.mkstemp(
            prefix=fingerprint[:12] + ".", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(document, stream, separators=(",", ":"))
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            raise
        return path

    # ------------------------------------------------------------------- load
    def load(
        self,
        fingerprint: str,
        grammar: Any,
        strict: bool = True,
        metrics: Optional[Metrics] = None,
    ) -> GrammarTable:
        """Restore the stored table for ``fingerprint`` over ``grammar``.

        Raises ``FileNotFoundError`` when the fingerprint is not stored;
        ``strict``/``metrics`` are forwarded to
        :func:`repro.compile.restore_table` (strict refuses a grammar whose
        structure does not match the document).
        """
        with open(self.path_for(fingerprint), "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return restore_table(data, grammar, strict=strict, metrics=metrics)

    def __len__(self) -> int:
        return len(self.fingerprints())

    def __repr__(self) -> str:
        return "TableStore({!r}, {} tables)".format(self.root, len(self))
