"""repro.serve — a concurrent, batched parsing service over the engines.

The engines below this package are single-caller artifacts: an interpreted
:class:`~repro.core.parse.DerivativeParser` is thread-confined with its
graph, and a compiled :class:`~repro.compile.automaton.GrammarTable` is a
shared read-mostly structure with a lock on its cold paths.
:class:`ParseService` packages those contracts into something a server can
hold: compiled tables cached in a bounded LRU keyed by grammar *structure*,
batches fanned over a worker pool (recognition on the shared table, tree
extraction on per-worker thread-confined parsers), an asyncio front door
that coalesces identical in-flight requests (``parse``/``recognize``/
``edit``), and checkpointable streaming sessions with idle eviction whose
token buffers are *editable* — each token-retaining session is an
:class:`~repro.incremental.IncrementalDocument` over the shared table, so
``apply_edit`` reparses by rewinding a checkpoint trail instead of from
scratch.

Quickstart::

    from repro.serve import ParseService
    from repro.grammars import pl0_grammar
    from repro.workloads import pl0_tokens

    service = ParseService(workers=4)
    grammar = pl0_grammar()
    streams = [pl0_tokens(1_000, seed=s) for s in range(32)]

    accepted = service.recognize_many(grammar, streams)   # shared warm table
    outcomes = service.parse_many(grammar, streams)       # trees per stream
    session = service.open_session(grammar)               # streaming
    session.feed_all(streams[0]); session.accepts()
    service.stats()["service"]["table_hit_rate"]

When one interpreter's core is not enough, :class:`PooledParseService`
(:mod:`repro.serve.pool`) keeps the same batch API but fans requests over
N worker *processes*, sharded by grammar fingerprint on a consistent hash
ring so every worker's table cache stays hot for its shard.  Workers
warm-start from an on-disk :class:`TableStore` of serialized compiled
tables (zero derivations on fleet cold start), crashed workers are
respawned and their in-flight requests resent, and ``stats()`` /
``exposition()`` fold every worker's counters and histograms into one
fleet view.

``python -m repro.serve`` exposes the same machinery as a file-parsing
smoke-test CLI (:mod:`repro.serve.cli`; ``--pool N`` switches it onto the
process pool).
"""

from .cache import CacheEntry, TableCache
from .metrics import ServiceMetrics
from .pool import HashRing, PooledParseService, PreparedBatch
from .service import ForestOutcome, ParseOutcome, ParseService, ServiceClosed
from .sessions import ParseSession, SessionCheckpoint, SessionError, SessionManager
from .store import TableStore
from .transport import WorkerCrashed, WorkerError

__all__ = [
    "ParseService",
    "ParseOutcome",
    "ForestOutcome",
    "ServiceClosed",
    "TableCache",
    "CacheEntry",
    "ServiceMetrics",
    "ParseSession",
    "SessionManager",
    "SessionCheckpoint",
    "SessionError",
    "PooledParseService",
    "PreparedBatch",
    "HashRing",
    "TableStore",
    "WorkerCrashed",
    "WorkerError",
]
