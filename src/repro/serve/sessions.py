"""Long-lived streaming parse sessions over the shared compiled tables.

A :class:`ParseSession` is the service-side wrapper around one streaming
parse — the ``create / feed / checkpoint / close`` lifecycle a network
front-end needs when a client's token stream arrives in pieces over
minutes.  Under the hood a session drives a
:class:`~repro.compile.executor.CompiledState` over the service's shared
:class:`~repro.compile.automaton.GrammarTable`: warm tokens cost two dict
probes, cold edges derive once under the table lock, and any number of
sessions stream over one table concurrently.

Lifecycle rules, all asserted by ``tests/serve``:

* Each session owns a lock, so *the session object itself* may be driven
  from any thread — but one feed at a time (a token stream has an order).
* A session holds its :class:`~repro.serve.cache.CacheEntry` strongly, so
  evicting the grammar's table from the service's LRU cache mid-stream
  never corrupts the session: it keeps its table until it closes.
* :meth:`ParseSession.checkpoint` snapshots the automaton position in O(1)
  (plus the retained token prefix when tree extraction is enabled);
  :meth:`SessionManager.restore` rehydrates a new session from the
  snapshot — speculative feeding, client retry, "fork the stream here".
* Sessions idle longer than the manager's TTL are evicted by an
  opportunistic sweep (no reaper thread: sweeps piggyback on opens and on
  explicit :meth:`SessionManager.sweep` calls).  An evicted session is
  closed: feeding it raises :class:`SessionError`.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..compile.automaton import AutomatonState
from ..compile.executor import CompiledParser, CompiledState
from ..core.errors import ReproError
from .cache import CacheEntry
from .metrics import ServiceMetrics

__all__ = ["SessionError", "SessionCheckpoint", "ParseSession", "SessionManager"]


class SessionError(ReproError):
    """A session was used after it was closed or evicted, or never existed."""


class SessionCheckpoint:
    """An immutable snapshot of a session's progress, restorable later.

    Holds the automaton state reference, the stream position, and (when the
    session retains tokens) the consumed-token prefix — plus a strong
    reference to the session's cache entry so the table the state belongs
    to outlives any cache eviction.
    """

    __slots__ = ("entry", "state", "position", "failure_position", "tokens")

    def __init__(
        self,
        entry: CacheEntry,
        state: AutomatonState,
        position: int,
        failure_position: Optional[int],
        tokens: Optional[Tuple[Any, ...]],
    ) -> None:
        self.entry = entry
        self.state = state
        self.position = position
        self.failure_position = failure_position
        self.tokens = tokens

    def __repr__(self) -> str:
        return "SessionCheckpoint(position={}, grammar={}...)".format(
            self.position, self.entry.fingerprint[:12]
        )


class ParseSession:
    """One streaming parse: feed tokens, query acceptance, checkpoint, close.

    Mirrors the :class:`~repro.core.parse.ParserState` streaming surface
    (``feed``/``feed_all``/``accepts``/``failed``) with the service
    lifecycle on top.  Like the engine states, **feed after failure is a
    no-op** — the failure position is kept and the corpse is cheap to feed;
    feed after *close* is different and raises :class:`SessionError`,
    because a closed session's resources may already be reused.
    """

    def __init__(
        self,
        session_id: str,
        entry: CacheEntry,
        manager: "SessionManager",
        keep_tokens: bool = True,
    ) -> None:
        self.session_id = session_id
        self.entry = entry
        self._manager = manager
        self._parser = CompiledParser(table=entry.table)
        self._state: CompiledState = self._parser.start(keep_tokens=keep_tokens)
        self._lock = threading.Lock()
        self.closed = False
        #: Why the session ended: None while live, "closed" or "evicted".
        self.end_reason: Optional[str] = None
        self.last_used = manager.clock()

    # ------------------------------------------------------------- predicates
    @property
    def position(self) -> int:
        """Number of tokens consumed so far."""
        return self._state.position

    @property
    def failed(self) -> bool:
        """True once the automaton entered the ``∅`` sink."""
        return self._state.failed

    @property
    def failure_position(self) -> Optional[int]:
        """Index of the token that killed the stream, or None while alive."""
        return self._state.failure_position

    def accepts(self) -> bool:
        """True when the tokens consumed so far form a complete parse.

        Raises :class:`SessionError` once closed/evicted, like every other
        operation — a liveness probe must not silently answer from a
        deregistered session.
        """
        with self._lock:
            self._require_open()
            self._touch()
            return self._state.accepts()

    # ---------------------------------------------------------------- driving
    def feed(self, token: Any) -> "ParseSession":
        """Consume one token (no-op once failed; raises once closed)."""
        with self._lock:
            self._require_open()
            self._touch()
            self._state.feed(token)
        return self

    def feed_all(self, tokens: Iterable[Any]) -> "ParseSession":
        """Consume every token from an iterable (stops pulling on failure)."""
        with self._lock:
            self._require_open()
            self._touch()
            self._state.feed_all(tokens)
        return self

    # ---------------------------------------------------------------- results
    def tree(self) -> Any:
        """One parse tree of the consumed tokens (needs token retention).

        Falls back to interpreted derivation under the table lock (see
        :class:`~repro.compile.executor.CompiledState`); raises
        :class:`~repro.core.errors.ParseError` when the consumed prefix is
        not a complete parse.
        """
        with self._lock:
            self._require_open()
            self._touch()
            return self._state.tree()

    # ------------------------------------------------------------- lifecycle
    def checkpoint(self) -> SessionCheckpoint:
        """Snapshot the current progress for a later :meth:`SessionManager.restore`."""
        with self._lock:
            self._require_open()
            self._touch()
            retained = self._state.tokens
            self._manager.metrics.inc("checkpoints_taken")
            return SessionCheckpoint(
                entry=self.entry,
                state=self._state.state,
                position=self._state.position,
                failure_position=self._state.failure_position,
                tokens=tuple(retained) if retained is not None else None,
            )

    def close(self) -> None:
        """End the session and release it from the manager (idempotent)."""
        self._manager.close(self.session_id)

    def _end(self, reason: str) -> None:
        """Mark the session dead (manager-internal; registry already updated)."""
        with self._lock:
            if not self.closed:
                self.closed = True
                self.end_reason = reason

    def _require_open(self) -> None:
        if self.closed:
            raise SessionError(
                "session {!r} is {} and cannot be used".format(
                    self.session_id, self.end_reason or "closed"
                )
            )

    def _touch(self) -> None:
        self.last_used = self._manager.clock()

    def __repr__(self) -> str:
        status = self.end_reason if self.closed else (
            "failed@{}".format(self.failure_position) if self.failed else "alive"
        )
        return "ParseSession({}, position={}, {})".format(
            self.session_id, self.position, status
        )


class SessionManager:
    """Registry of live sessions with TTL-based idle eviction.

    ``idle_ttl`` is in seconds of ``clock`` time (``time.monotonic`` by
    default; tests inject a fake clock); ``None`` disables eviction.
    Sweeps run opportunistically on :meth:`open` — a service that opens
    sessions keeps its registry tidy without a background thread — and on
    demand via :meth:`sweep`.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        metrics: Optional[ServiceMetrics] = None,
        idle_ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.idle_ttl = idle_ttl
        self.clock = clock
        self._lock = threading.Lock()
        self._sessions: Dict[str, ParseSession] = {}

    # ------------------------------------------------------------------ API
    def open(self, entry: CacheEntry, keep_tokens: bool = True) -> ParseSession:
        """Create and register a session over ``entry``'s compiled table."""
        self.sweep()
        session_id = "s{}".format(next(SessionManager._ids))
        session = ParseSession(session_id, entry, self, keep_tokens=keep_tokens)
        with self._lock:
            self._sessions[session_id] = session
        self.metrics.inc("sessions_opened")
        return session

    def restore(self, checkpoint: SessionCheckpoint) -> ParseSession:
        """Open a new session resuming exactly at ``checkpoint``.

        The new session is independent of the one that took the snapshot
        (which may since have advanced, failed or closed): same automaton
        state, same position, its own lifecycle.
        """
        session = self.open(checkpoint.entry, keep_tokens=checkpoint.tokens is not None)
        state = session._state
        state.state = checkpoint.state
        state.position = checkpoint.position
        state.failure_position = checkpoint.failure_position
        if checkpoint.tokens is not None:
            state.tokens = list(checkpoint.tokens)
        return session

    def get(self, session_id: str) -> ParseSession:
        """Look up a live session by id (raises :class:`SessionError` if gone)."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionError("no live session {!r}".format(session_id))
        return session

    def close(self, session_id: str) -> None:
        """Close and deregister a session (idempotent)."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is not None and not session.closed:
            session._end("closed")
            self.metrics.inc("sessions_closed")

    def sweep(self, now: Optional[float] = None) -> int:
        """Evict every session idle longer than ``idle_ttl``; return the count."""
        if self.idle_ttl is None:
            return 0
        if now is None:
            now = self.clock()
        cutoff = now - self.idle_ttl
        with self._lock:
            idle = [s for s in self._sessions.values() if s.last_used <= cutoff]
            for session in idle:
                del self._sessions[session.session_id]
        for session in idle:
            session._end("evicted")
        if idle:
            self.metrics.inc("sessions_evicted", len(idle))
        return len(idle)

    def live_sessions(self) -> List[ParseSession]:
        """Every currently registered session."""
        with self._lock:
            return list(self._sessions.values())

    def close_all(self) -> None:
        """Close every registered session (service shutdown)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        closed = 0
        for session in sessions:
            if not session.closed:
                session._end("closed")
                closed += 1
        if closed:
            self.metrics.inc("sessions_closed", closed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
