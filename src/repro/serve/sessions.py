"""Long-lived streaming parse sessions over the shared compiled tables.

A :class:`ParseSession` is the service-side wrapper around one streaming
parse — the ``create / feed / edit / checkpoint / close`` lifecycle a
network front-end needs when a client's token stream arrives in pieces
(and is then *edited*) over minutes.  Under the hood a token-retaining
session owns an :class:`~repro.incremental.IncrementalDocument` driving a
:class:`~repro.compile.executor.CompiledState` over the service's shared
:class:`~repro.compile.automaton.GrammarTable`: warm tokens cost two dict
probes, cold edges derive once under the table lock, any number of
sessions stream over one table concurrently, and
:meth:`ParseSession.apply_edit` rewinds the document's checkpoint trail
instead of reparsing from scratch.  ``keep_tokens=False`` sessions skip
the document (no buffer, O(1) memory per token) and are recognition-only:
``tree()`` and ``apply_edit`` are unavailable.

Lifecycle rules, all asserted by ``tests/serve``:

* Each session owns a lock, so *the session object itself* may be driven
  from any thread — but one feed at a time (a token stream has an order).
* A session holds its :class:`~repro.serve.cache.CacheEntry` strongly, so
  evicting the grammar's table from the service's LRU cache mid-stream
  never corrupts the session: it keeps its table until it closes.
* :meth:`ParseSession.checkpoint` snapshots the automaton position in
  O(1) (plus the retained token buffer and the O(1)-per-entry checkpoint
  trail when the session keeps tokens);
  :meth:`SessionManager.restore` rehydrates a new session from the
  snapshot — trail included, so a restored session edits as cheaply as
  the original — for speculative feeding, client retry, "fork the stream
  here".
* Session ids are **manager-scoped**: every manager tags its ids with a
  process-unique prefix (``m3-s1``), so an id from one manager can never
  silently resolve against another manager's registry.
* Sessions idle longer than the manager's TTL are evicted by an
  opportunistic sweep (no reaper thread: sweeps piggyback on opens and on
  explicit :meth:`SessionManager.sweep` calls).  Idleness is decided
  *twice*: a candidate selected under the manager lock is re-validated
  under its own lock before eviction, so a session that a concurrent
  ``feed``/``tree`` just touched always survives — the sweep can never
  evict a session mid-use.  An evicted session is closed: feeding it
  raises :class:`SessionError`.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..compile.automaton import AutomatonState
from ..compile.executor import CompiledParser, CompiledSnapshot, CompiledState
from ..core.errors import ReproError
from ..incremental import DEFAULT_CHECKPOINT_EVERY, EditResult, IncrementalDocument
from ..obs.logging import NULL_LOGGER, StructuredLogger
from ..obs.trace import stage
from .cache import CacheEntry
from .metrics import ServiceMetrics

__all__ = ["SessionError", "SessionCheckpoint", "ParseSession", "SessionManager"]


class SessionError(ReproError):
    """A session was used after it was closed or evicted, or never existed."""


class SessionCheckpoint:
    """An immutable snapshot of a session's progress, restorable later.

    Holds the automaton state reference and the stream position, plus —
    for token-retaining sessions — the consumed-token buffer and the
    document's checkpoint trail (every entry an O(1) reference), so a
    restored session can keep applying edits without rebuilding anything.
    A strong reference to the session's cache entry keeps the table the
    state belongs to alive across any cache eviction.
    """

    __slots__ = (
        "entry",
        "state",
        "position",
        "failure_position",
        "tokens",
        "trail",
        "checkpoint_every",
    )

    def __init__(
        self,
        entry: CacheEntry,
        state: AutomatonState,
        position: int,
        failure_position: Optional[int],
        tokens: Optional[Tuple[Any, ...]],
        trail: Optional[Tuple[CompiledSnapshot, ...]] = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        self.entry = entry
        self.state = state
        self.position = position
        self.failure_position = failure_position
        self.tokens = tokens
        self.trail = trail
        self.checkpoint_every = checkpoint_every

    def __repr__(self) -> str:
        return "SessionCheckpoint(position={}, trail={}, grammar={}...)".format(
            self.position,
            len(self.trail) if self.trail is not None else None,
            self.entry.fingerprint[:12],
        )


class ParseSession:
    """One streaming parse: feed tokens, edit them, checkpoint, close.

    Mirrors the :class:`~repro.core.parse.ParserState` streaming surface
    (``feed``/``feed_all``/``accepts``/``failed``) with the service
    lifecycle on top, plus :meth:`apply_edit` for edit-aware incremental
    reparsing when the session retains tokens.  Like the engine states,
    **feed after failure is a no-op** — the failure position is kept, the
    corpse is cheap to feed, and the buffer does not grow (an
    :meth:`apply_edit` that repairs the stream revives it); feed after
    *close* is different and raises :class:`SessionError`, because a
    closed session's resources may already be reused.
    """

    def __init__(
        self,
        session_id: str,
        entry: CacheEntry,
        manager: "SessionManager",
        keep_tokens: bool = True,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        self.session_id = session_id
        self.entry = entry
        self.checkpoint_every = checkpoint_every
        self._manager = manager
        self._parser = CompiledParser(table=entry.table)
        self._doc: Optional[IncrementalDocument] = None
        self._state: Optional[CompiledState] = None
        if keep_tokens:
            self._doc = IncrementalDocument(
                parser=self._parser, checkpoint_every=checkpoint_every
            )
        else:
            self._state = self._parser.start(keep_tokens=False)
        self._lock = threading.Lock()
        self.closed = False
        #: Why the session ended: None while live, "closed" or "evicted".
        self.end_reason: Optional[str] = None
        self.last_used = manager.clock()

    # ------------------------------------------------------------- predicates
    @property
    def position(self) -> int:
        """Number of tokens consumed so far."""
        if self._doc is not None:
            return self._doc.position
        return self._state.position

    @property
    def failed(self) -> bool:
        """True once the automaton entered the ``∅`` sink."""
        if self._doc is not None:
            return self._doc.failed
        return self._state.failed

    @property
    def failure_position(self) -> Optional[int]:
        """Index of the token that killed the stream, or None while alive."""
        if self._doc is not None:
            return self._doc.structural_failure_position
        return self._state.failure_position

    def accepts(self) -> bool:
        """True when the tokens consumed so far form a complete parse.

        Raises :class:`SessionError` once closed/evicted, like every other
        operation — a liveness probe must not silently answer from a
        deregistered session.
        """
        with self._lock:
            self._require_open()
            self._touch()
            return self._target().accepts()

    # ---------------------------------------------------------------- driving
    def feed(self, token: Any) -> "ParseSession":
        """Consume one token (no-op once failed; raises once closed)."""
        with self._lock:
            self._require_open()
            self._touch()
            if self._doc is not None:
                if not self._doc.failed:
                    self._doc.append(token)
            else:
                self._state.feed(token)
        return self

    def feed_all(self, tokens: Iterable[Any]) -> "ParseSession":
        """Consume every token from an iterable (stops pulling on failure)."""
        with self._lock:
            self._require_open()
            self._touch()
            if self._doc is not None:
                for token in tokens:
                    if self._doc.failed:
                        break
                    self._doc.append(token)
            else:
                self._state.feed_all(tokens)
        return self

    # ----------------------------------------------------------------- edits
    def apply_edit(
        self, start: int, end: int, new_tokens: Iterable[Any]
    ) -> EditResult:
        """Replace ``tokens[start:end]`` with ``new_tokens``, reparsing cheaply.

        Rewinds the session's checkpoint trail to the nearest checkpoint
        at or before ``start`` and replays only the changed region (see
        :meth:`repro.incremental.IncrementalDocument.apply_edit`).  Only
        token-retaining sessions can edit: a ``keep_tokens=False`` session
        has no buffer to edit and raises :class:`SessionError`.
        """
        with self._lock:
            self._require_open()
            self._touch()
            if self._doc is None:
                raise SessionError(
                    "session {!r} was opened with keep_tokens=False and has "
                    "no token buffer to edit".format(self.session_id)
                )
            with stage("session_edit"):
                result = self._doc.apply_edit(start, end, list(new_tokens))
        self._manager.metrics.inc("edits_applied")
        self._manager.metrics.inc("edit_tokens_refed", result.refed_tokens)
        return result

    @property
    def tokens(self) -> Optional[Tuple[Any, ...]]:
        """The retained token buffer (None for ``keep_tokens=False`` sessions)."""
        with self._lock:
            self._require_open()
            if self._doc is None:
                return None
            return self._doc.tokens

    # ---------------------------------------------------------------- results
    def tree(self) -> Any:
        """One parse tree of the consumed tokens (needs token retention).

        Falls back to interpreted derivation under the table lock (see
        :class:`~repro.compile.executor.CompiledState`); raises
        :class:`~repro.core.errors.ParseError` when the consumed prefix is
        not a complete parse.
        """
        with self._lock:
            self._require_open()
            self._touch()
            if self._doc is not None:
                return self._doc.tree()
            return self._state.tree()

    def trees(self, k: Optional[int] = None, ranking: Any = None) -> List[Any]:
        """Parse trees of the consumed tokens (needs token retention).

        With ``ranking`` set, trees come best-first under that ranking via
        the forest-query layer; ``k`` bounds how many are materialized
        either way.  Recognition-only sessions have no buffer to re-derive
        a forest from and raise :class:`SessionError`.
        """
        with self._lock:
            self._require_open()
            self._touch()
            if self._doc is None:
                raise SessionError(
                    "session {!r} was opened with keep_tokens=False and has "
                    "no token buffer to enumerate trees from".format(
                        self.session_id
                    )
                )
            return self._doc.parse_trees(limit=k, ranking=ranking)

    def sample(self, rng: Any, n: int = 1) -> List[Any]:
        """Uniform samples from the session's parse forest (needs tokens).

        ``rng`` is a :class:`random.Random` or an int seed; sampling is
        exact and count-proportional (see
        :func:`repro.core.forest_query.sample_trees`).
        """
        with self._lock:
            self._require_open()
            self._touch()
            if self._doc is None:
                raise SessionError(
                    "session {!r} was opened with keep_tokens=False and has "
                    "no token buffer to sample trees from".format(
                        self.session_id
                    )
                )
            return self._doc.sample_parses(rng, n)

    # ------------------------------------------------------------- lifecycle
    def checkpoint(self) -> SessionCheckpoint:
        """Snapshot the current progress for a later :meth:`SessionManager.restore`.

        Token-retaining sessions capture their buffer and checkpoint trail
        too (each trail entry is one state reference), so the restored
        session supports :meth:`apply_edit` at full fidelity.
        """
        with self._lock:
            self._require_open()
            self._touch()
            if self._doc is not None:
                snapshot = self._doc.state_snapshot()
                checkpoint = SessionCheckpoint(
                    entry=self.entry,
                    state=snapshot.state,
                    position=snapshot.position,
                    failure_position=snapshot.failure_position,
                    tokens=self._doc.tokens,
                    trail=self._doc.trail_snapshots(),
                    checkpoint_every=self.checkpoint_every,
                )
            else:
                state = self._state
                checkpoint = SessionCheckpoint(
                    entry=self.entry,
                    state=state.state,
                    position=state.position,
                    failure_position=state.failure_position,
                    tokens=None,
                    trail=None,
                    checkpoint_every=self.checkpoint_every,
                )
        self._manager.metrics.inc("checkpoints_taken")
        return checkpoint

    def close(self) -> None:
        """End the session and release it from the manager (idempotent)."""
        self._manager.close(self.session_id)

    def _target(self) -> Any:
        return self._doc if self._doc is not None else self._state

    def _end(self, reason: str) -> None:
        """Mark the session dead (manager-internal; registry already updated)."""
        with self._lock:
            self._end_locked(reason)

    def _end_locked(self, reason: str) -> None:
        """Mark the session dead; caller already holds the session lock."""
        if not self.closed:
            self.closed = True
            self.end_reason = reason

    def _require_open(self) -> None:
        if self.closed:
            raise SessionError(
                "session {!r} is {} and cannot be used".format(
                    self.session_id, self.end_reason or "closed"
                )
            )

    def _touch(self) -> None:
        self.last_used = self._manager.clock()

    def __repr__(self) -> str:
        status = self.end_reason if self.closed else (
            "failed@{}".format(self.failure_position) if self.failed else "alive"
        )
        return "ParseSession({}, position={}, {})".format(
            self.session_id, self.position, status
        )


class SessionManager:
    """Registry of live sessions with TTL-based idle eviction.

    ``idle_ttl`` is in seconds of ``clock`` time (``time.monotonic`` by
    default; tests inject a fake clock); ``None`` disables eviction.
    Sweeps run opportunistically on :meth:`open` — a service that opens
    sessions keeps its registry tidy without a background thread — and on
    demand via :meth:`sweep`.

    Session ids are drawn from a **per-manager** counter and prefixed
    with a process-unique manager tag, so co-resident managers (two
    services in one process, a test harness next to a service) can never
    mint colliding ids or resolve each other's sessions by accident.
    """

    #: Process-wide source of manager tags only; session counters are
    #: per-instance (a shared session counter once let ids from different
    #: managers interleave — and resolve — across registries).
    _manager_tags = itertools.count(1)

    def __init__(
        self,
        metrics: Optional[ServiceMetrics] = None,
        idle_ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        logger: Optional[StructuredLogger] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.logger = logger if logger is not None else NULL_LOGGER
        self.idle_ttl = idle_ttl
        self.clock = clock
        self.tag = "m{}".format(next(SessionManager._manager_tags))
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._sessions: Dict[str, ParseSession] = {}

    # ------------------------------------------------------------------ API
    def open(
        self,
        entry: CacheEntry,
        keep_tokens: bool = True,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> ParseSession:
        """Create and register a session over ``entry``'s compiled table."""
        self.sweep()
        session_id = "{}-s{}".format(self.tag, next(self._ids))
        session = ParseSession(
            session_id,
            entry,
            self,
            keep_tokens=keep_tokens,
            checkpoint_every=checkpoint_every,
        )
        with self._lock:
            self._sessions[session_id] = session
        self.metrics.inc("sessions_opened")
        self.logger.log(
            "session_opened",
            session=session_id,
            grammar=entry.fingerprint[:12],
            keep_tokens=keep_tokens,
        )
        return session

    def restore(self, checkpoint: SessionCheckpoint) -> ParseSession:
        """Open a new session resuming exactly at ``checkpoint``.

        The new session is independent of the one that took the snapshot
        (which may since have advanced, failed or closed): same automaton
        state, same position, same checkpoint trail when one was captured,
        its own lifecycle.  It is registered, touched and evictable like
        any freshly opened session, and counted in ``sessions_restored``.
        """
        session = self.open(
            checkpoint.entry,
            keep_tokens=checkpoint.tokens is not None,
            checkpoint_every=checkpoint.checkpoint_every,
        )
        snapshot = CompiledSnapshot(
            checkpoint.state, checkpoint.position, checkpoint.failure_position
        )
        try:
            # The session is already published in the registry: mutate its
            # state only under its own lock, like every other session op.
            with session._lock:
                if checkpoint.tokens is not None:
                    trail = checkpoint.trail
                    if not trail:
                        # A checkpoint built without a trail (the pre-trail
                        # SessionCheckpoint signature still constructs) is
                        # restorable too — anchor it at the automaton's
                        # start state; edits just rewind further.
                        trail = (
                            CompiledSnapshot(session._parser.table.start, 0, None),
                        )
                    session._doc = IncrementalDocument.restore(
                        session._parser,
                        checkpoint.tokens,
                        trail,
                        snapshot,
                        checkpoint_every=checkpoint.checkpoint_every,
                    )
                else:
                    state = session._state
                    state.state = checkpoint.state
                    state.position = checkpoint.position
                    state.failure_position = checkpoint.failure_position
        except BaseException:
            # Never leak a half-initialized session in the registry.
            self.close(session.session_id)
            raise
        self.metrics.inc("sessions_restored")
        self.logger.log(
            "session_restored",
            session=session.session_id,
            position=checkpoint.position,
            grammar=checkpoint.entry.fingerprint[:12],
        )
        return session

    def get(self, session_id: str) -> ParseSession:
        """Look up a live session by id (raises :class:`SessionError` if gone)."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionError("no live session {!r}".format(session_id))
        return session

    def close(self, session_id: str) -> None:
        """Close and deregister a session (idempotent)."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is not None and not session.closed:
            session._end("closed")
            self.metrics.inc("sessions_closed")
            self.logger.log(
                "session_closed", session=session_id, position=session.position
            )

    def sweep(self, now: Optional[float] = None) -> int:
        """Evict every session idle longer than ``idle_ttl``; return the count.

        Eviction is two-phase to close the select-then-evict race: idle
        *candidates* are gathered under the manager lock, then each is
        re-validated — and marked ended — under its **own** lock, so a
        session whose ``feed``/``tree`` touched it between the two reads
        (or is holding its lock mid-operation right now) is skipped, never
        ended mid-use.  Only then are the confirmed corpses deregistered.
        """
        if self.idle_ttl is None:
            return 0
        if now is None:
            now = self.clock()
        cutoff = now - self.idle_ttl
        with self._lock:
            candidates = [
                session
                for session in self._sessions.values()
                if session.last_used <= cutoff
            ]
        evicted: List[ParseSession] = []
        for session in candidates:
            with session._lock:
                # Re-validate under the session's lock: a concurrent op may
                # have touched (or closed) it after the candidate scan.
                if session.closed or session.last_used > cutoff:
                    continue
                session._end_locked("evicted")
                evicted.append(session)
        if evicted:
            with self._lock:
                for session in evicted:
                    self._sessions.pop(session.session_id, None)
            self.metrics.inc("sessions_evicted", len(evicted))
            for session in evicted:
                self.logger.log(
                    "session_evicted",
                    session=session.session_id,
                    position=session.position,
                )
        return len(evicted)

    def live_sessions(self) -> List[ParseSession]:
        """Every currently registered session."""
        with self._lock:
            return list(self._sessions.values())

    def close_all(self) -> None:
        """Close every registered session (service shutdown)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        closed = 0
        for session in sessions:
            if not session.closed:
                session._end("closed")
                closed += 1
        if closed:
            self.metrics.inc("sessions_closed", closed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
