"""Per-state token-class analysis for the lazy automaton compiler.

A derivative step is fully determined by which of the state's reachable
:class:`~repro.core.languages.Token` leaves accept the input token: deriving
rewrites every matching leaf to ``ε`` and every non-matching leaf to ``∅``,
and everything above the leaves depends only on that match pattern.  Two
tokens with the same *match signature* therefore take a state to the same
successor, so one cached transition can cover an arbitrarily large slice of
the token alphabet — the grammar-level analogue of the character classes
used by derivative-based regex engines (see
:func:`repro.regex.derivatives.signature_partition`, whose partition logic
this module reuses).

Signatures are value-*insensitive*: a ``NUMBER`` token carrying ``"7"`` and
one carrying ``"42"`` share a signature even though their derivatives carry
different parse-tree payloads.  That is exactly why the compiled automaton
is a *recognition* device — nullability, match signatures and structural
collapse to ``∅`` are all payload-independent — and why parse-forest
extraction falls back to on-the-fly derivation (see
:class:`repro.compile.CompiledParser`).

A state is *kind-pure* when none of its terminals carries a match predicate:
every terminal then matches by token kind alone, the signature is a function
of the kind, and the executor may cache ``kind → successor`` directly.
States with predicate terminals (which may inspect token *values*) stay
sound by recomputing the signature per token.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Tuple

from ..core.languages import Language, Token, terminal_nodes
from ..regex.derivatives import signature_partition

__all__ = ["TokenClassifier"]


#: A match signature: the ids of the state's terminals the token satisfies.
Signature = FrozenSet[int]


class TokenClassifier:
    """The token-class view of a language's terminal alphabet.

    The :class:`~repro.compile.automaton.GrammarTable` builds exactly one
    classifier, from the grammar *root* (an O(graph) traversal paid once
    per table), and shares it across every automaton state: derivation
    never creates new ``Token`` leaves, so the root's terminals are a
    superset of any state's, and equal signatures over a superset imply
    equal signatures over the state's own terminals.  ``signature(tok)``
    is the interning key for each state's transition table: every token
    mapping to the same signature shares the state's outgoing edge.
    (The class itself works on any language node — per-state instances are
    sound too, just needlessly expensive at one graph scan per state.)
    """

    __slots__ = ("terminals", "pure")

    def __init__(self, language: Language) -> None:
        self.terminals: List[Token] = terminal_nodes(language)
        self.pure: bool = all(term.predicate is None for term in self.terminals)

    def signature(self, tok: Any) -> Signature:
        """The set of terminal node ids accepting ``tok`` (the class key)."""
        return frozenset(term.node_id for term in self.terminals if term.matches(tok))

    def classes(self, tokens: Iterable[Any]) -> Dict[Tuple[bool, ...], List[Any]]:
        """Partition ``tokens`` into equivalence classes for this state.

        Delegates to the regex engine's :func:`signature_partition` — the
        same acceptance-vector grouping, with this state's terminal matchers
        as the acceptors.  Useful for eager warm-up over a known alphabet
        and for inspecting how coarse the state's classes are.
        """
        return signature_partition(tokens, [term.matches for term in self.terminals])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "TokenClassifier(terminals={}, pure={})".format(
            len(self.terminals), self.pure
        )
