"""Serialization of compiled grammar tables (ship a hot grammar pre-warmed).

A serialized table is a JSON document holding the automaton's *shape* —
state indices, accepting flags, flattened ``kind → successor`` transitions —
plus, per state, a **witness**: the parent state and the representative
token that first reached it.  Languages, classifiers and memo entries are
deliberately not serialized (they hold arbitrary Python callables); instead,
a loaded state starts unmaterialized, and the witness chain lets the table
re-derive its language on demand the first time a parse steps off the
serialized transitions (:meth:`GrammarTable.materialize`).

Consequences:

* Input covered by the serialized transitions parses with **zero**
  derivation — warm-cache performance straight from disk.
* Input that leaves the serialized automaton pays one witness re-derivation
  per state it revives, then proceeds exactly like a live table.
* A table can only be re-attached to *the grammar it was compiled from*;
  :func:`load_table` verifies the grammar's structural fingerprint
  (:func:`repro.core.languages.structural_fingerprint`) and refuses
  mismatches unless ``strict=False``.

Only JSON-representable token data survives serialization: states whose
witness token has a non-string kind (or a non-scalar value) are dropped,
together with the transitions pointing at them, as are ``kind`` edges whose
kind is not a string.  Kind-impure states (predicate terminals) serialize
without transitions — their classification is value-dependent and must be
recomputed live.

Version 2 additionally persists the table's dense layout
(:class:`~repro.compile.automaton.DenseCore`): a top-level ``dense_kinds``
table (scalar kinds only, in dense-kid order) and a per-state ``row`` of
ints aligned with it — serialized state indices, ``-1`` for the dead sink,
``-2`` for unexplored.  The loader re-interns both sides into the fresh
table's core (and rebuilds the linked execution rows compactly), so a
loaded table runs the dense hot path with zero derivations *and* zero
dense fallbacks on input the saved automaton covered.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..core.errors import ReproError
from ..core.languages import token_kind, token_value
from ..core.metrics import Metrics
from ..lexer.tokens import Tok
from .automaton import DENSE_DEAD, DENSE_UNEXPLORED, AutomatonState, GrammarTable

__all__ = ["save_table", "load_table", "dump_table", "restore_table", "FORMAT", "VERSION"]

FORMAT = "repro-compiled-table"
#: Version 2: the dense-core layout (``dense_kinds`` + per-state ``row``)
#: rides along with the object-layer transitions.  Version-1 documents
#: predate the dense core and are rejected — re-save from a live table.
VERSION = 2

_SCALAR = (str, int, float, bool, type(None))


def _witness_fields(state: AutomatonState) -> Optional[Dict[str, Any]]:
    """The JSON form of a state's witness token, or None when unserializable."""
    if state.via is None:
        return None
    kind = token_kind(state.via)
    value = token_value(state.via)
    if not isinstance(kind, str) or not isinstance(value, _SCALAR):
        return None
    return {"kind": kind, "value": value}


def dump_table(table: GrammarTable) -> Dict[str, Any]:
    """Render ``table`` as a JSON-serializable dictionary."""
    states = table.states()
    # A state is placeable iff a serializable witness chain links it to the
    # start state; everything else (and every edge into it) is dropped.
    placeable: Dict[int, bool] = {}
    witnesses: Dict[int, Optional[Dict[str, Any]]] = {}
    for state in states:  # creation order ⇒ parents precede children
        if state.parent is None:
            placeable[state.index] = state is table.start
            witnesses[state.index] = None
            continue
        witness = _witness_fields(state)
        witnesses[state.index] = witness
        placeable[state.index] = witness is not None and placeable.get(
            state.parent.index, False
        )

    # The dense layout ships as a top-level kind table (scalar kinds only,
    # in dense-kid order) plus one int row per serialized state, aligned
    # with it.  Row entries use serialized *state indices* — the same
    # namespace as the ``kinds`` dicts — with the dead/unexplored
    # sentinels passed through; targets whose state was dropped serialize
    # as unexplored so the loaded table re-derives them on demand.
    core = table.dense
    dense_columns: List[int] = []
    dense_kinds: List[Any] = []
    if core is not None:
        for kid, kind in enumerate(core.kinds):
            if isinstance(kind, _SCALAR):
                dense_columns.append(kid)
                dense_kinds.append(kind)

    serialized: List[Dict[str, Any]] = []
    dropped = 0
    for state in states:
        if not placeable[state.index]:
            dropped += 1
            continue
        kinds: Dict[str, int] = {}
        for kind, successor in state.by_kind.items():
            if not isinstance(kind, str):
                continue
            if successor.dead:
                kinds[kind] = -1
            elif placeable.get(successor.index, False):
                kinds[kind] = successor.index
        entry: Dict[str, Any] = {
            "index": state.index,
            "accepting": bool(state.accepting),
            "parent": state.parent.index if state.parent is not None else None,
            "via": witnesses[state.index],
            "kinds": kinds,
        }
        if core is not None and state.dense_id is not None:
            dense_row = core.rows[state.dense_id]
            row: List[int] = []
            for kid in dense_columns:
                target = dense_row[kid]
                if target >= 0:
                    successor = core.states[target]
                    row.append(
                        successor.index
                        if placeable.get(successor.index, False)
                        else DENSE_UNEXPLORED
                    )
                else:
                    row.append(target)
            entry["row"] = row
        serialized.append(entry)

    document = {
        "format": FORMAT,
        "version": VERSION,
        "fingerprint": table.fingerprint,
        # Whether the grammar was optimized before compiling: the loader
        # must rebuild the same way or the fingerprints (taken over the
        # post-optimization root) can never match.
        "optimized": table.optimized,
        "pure": table.pure,
        "start": table.start.index,
        "dropped_states": dropped,
        "states": serialized,
    }
    if core is not None:
        document["dense_kinds"] = dense_kinds
    return document


def save_table(table: GrammarTable, path: str) -> None:
    """Write ``table`` to ``path`` as JSON (see :func:`dump_table`)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dump_table(table), handle, separators=(",", ":"))


def restore_table(
    data: Dict[str, Any],
    grammar: Any,
    strict: bool = True,
    metrics: Optional[Metrics] = None,
) -> GrammarTable:
    """Rebuild a :class:`GrammarTable` over ``grammar`` from dumped ``data``.

    The grammar is prepared exactly the way it was for the saved table
    (the dumped ``optimized`` flag), so fingerprints compare like for
    like.  The returned table is *independent* of the grammar-owned table
    :func:`~repro.compile.automaton.compile_grammar` shares — callers
    decide whether to adopt it (pass it to
    :class:`~repro.compile.CompiledParser` via ``table=``).  ``metrics``
    (optional) becomes the fresh table's engine counter bag, so a cache
    that warm-loads tables can meter them like ones it compiled itself.

    **``strict=False`` semantics.**  ``strict`` controls only the two
    *identity* guards — the structural-fingerprint match and the
    kind-purity agreement.  Passing ``strict=False`` attaches the document
    to ``grammar`` without either check; everything else (format/version
    validation, state wiring, dense-row restoration) is identical.  The
    contract is *the caller vouches for the grammar*: serialized
    transitions and accepting flags are replayed as saved, so input covered
    by the saved automaton is answered by the **saved** grammar's automaton,
    while input that steps off it re-derives through witness chains over
    the **attached** grammar.  When the attached grammar really is
    structurally equivalent (the intended use: a fingerprint-algorithm
    drift between builds, a hand-verified refactor of payload objects the
    fingerprint cannot see), behaviour is exactly the strict path.  When it
    is not, covered input silently answers for the wrong language — which
    is why the guards are on by default and ``strict=False`` is an explicit
    caller assertion, not a fallback.
    """
    if data.get("format") != FORMAT:
        raise ReproError("not a compiled-table document: {!r}".format(data.get("format")))
    if data.get("version") != VERSION:
        raise ReproError(
            "unsupported compiled-table version {0!r}: this build reads only "
            "version {1} (version {1} added the dense-core layout; older "
            "documents carry no dense rows).  Re-save the table from a live "
            "{1}-format build with save_table().".format(
                data.get("version"), VERSION
            )
        )

    table = GrammarTable(
        grammar, optimize=bool(data.get("optimized", True)), metrics=metrics
    )
    if strict and data.get("fingerprint") != table.fingerprint:
        raise ReproError(
            "compiled table was built from a structurally different grammar "
            "(fingerprint mismatch); pass strict=False to attach anyway"
        )
    if strict and "pure" in data and bool(data["pure"]) != table.pure:
        raise ReproError(
            "compiled table disagrees with the grammar on kind-purity "
            "(saved pure={}, grammar pure={}); pass strict=False to attach "
            "anyway".format(bool(data["pure"]), table.pure)
        )

    entries = data.get("states", [])
    start_index = data.get("start", 0)
    by_serialized_index: Dict[int, AutomatonState] = {}

    # Pass 1: create (or adopt) one state per serialized entry.  Restored
    # states register with the fresh table's dense core as they are
    # created, so dense ids exist before pass 3 wires the rows.
    for entry in entries:
        if entry["index"] == start_index:
            by_serialized_index[entry["index"]] = table.start
            continue
        state = AutomatonState(
            index=len(table._by_index),
            language=None,
            accepting=bool(entry["accepting"]),
        )
        table._by_index.append(state)
        if table.dense is not None:
            table.dense.add_state(state)
        by_serialized_index[entry["index"]] = state

    # Pass 2: wire witnesses and flattened kind transitions.
    for entry in entries:
        state = by_serialized_index[entry["index"]]
        parent_index = entry.get("parent")
        if parent_index is not None and state is not table.start:
            state.parent = by_serialized_index.get(parent_index)
            via = entry.get("via")
            if via is not None:
                state.via = Tok(via["kind"], via["value"])
        for kind, successor_index in entry.get("kinds", {}).items():
            if successor_index == -1:
                state.by_kind[kind] = table.dead
            else:
                successor = by_serialized_index.get(successor_index)
                if successor is not None:
                    state.by_kind[kind] = successor

    # Pass 3: rebuild the dense core.  The serialized rows restore every
    # scalar-kind edge (including non-string kinds the ``kinds`` dicts
    # cannot carry); a sweep over the restored ``by_kind`` edges then
    # covers documents without rows (e.g. a strict=False cross-attach),
    # idempotently.  Built here in one allocation burst, the linked rows
    # are already compact — mark them packed so the executor does not
    # schedule a redundant repack.
    core = table.dense
    if core is not None:
        dense_kinds = data.get("dense_kinds") or []
        with table.lock:
            kid_of_column = [core.intern_kind(kind) for kind in dense_kinds]
        for entry in entries:
            row_doc = entry.get("row")
            if not row_doc:
                continue
            sid = by_serialized_index[entry["index"]].dense_id
            if sid is None:
                continue
            for column, target in enumerate(row_doc):
                if column >= len(kid_of_column) or target == DENSE_UNEXPLORED:
                    continue
                kid = kid_of_column[column]
                if target == DENSE_DEAD:
                    core.rows[sid][kid] = DENSE_DEAD
                    continue
                target_state = by_serialized_index.get(target)
                if target_state is not None and target_state.dense_id is not None:
                    tsid = target_state.dense_id
                    core.rows[sid][kid] = tsid
                    core.links[sid][core.kinds[kid]] = core.links[tsid]
        for entry in entries:
            state = by_serialized_index[entry["index"]]
            for kind, successor in state.by_kind.items():
                core.record_edge(table.lock, state, kind, successor)
        core.packed_states = len(core.rows)

    return table


def load_table(
    path: str,
    grammar: Any,
    strict: bool = True,
    metrics: Optional[Metrics] = None,
) -> GrammarTable:
    """Read a table from ``path`` and attach it to ``grammar``.

    ``strict``/``metrics`` behave exactly as in :func:`restore_table` (see
    there for the ``strict=False`` caller-vouches contract).
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return restore_table(data, grammar, strict=strict, metrics=metrics)
