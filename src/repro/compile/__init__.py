"""repro.compile — a lazy derivative-automaton compiler for grammars.

Instead of re-deriving the grammar on every parse, a grammar is compiled
**once** into a reusable automaton:

* states are interned derivative closures (hash-consed on node identity,
  backed by a grammar-lifetime derive memo),
* transitions are memoized per ``state × token-class`` — one edge covers
  every token with the same match signature
  (:class:`~repro.compile.classes.TokenClassifier`),
* the transition table is owned by the *grammar* and persists across parses
  and across parser instances
  (:func:`~repro.compile.automaton.compile_grammar`),
* tables serialize to JSON and re-attach to their grammar pre-warmed
  (:func:`~repro.compile.serialize.save_table` /
  :func:`~repro.compile.serialize.load_table`).

Quickstart::

    from repro.grammars import arithmetic_grammar
    from repro.compile import CompiledParser, save_table, load_table

    grammar = arithmetic_grammar()
    parser = CompiledParser(grammar)          # compiles lazily, on demand
    parser.recognize(tokens)                  # cold: derives + fills table
    parser.recognize(tokens)                  # warm: dict lookups per token

    save_table(parser.table, "arith.table.json")
    warmed = CompiledParser(table=load_table("arith.table.json", grammar))
    warmed.recognize(tokens)                  # warm from disk, no derivation

``CompiledParser`` exposes the same ``recognize`` / ``parse`` / ``start()``
+ ``feed`` API as :class:`~repro.core.parse.DerivativeParser`; recognition
runs on the automaton, while tree-producing calls fall back to on-the-fly
derivation (compiled transitions are token-class-interned and do not carry
per-token parse-tree payloads).
"""

from .automaton import (
    DENSE_DEAD,
    DENSE_UNEXPLORED,
    AutomatonState,
    DenseCore,
    GrammarTable,
    as_root,
    compile_grammar,
    discard_table,
)
from .classes import TokenClassifier
from .executor import CompiledParser, CompiledSnapshot, CompiledState
from .serialize import dump_table, load_table, restore_table, save_table

__all__ = [
    "CompiledParser",
    "CompiledState",
    "CompiledSnapshot",
    "GrammarTable",
    "AutomatonState",
    "DenseCore",
    "DENSE_UNEXPLORED",
    "DENSE_DEAD",
    "TokenClassifier",
    "compile_grammar",
    "discard_table",
    "as_root",
    "save_table",
    "load_table",
    "dump_table",
    "restore_table",
]
