"""The compiled-automaton executor: :class:`CompiledParser`.

``CompiledParser`` exposes the same surface as
:class:`~repro.core.parse.DerivativeParser` — ``recognize``, ``parse``,
``parse_forest``, ``parse_trees``, and a streaming ``start()`` state with
``feed``/``feed_all`` — but drives recognition through the grammar's shared
:class:`~repro.compile.automaton.GrammarTable` instead of deriving per
token.  On a kind-pure table the warm hot loop runs entirely on the
table's :class:`~repro.compile.automaton.DenseCore`: int-interned kinds
and states with canonical transition rows (``rows[state_id][kind_id]``),
executed through the core's *linked* rows — one small-dict probe per
token chasing successor row dicts by reference, with no Python-level
classification call, no ``AutomatonState`` hops and no per-token
allocation.  Unexplored edges fall back to the object layer's
``step_slow`` (which promotes the resolved edge into the core), and
kind-impure tables skip the dense core entirely and run the object path:
one ``kind → successor`` dict probe per token, falling back to class
signature → successor (kept public as
:meth:`CompiledParser.recognize_object`, the dense path's differential
reference).

Parse-*forest* obligations cannot ride the automaton: transitions are
interned per token **class**, so a cached successor carries the parse-tree
payloads of whichever class representative first crossed the edge, not of
the token actually consumed.  Any API that must produce trees therefore
falls back to on-the-fly derivation through an internal
:class:`~repro.core.parse.DerivativeParser` over the same grammar root
(sound to interleave with the table: all node-resident caches are owner- or
epoch-tagged, per PR 1's isolation machinery).  Failure diagnostics ride
the same fallback, so rejection positions agree with the interpreted parser
exactly.

**Concurrency contract.**  Recognition (``recognize``, ``start()`` states,
``feed``) is safe to run from many threads over one shared table: warm
walks are lock-free dictionary probes and cold edges are derived under the
table's lock (see :mod:`repro.compile.automaton`).  The tree-producing
APIs (``parse``/``parse_forest``/``parse_trees`` and
``CompiledState.tree``/``forest``) derive on the *same grammar graph* as
the table, so they hold the table lock for the duration of the fallback
parse — correct from any thread, but serialized; services that need
parallel tree extraction should give each worker its own thread-confined
:class:`DerivativeParser` over a private graph
(:func:`repro.core.languages.clone_graph`), which is exactly what
:class:`repro.serve.ParseService` does.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.forest import ForestNode
from ..core.languages import Language, token_kind
from ..core.parse import DerivativeParser
from ..obs.trace import current_trace
from .automaton import (
    DENSE_DEAD,
    DENSE_SID,
    AutomatonState,
    GrammarTable,
    compile_grammar,
)

__all__ = ["CompiledParser", "CompiledState", "CompiledSnapshot"]


class CompiledSnapshot:
    """An O(1) snapshot of a :class:`CompiledState` at one stream position.

    Automaton states are interned and grammar-lifetime, so the snapshot is
    one reference plus two integers — the compiled analogue of
    :class:`~repro.core.parse.ParserSnapshot`, and the unit
    :mod:`repro.incremental` checkpoint trails are made of.  Consumed
    tokens are deliberately *not* captured (trail owners keep the one
    authoritative token buffer); resume with
    :meth:`CompiledParser.resume`, passing ``tokens`` when the resumed
    state must support ``tree()``/``forest()``.
    """

    __slots__ = ("state", "position", "failure_position", "dense_id")

    def __init__(
        self,
        state: AutomatonState,
        position: int,
        failure_position: Optional[int],
    ) -> None:
        self.state = state
        self.position = position
        self.failure_position = failure_position
        #: The pinned state's id in the table's dense core (None on impure
        #: tables, transient states and the ``∅`` sink).  Interned states
        #: and dense ids are bijective, so trail consumers — the shadow
        #: cursor of :mod:`repro.incremental` — can compare ints instead
        #: of object identities when deciding re-convergence.
        self.dense_id = state.dense_id

    def __repr__(self) -> str:
        status = (
            "failed@{}".format(self.failure_position)
            if self.failure_position is not None
            else "alive"
        )
        return "CompiledSnapshot(state={}, position={}, {})".format(
            self.state.index, self.position, status
        )


class CompiledState:
    """Streaming execution state over a :class:`CompiledParser`.

    Mirrors :class:`~repro.core.parse.ParserState`: ``feed`` consumes one
    token, ``failed``/``failure_position`` report structural death (the
    automaton's ``∅`` sink), ``accepts()`` is definitive for the tokens
    consumed so far.  Unlike the interpreted state it (by default) also
    *retains* the consumed tokens, because ``forest()``/``tree()`` re-derive
    them through the fallback parser (token values do not survive
    class-interned transitions); memory is O(tokens consumed) rather than
    O(live grammar).  Recognition-only callers streaming unbounded input
    should pass ``keep_tokens=False`` to :meth:`CompiledParser.start` —
    memory drops to O(1) per token and ``forest()``/``tree()`` raise.
    """

    __slots__ = (
        "parser",
        "table",
        "state",
        "position",
        "failure_position",
        "tokens",
        "snapshot_every",
        "on_snapshot",
    )

    def __init__(
        self,
        parser: "CompiledParser",
        keep_tokens: bool = True,
        snapshot_every: Optional[int] = None,
        on_snapshot: Optional[Callable[["CompiledSnapshot"], None]] = None,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError(
                "snapshot_every must be >= 1, got {}".format(snapshot_every)
            )
        self.parser = parser
        self.table = parser.table
        self.state: AutomatonState = parser.table.start
        #: Number of tokens consumed so far.
        self.position = 0
        #: Index of the token that killed the automaton, or None while alive.
        self.failure_position: Optional[int] = None
        #: Every consumed token, retained for the forest fallback — or None
        #: when the caller opted out of retention.
        self.tokens: Optional[List[Any]] = [] if keep_tokens else None
        #: Emit a snapshot to ``on_snapshot`` every this many tokens (the
        #: checkpoint-trail hook; None disables it); alive states only.
        self.snapshot_every = snapshot_every
        self.on_snapshot = on_snapshot

    # ------------------------------------------------------------- predicates
    @property
    def failed(self) -> bool:
        """True once the automaton has entered the ``∅`` sink."""
        return self.failure_position is not None

    def accepts(self) -> bool:
        """True when the tokens consumed so far form a complete parse."""
        return self.failure_position is None and self.state.accepting

    # -------------------------------------------------------------- snapshots
    def snapshot(self) -> CompiledSnapshot:
        """An O(1) reference snapshot of this state (see :class:`CompiledSnapshot`)."""
        return CompiledSnapshot(self.state, self.position, self.failure_position)

    # ---------------------------------------------------------------- driving
    def feed(self, tok: Any) -> "CompiledState":
        """Consume one token (a no-op once failed, keeping the position).

        Probes the table's dense core first (one linked-row dict get);
        unexplored edges, dead edges, unknown kinds and dense-less tables
        fall back to the object layer exactly like
        :meth:`CompiledParser.recognize_object`.
        """
        if self.failure_position is not None:
            return self
        if self.tokens is not None:
            self.tokens.append(tok)
        state = self.state
        successor = None
        core = self.table.dense
        sid = state.dense_id
        if core is not None and sid is not None:
            try:
                nxt = core.links[sid].get(getattr(tok, "kind", tok))
            except TypeError:  # unhashable kind guess (exotic token shape)
                nxt = None
            if nxt is not None:
                successor = core.states[nxt[DENSE_SID]]
        if successor is None:
            successor = state.by_kind.get(token_kind(tok))
            if successor is None:
                successor = self.table.step_slow(state, tok)
        self.position += 1
        if successor.dead:
            self.failure_position = self.position - 1
            self.state = successor
            return self
        self.state = successor
        if (
            self.snapshot_every is not None
            and self.on_snapshot is not None
            and self.position % self.snapshot_every == 0
        ):
            self.on_snapshot(self.snapshot())
        return self

    def feed_all(self, tokens: Iterable[Any]) -> "CompiledState":
        """Consume every token (stops pulling the iterable on failure)."""
        if self.failure_position is not None:
            return self
        for tok in tokens:
            self.feed(tok)
            if self.failure_position is not None:
                break
        return self

    # ---------------------------------------------------------------- results
    def forest(self) -> ForestNode:
        """Parse forest of the consumed tokens (fallback derivation).

        Delegates unconditionally — on failed states too — so the raised
        :class:`ParseError` carries the fallback's exact semantic failure
        position (the automaton's ``failure_position`` is *structural* and
        can lag the token that actually killed the parse).
        """
        return self.parser.parse_forest(self._retained())

    def tree(self) -> Any:
        """One parse tree of the consumed tokens (fallback derivation)."""
        return self.parser.parse(self._retained())

    def trees(
        self, limit: Optional[int] = None, ranking: Optional[Any] = None
    ) -> List[Any]:
        """Up to ``limit`` trees of the consumed tokens, optionally ranked."""
        return self.parser.parse_trees(self._retained(), limit=limit, ranking=ranking)

    def sample(self, rng: Any, n: int = 1) -> List[Any]:
        """``n`` uniform samples over the consumed tokens' parse forest."""
        return self.parser.sample_parses(self._retained(), rng, n=n)

    def _retained(self) -> List[Any]:
        if self.tokens is None:
            raise ValueError(
                "this state was started with keep_tokens=False; forest()/"
                "tree() need the consumed tokens for the derivation fallback"
            )
        return self.tokens

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        status = (
            "failed@{}".format(self.failure_position)
            if self.failure_position is not None
            else "alive"
        )
        return "CompiledState(position={}, {})".format(self.position, status)


class CompiledParser:
    """A parser that executes the grammar's compiled derivative automaton.

    Parameters
    ----------
    grammar:
        A :class:`~repro.core.languages.Language` root or an object with a
        ``language()``/``to_language()`` conversion.  Parsers constructed
        over the same root share one :class:`GrammarTable` — the transition
        cache persists across parses *and* across parser instances.
    table:
        An explicit pre-built (e.g. deserialized) table to execute instead
        of the registry's shared one.
    max_states:
        Forwarded to :func:`compile_grammar` when the table is built here.

    The recognition path never extracts trees and is value-insensitive;
    ``parse``/``parse_forest``/``parse_trees`` delegate to an internal
    :class:`DerivativeParser` over the same root (the on-the-fly fallback
    for parse-forest obligations), which also supplies exact failure
    positions on the error path.
    """

    def __init__(
        self,
        grammar: Any = None,
        table: Optional[GrammarTable] = None,
        max_states: Optional[int] = None,
    ) -> None:
        if table is None:
            if grammar is None:
                raise TypeError("CompiledParser needs a grammar or a table")
            table = compile_grammar(grammar, max_states=max_states)
        self.table = table
        self._fallback: Optional[DerivativeParser] = None

    # ------------------------------------------------------------------ API
    @property
    def root(self) -> Language:
        """The (optimized) grammar root the automaton executes."""
        return self.table.root

    def fallback(self) -> DerivativeParser:
        """The on-the-fly derivation engine behind tree-producing APIs.

        The fallback derives on the same grammar graph the table compiles,
        so callers must hold ``self.table.lock`` while driving it (the
        tree-producing methods below do).
        """
        if self._fallback is None:
            # The table's root is already optimized; skip re-optimizing.
            self._fallback = DerivativeParser(self.table.root, optimize_grammar=False)
        return self._fallback

    def start(
        self,
        keep_tokens: bool = True,
        snapshot_every: Optional[int] = None,
        on_snapshot: Optional[Callable[[CompiledSnapshot], None]] = None,
    ) -> CompiledState:
        """Begin a streaming run; see :class:`CompiledState`.

        Pass ``keep_tokens=False`` for recognition-only streaming over
        unbounded input: the state stops retaining consumed tokens (O(1)
        memory per token) and ``forest()``/``tree()`` become unavailable.
        ``snapshot_every``/``on_snapshot`` enable the checkpoint-trail
        hook: every ``snapshot_every`` consumed tokens the (alive) state
        hands an O(1) :class:`CompiledSnapshot` to ``on_snapshot``.
        """
        return CompiledState(
            self,
            keep_tokens=keep_tokens,
            snapshot_every=snapshot_every,
            on_snapshot=on_snapshot,
        )

    def resume(
        self,
        snapshot: CompiledSnapshot,
        tokens: Optional[Sequence[Any]] = None,
        snapshot_every: Optional[int] = None,
        on_snapshot: Optional[Callable[[CompiledSnapshot], None]] = None,
    ) -> CompiledState:
        """A new :class:`CompiledState` positioned exactly at ``snapshot``.

        The snapshot must come from a state over this parser's table (state
        indices are table-scoped).  Snapshots do not capture consumed
        tokens, so the resumed state supports ``tree()``/``forest()`` only
        when the caller supplies the consumed prefix via ``tokens``.
        """
        state = CompiledState(
            self,
            keep_tokens=tokens is not None,
            snapshot_every=snapshot_every,
            on_snapshot=on_snapshot,
        )
        state.state = snapshot.state
        state.position = snapshot.position
        state.failure_position = snapshot.failure_position
        if tokens is not None:
            state.tokens = list(tokens)
        return state

    def reset(self) -> None:
        """Reset per-parse state (the grammar table deliberately survives).

        Parity hook for :meth:`DerivativeParser.reset`: the compiled
        executor keeps no per-parse caches of its own, and the transition
        table is grammar-lifetime by design, so only the fallback parser's
        per-parse memo is cleared.
        """
        if self._fallback is not None:
            with self.table.lock:
                self._fallback.reset()

    def stats(self) -> Dict[str, Any]:
        """The shared table's size/warmth statistics."""
        return self.table.stats()

    # ------------------------------------------------------------ recognition
    def recognize(self, tokens: Iterable[Any]) -> bool:
        """True when the token sequence is in the grammar's language.

        The hot path: the table's dense core
        (:class:`~repro.compile.automaton.DenseCore`) executed over its
        linked rows — one small-dict probe per warm token — entering the
        object layer only on unexplored edges and leaving it again as soon
        as the resolved successor has a dense id.  Kind-impure tables (no
        dense core) run :meth:`recognize_object` unchanged.
        """
        return self.recognize_with_stats(tokens)[0]

    def recognize_with_stats(self, tokens: Iterable[Any]) -> "Tuple[bool, int, int]":
        """Recognize and report ``(accepted, dense_hits, dense_fallbacks)``.

        The counts cover *this call only*: tokens resolved by a dense row
        vs. tokens routed through the object layer (cold edge, unknown
        kind, or a transient cursor past the state cap).  Both are zero
        when the table has no dense core.  The counts are also folded into
        the table's lifetime totals (``stats()['dense_hits']`` /
        ``['dense_fallbacks']`` and the shared
        :class:`~repro.core.metrics.Metrics`) under the table lock — one
        acquisition per run, never per token.

        Observability rides one branch per *run*, never per token: when a
        :mod:`repro.obs` trace is active in this context the whole run is
        recorded as a ``recognize`` stage span; when none is (the
        default), the cost is this single contextvar read —
        ``benchmarks/bench_obs_overhead.py`` gates it at ≤ 5% over the
        bare dense loop.
        """
        trace = current_trace()
        if trace is None:
            return self._recognize_with_stats(tokens)
        with trace.span("recognize"):
            return self._recognize_with_stats(tokens)

    def _recognize_with_stats(self, tokens: Iterable[Any]) -> "Tuple[bool, int, int]":
        """The untraced body of :meth:`recognize_with_stats`."""
        table = self.table
        core = table.dense
        if core is None:
            return self.recognize_object(tokens), 0, 0
        sid = table.start.dense_id
        if sid is None:  # start state transient (max_states=0): no dense run
            return self.recognize_object(tokens), 0, 0
        if not isinstance(tokens, (list, tuple)):
            tokens = list(tokens)
        if core.needs_repack():
            with table.lock:
                if core.needs_repack():
                    core.repack()
        try:
            accepted, hits, fallbacks = self._dense_run(core, sid, tokens)
        except TypeError:
            # A token whose fast-path kind guess is unhashable: recognition
            # is a pure function of the stream, so rerun it entirely on the
            # object layer (which classifies with the full token_kind
            # protocol and raises only genuine errors).
            return self.recognize_object(tokens), 0, 0
        table.note_dense_run(hits, fallbacks)
        return accepted, hits, fallbacks

    def _dense_run(
        self, core: Any, sid: int, tokens: Sequence[Any]
    ) -> "Tuple[bool, int, int]":
        """The dense hot loop; returns (accepted, hits, fallbacks).

        Walks the core's *linked* execution rows — one small-dict ``get``
        per token, chasing the successor's row dict directly, with no ids
        decoded on the hot path (see :class:`DenseCore` for why this beats
        indexing the int rows in CPython).  A miss re-enters the int/object
        world: the row's own id (under the reserved ``DENSE_SID`` key)
        addresses the canonical int row, which distinguishes a dead edge
        (dead edges are deliberately absent from the linked rows) from a
        genuinely unexplored one; only the latter pays ``step_slow``.  The
        loop body never counts — token totals are recovered from
        ``len(tokens)`` on completion and by draining the shared iterator
        on the (rare) early exits.
        """
        table = self.table
        links = core.links
        rows = core.rows
        states = core.states
        get_kid = core.kind_ids.get
        kind_of = token_kind
        step_slow = table.step_slow
        n = len(tokens)
        fallbacks = 0
        row = links[sid]
        stream = iter(tokens)
        for tok in stream:
            nxt = row.get(getattr(tok, "kind", tok))
            if nxt is not None:
                row = nxt
                continue
            # Miss: recover the int cursor and consult the canonical row.
            # Successor rows are re-read through ``core.links`` — a
            # concurrent repack may have retired the snapshot we entered
            # with, and states interned after the swap only exist in the
            # current list.
            sid = row[DENSE_SID]
            kid = get_kid(kind_of(tok))
            if kid is not None:
                target = rows[sid][kid]
                if target >= 0:
                    # Resolved edge the fast-path kind guess missed (e.g.
                    # tuple-shaped tokens) — still a dense hit.
                    row = core.links[target]
                    continue
                if target == DENSE_DEAD:
                    consumed = n - sum(1 for _ in stream)
                    return False, consumed - fallbacks, fallbacks
            # Cold edge or never-seen kind: resolve on the object layer
            # (step_slow promotes the edge into the dense core), then step
            # back onto the linked rows.
            fallbacks += 1
            successor = step_slow(states[sid], tok)
            if successor.dead:
                consumed = n - sum(1 for _ in stream)
                return False, consumed - fallbacks, fallbacks
            nsid = successor.dense_id
            if nsid is None:
                # Transient successor (past the table's state cap): the
                # rest of this stream cannot re-enter the dense core.
                accepted, tail = self._object_tail(successor, stream)
                consumed = n - sum(1 for _ in stream) - tail
                return accepted, consumed - fallbacks, fallbacks + tail
            row = core.links[nsid]
        return core.accepting[row[DENSE_SID]], n - fallbacks, fallbacks

    def _object_tail(
        self, state: AutomatonState, stream: Iterable[Any]
    ) -> "Tuple[bool, int]":
        """Finish a run on the object layer, consuming ``stream``."""
        step_slow = self.table.step_slow
        kind_of = token_kind
        count = 0
        for tok in stream:
            count += 1
            successor = state.by_kind.get(kind_of(tok))
            if successor is None:
                successor = step_slow(state, tok)
            if successor.dead:
                return False, count
            state = successor
        return state.accepting, count

    def recognize_object(self, tokens: Iterable[Any]) -> bool:
        """Recognition on the object layer only (the pre-dense warm path).

        One ``kind → successor`` dict probe per token with the
        class-signature (and ultimately derivation) path behind a single
        miss check.  This is the differential reference the dense core
        must agree with — the parity tests and the dense-core benchmark's
        object-path baseline both call it directly; ``recognize`` itself
        routes through the dense core whenever the table has one.
        """
        table = self.table
        state = table.start
        step_slow = table.step_slow
        kind_of = token_kind
        for tok in tokens:
            successor = state.by_kind.get(kind_of(tok))
            if successor is None:
                successor = step_slow(state, tok)
            if successor.dead:
                return False
            state = successor
        return state.accepting

    # ---------------------------------------------------------------- parsing
    def parse_forest(self, tokens: Sequence[Any]) -> ForestNode:
        """Parse and return the shared parse forest (fallback derivation).

        Forest extraction needs the *actual* token values, which compiled
        transitions do not preserve, so this delegates to the interpreted
        engine — including its exact-position failure diagnosis.
        """
        if not isinstance(tokens, (list, tuple)):
            tokens = list(tokens)
        with self.table.lock:
            return self.fallback().parse_forest(tokens)

    def parse(self, tokens: Sequence[Any]) -> Any:
        """Parse and return a single parse tree (fallback derivation)."""
        if not isinstance(tokens, (list, tuple)):
            tokens = list(tokens)
        with self.table.lock:
            return self.fallback().parse(tokens)

    def parse_trees(
        self,
        tokens: Sequence[Any],
        limit: Optional[int] = None,
        ranking: Optional[Any] = None,
    ) -> List[Any]:
        """Parse and return up to ``limit`` distinct trees (fallback derivation).

        ``ranking`` (a ``Ranking`` or registered name) switches to lazy
        best-first top-k extraction, same as the interpreted engine.
        """
        if not isinstance(tokens, (list, tuple)):
            tokens = list(tokens)
        with self.table.lock:
            return self.fallback().parse_trees(tokens, limit=limit, ranking=ranking)

    def sample_parses(self, tokens: Sequence[Any], rng: Any, n: int = 1) -> List[Any]:
        """Draw ``n`` uniform samples over the parse forest (fallback derivation)."""
        if not isinstance(tokens, (list, tuple)):
            tokens = list(tokens)
        with self.table.lock:
            return self.fallback().sample_parses(tokens, rng, n=n)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "CompiledParser({!r})".format(self.table)
