"""The lazy derivative automaton and its grammar-owned transition table.

A :class:`GrammarTable` compiles a grammar *incrementally*: its states are
derivative languages interned by node identity, and its transitions are
``state × token-class → state`` edges discovered the first time a parse
crosses them.  Three properties make this a compiler rather than a cache:

* **States are interned derivative closures.**  The table owns a
  *persistent* derive memo (:class:`repro.core.memo.PersistentDictMemo`), so
  deriving a given language node by a given token always returns the
  identical result node — node identity (the hash-consing key of
  :mod:`repro.core.languages`) is therefore a sound interning key for
  states, and re-walking previously seen input costs one dictionary lookup
  per token instead of one graph traversal.

* **Transitions are per token-class, not per token.**  Each state partitions
  the token alphabet by match signature (:class:`.classes.TokenClassifier`);
  one derivative covers every token in a class.  Kind-pure states
  additionally flatten ``kind → successor`` for the executor's hot loop.

* **The grammar owns the table.**  The default-configuration table is
  anchored on the grammar root's ``compiled_table`` field — the
  node-resident idiom of the derive memos — so every
  :class:`~repro.compile.CompiledParser` over the same root shares one
  table, across parses and across parser instances, for as long as the
  grammar lives; dropping the grammar frees the whole group as one cycle
  (see :func:`compile_grammar`).  This extends the epoch/ownership
  machinery of :mod:`repro.core.memo`: the table's entries live on the
  shared nodes under the table's own owner token and can never be read,
  evicted or cleared by other parsers sharing the graph.

The automaton is a *recognition* device — transitions reuse a class
representative's derivative, which is recognition-equivalent but carries the
representative's parse-tree payloads.  Forest extraction therefore always
falls back to on-the-fly derivation (see :class:`~repro.compile.CompiledParser`).

States materialized from a serialized table (:mod:`.serialize`) start with
no language attached; each carries a *witness* (parent state + representative
token) so the language can be rebuilt on demand by deriving along the
witness chain.

**Concurrency contract.**  A table is shared *read-mostly*: the executor's
hot loops probe ``by_kind``/``by_signature`` without synchronization, and
every mutation of shared *derivation* state — deriving a new transition,
interning a state, materializing a witness chain, pruning, and the metrics
counters those paths bump — happens under the table's
:attr:`GrammarTable.lock`.  The one unlocked write is the idempotent
``by_kind`` flattening on a warm signature hit in :meth:`GrammarTable.step_slow`:
it re-publishes an already-interned successor under a finer key, racing
writers store the identical value, and no derivation state is touched.
The lock-free reads (and that one write) are sound on CPython because
(a) dictionary get/set are individually atomic under the GIL and (b) a
successor state is fully initialized (``accepting``/``dead`` assigned,
transitions empty) *before* the assignment that publishes it into a
transition dict, so a racing reader sees either a miss or a complete
state, never a partial one.  The
grammar *graph* under the table is mutated by locked paths too (derive
memos, nullability caches, in-place pruning), so any other engine that
derives on the same graph — e.g. the tree-extraction fallback of
:class:`~repro.compile.CompiledParser` — must hold the same lock; plain
:class:`~repro.core.parse.DerivativeParser` instances remain
**thread-confined** together with their (private) graphs.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from ..core.compaction import CompactionConfig, Compactor, optimize_initial_grammar
from ..core.derivative import Deriver
from ..core.errors import GrammarError, ReproError
from ..core.languages import (
    EMPTY,
    Empty,
    Language,
    graph_size,
    structural_fingerprint,
    token_kind,
)
from ..core.memo import PersistentDictMemo
from ..core.metrics import Metrics
from ..core.nullability import NullabilityAnalyzer
from ..core.parse import validate_grammar
from ..core.productivity import ProductivityAnalyzer
from ..core.prune import AdaptivePruneSchedule, prune_empty
from .classes import TokenClassifier

__all__ = [
    "AutomatonState",
    "DenseCore",
    "DENSE_UNEXPLORED",
    "DENSE_DEAD",
    "DENSE_SID",
    "GrammarTable",
    "compile_grammar",
    "discard_table",
    "as_root",
]

#: Dense-row sentinel: this ``state × kind`` edge has never been resolved —
#: the executor must fall back to :meth:`GrammarTable.step_slow`.
DENSE_UNEXPLORED = -2
#: Dense-row sentinel: this edge provably leads to the ``∅`` sink.
DENSE_DEAD = -1

#: Reserved key in every linked row dict, mapping to the row's own dense
#: state id.  A fresh ``object()`` can never compare equal to a token kind,
#: so the reservation is invisible to ``row.get(kind)`` probes.
DENSE_SID = object()


class DenseCore:
    """The automaton flattened to contiguous integers for the warm hot loop.

    Token kinds and interned states are assigned dense ids in discovery
    order; transitions live in ``rows[state_id][kind_id]`` — plain Python
    lists of ints.  Entries are ints ``>= 0`` (the successor's dense id) or
    one of two sentinels: :data:`DENSE_DEAD` (the ``∅`` sink) and
    :data:`DENSE_UNEXPLORED` (never resolved — the executor falls back to
    the object layer's :meth:`GrammarTable.step_slow`, which promotes the
    freshly resolved edge into the row on its way out).  The int rows are
    the *canonical* dense layout: they are what serializes, what
    ``row_fill`` inspects, and what defines dense-id semantics.

    Execution, however, does not index the int rows.  CPython resolves a
    small-dict ``get`` faster than a pair of ``list`` subscripts plus the
    int decoding around them, so the core additionally maintains ``links``
    — one dict per state mapping token kind directly to the *successor's
    link dict*.  The warm hot loop is then a pointer chase::

        row = links[start_id]
        for tok in stream:
            row = row.get(tok.kind)      # next state's dict, or None

    with no ids decoded per token at all.  Each link dict carries its own
    state id under the reserved :data:`DENSE_SID` key so the executor can
    re-enter the int/object world on a miss (cold edge, unknown kind) and
    read off acceptance at end of input.  Dead edges are recorded only in
    the int rows — a dead probe misses ``links`` and the fallback decodes
    :data:`DENSE_DEAD` from the canonical row, keeping the per-token path
    to a single ``None`` test.

    The core is *built incrementally* alongside the object layer: every
    non-transient interned state gets a row at interning time, and every
    resolved ``kind → successor`` edge is mirrored into the row the moment
    the object layer flattens it (cold derivation and warm
    signature-hit promotion both land here).  The object layer remains the
    source of truth — trees, forests, failure diagnosis and witness
    materialization never read the dense core.

    A core only exists on kind-*pure* tables (every terminal matches by
    token kind alone); predicate terminals classify by value, which no
    kind-indexed row can express, so impure tables keep ``dense = None``
    and run the object path everywhere.

    **Concurrency.**  Structure mutations (new state rows, kind interning
    with its row extension) happen under the owning table's lock, with
    publication ordered so lock-free readers are always safe: a state's
    row is appended to ``rows`` before any transition entry can name its
    id, and every row is extended to cover a new kind before the kind is
    published in ``kind_ids``.  Transition-entry writes are idempotent
    single-slot int stores (racing writers store the identical value), so
    the warm promotion path may write them without the lock — the same
    argument that covers ``by_kind`` flattening.
    """

    __slots__ = (
        "kind_ids",
        "kinds",
        "rows",
        "links",
        "packed_states",
        "states",
        "accepting",
        "hits",
        "fallbacks",
    )

    def __init__(self) -> None:
        #: Canonical token kind → dense kind id.
        self.kind_ids: Dict[Any, int] = {}
        #: Dense kind id → canonical token kind (the serialized kind table).
        self.kinds: List[Any] = []
        #: Dense state id → transition row (one int per interned kind).
        self.rows: List[List[int]] = []
        #: Dense state id → linked execution row: token kind → successor's
        #: link dict (live edges only; :data:`DENSE_SID` maps to the row's
        #: own state id).  Derived from ``rows``, maintained in lock-step
        #: and periodically rebuilt compactly by :meth:`repack`.
        self.links: List[Dict[Any, Any]] = []
        #: How many link dicts the last :meth:`repack` laid out compactly
        #: (states interned since then live wherever the allocator put
        #: them, until the next repack).
        self.packed_states = 0
        #: Dense state id → the interned :class:`AutomatonState` behind it.
        self.states: List["AutomatonState"] = []
        #: Dense state id → nullability of the state's language.
        self.accepting: List[bool] = []
        #: Tokens resolved by a dense row since the table was built.
        self.hits = 0
        #: Tokens that fell back to the object layer (cold edge, unknown
        #: kind, or a transient cursor past the state cap).
        self.fallbacks = 0

    # ------------------------------------------------------------- structure
    def add_state(self, state: "AutomatonState") -> int:
        """Assign ``state`` a dense id and an unexplored row (table-locked)."""
        dense_id = len(self.rows)
        self.rows.append([DENSE_UNEXPLORED] * len(self.kinds))
        self.links.append({DENSE_SID: dense_id})
        self.states.append(state)
        self.accepting.append(state.accepting)
        state.dense_id = dense_id
        return dense_id

    def intern_kind(self, kind: Any) -> int:
        """Intern ``kind``, growing every row first (table-locked).

        Rows are extended *before* the kind is published in ``kind_ids``,
        so a lock-free reader that obtained the new kind id always finds
        every row long enough to index.
        """
        kid = self.kind_ids.get(kind)
        if kid is not None:
            return kid
        kid = len(self.kinds)
        for row in self.rows:
            row.append(DENSE_UNEXPLORED)
        self.kinds.append(kind)
        self.kind_ids[kind] = kid
        return kid

    # ------------------------------------------------------------ promotion
    def record_edge(
        self,
        lock: "threading.RLock",
        state: "AutomatonState",
        kind: Any,
        successor: "AutomatonState",
    ) -> None:
        """Mirror a resolved ``state × kind → successor`` edge into the rows.

        Safe to call with or without the table lock held: interning a
        never-seen kind takes ``lock`` (structure mutation); the row store
        itself is an idempotent int write.  Edges involving transient
        states (no dense id) are skipped — exactly the states the object
        layer also refuses to cache.
        """
        sid = state.dense_id
        if sid is None:
            return
        if successor.dead:
            target = DENSE_DEAD
        else:
            target = successor.dense_id
            if target is None:
                return
        kid = self.kind_ids.get(kind)
        if kid is None:
            with lock:
                kid = self.intern_kind(kind)
        self.rows[sid][kid] = target
        if target >= 0:
            # Mirror live edges into the linked execution rows.  Both ends
            # come from one snapshot of ``links`` so a concurrent repack
            # never splices an old dict into a new chain; if the snapshot
            # is the pre-repack list the edge lands in retired dicts and
            # the packed chain recovers it from the canonical row on the
            # fallback path.  The successor's link dict was created (under
            # the lock) when the state was interned, so the reference is
            # always resolvable; racing writers store the identical dict,
            # so this is the same idempotent unlocked write as the row
            # store above.  Dead edges stay out of ``links`` by design —
            # see the class docstring.
            links = self.links
            links[sid][kind] = links[target]

    # -------------------------------------------------------------- repacking
    def needs_repack(self) -> bool:
        """True when enough states were interned since the last repack.

        Safe to call lock-free (two monotone int reads; worst case a
        harmless extra or missed check).  The ``dirty * 8 >= packed``
        threshold keeps the O(states + edges) repack amortized against at
        least 12.5% automaton growth — and fires on the *first* warm run
        after any cold compilation (``packed_states == 0``), which is the
        case that matters most.
        """
        dirty = len(self.rows) - self.packed_states
        return dirty > 0 and dirty * 8 >= self.packed_states

    def repack(self) -> None:
        """Rebuild the linked execution rows compactly (table-locked).

        Link dicts created during cold compilation are interleaved with
        the derivation's memo churn and end up scattered across the heap;
        chasing them costs a cache/TLB miss per token, which erases the
        representation's advantage.  Rebuilding every dict in one tight
        allocation burst from the canonical int rows restores locality —
        on the PL/0 workload this is the difference between ~80ns and
        ~400ns per warm token.

        The swap publishes a fully-built list in one reference store:
        lock-free walkers holding the retired list keep walking internally
        consistent dicts (every retired dict still resolves through its
        own :data:`DENSE_SID`), and edges racing into retired dicts are
        never lost — the canonical rows are the source of truth and the
        executor's miss path re-reads them.
        """
        kinds = self.kinds
        fresh = [{DENSE_SID: sid} for sid in range(len(self.rows))]
        for sid, row in enumerate(self.rows):
            links = fresh[sid]
            for kid, target in enumerate(row):
                if target >= 0:
                    links[kinds[kid]] = fresh[target]
        self.links = fresh
        self.packed_states = len(fresh)

    # ------------------------------------------------------------ inspection
    def row_fill(self) -> float:
        """Fraction of row slots holding a resolved edge (0.0 when empty)."""
        total = len(self.rows) * len(self.kinds)
        if not total:
            return 0.0
        explored = sum(
            1 for row in self.rows for entry in row if entry != DENSE_UNEXPLORED
        )
        return explored / total

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "DenseCore(states={}, kinds={}, fill={:.2f})".format(
            len(self.rows), len(self.kinds), self.row_fill()
        )


def as_root(grammar: Any) -> Language:
    """Resolve ``grammar`` to a :class:`Language` root.

    :class:`~repro.cfg.grammar.Grammar` objects resolve through their cached
    :meth:`~repro.cfg.grammar.Grammar.language` conversion so that repeated
    compilations of one grammar object land on one shared graph — the
    precondition for sharing a transition table.
    """
    if isinstance(grammar, Language):
        return grammar
    language = getattr(grammar, "language", None)
    if callable(language):
        return language()
    to_language = getattr(grammar, "to_language", None)
    if callable(to_language):
        return to_language()
    raise GrammarError(
        "expected a Language node or an object with language()/to_language(); "
        "got {!r}".format(type(grammar))
    )


class AutomatonState:
    """One interned state of the lazy derivative automaton.

    ``language`` is the state's derivative closure (``None`` until
    materialized, for states loaded from a serialized table), ``accepting``
    its nullability, and ``dead`` marks the unique ``∅`` sink.  Transitions
    live in two tiers: ``by_signature`` is the authoritative token-class
    table, and ``by_kind`` is the flattened ``kind → successor`` fast path,
    populated only when the table's shared classifier is kind-pure (the
    classifier — and with it purity — is a property of the grammar's
    terminal alphabet, so it lives on the :class:`GrammarTable`, not here).

    ``parent``/``via`` record how the state was first reached — the witness
    used to re-derive the language after deserialization.  ``transient``
    states were built past the table's ``max_states`` cap and are never
    cached in any transition table.
    """

    __slots__ = (
        "index",
        "language",
        "accepting",
        "dead",
        "transient",
        "by_kind",
        "by_signature",
        "parent",
        "via",
        "dense_id",
    )

    def __init__(
        self,
        index: int,
        language: Optional[Language],
        accepting: bool,
        dead: bool = False,
        parent: Optional["AutomatonState"] = None,
        via: Any = None,
    ) -> None:
        self.index = index
        self.language = language
        self.accepting = accepting
        self.dead = dead
        self.transient = False
        self.by_kind: Dict[Any, "AutomatonState"] = {}
        self.by_signature: Dict[Any, "AutomatonState"] = {}
        self.parent = parent
        self.via = via
        #: This state's id in the table's :class:`DenseCore` (row index), or
        #: None when the state is transient, the ``∅`` sink, or the table is
        #: kind-impure (no dense core at all).
        self.dense_id: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        flags = []
        if self.dense_id is not None:
            flags.append("dense#{}".format(self.dense_id))
        if self.dead:
            flags.append("dead")
        if self.accepting:
            flags.append("accepting")
        if self.language is None:
            flags.append("unmaterialized")
        return "AutomatonState(#{}{})".format(
            self.index, " " + ",".join(flags) if flags else ""
        )


class GrammarTable:
    """The grammar-owned compiled automaton: interned states + transitions.

    Parameters
    ----------
    grammar:
        A :class:`Language` root or an object convertible via
        ``language()``/``to_language()``.
    optimize:
        Run the initial-grammar compaction of Section 4.3.1 before compiling
        (default True, matching :class:`~repro.core.parse.DerivativeParser`).
    max_states:
        Optional cap on interned states.  Derivation past the cap still
        works (and is still memoized by the persistent derive memo) but the
        resulting states are *transient*: they are not interned and no
        transition entry points at them, bounding the table's memory on
        adversarial inputs whose state space never recurs.
    prune:
        Adaptively prune provably-empty branches from freshly derived
        states before interning them (default True, mirroring
        :class:`~repro.core.parse.DerivativeParser`).  Without it, "zombie"
        cores accumulate in the derived graphs and cold compilation
        degrades to quadratic.  :func:`~repro.core.prune.prune_empty`
        rewrites child pointers in place and is semantics-preserving, so
        already-interned states sharing the pruned nodes stay valid.
    metrics:
        Optional shared :class:`~repro.core.metrics.Metrics`.
    """

    def __init__(
        self,
        grammar: Any,
        optimize: bool = True,
        max_states: Optional[int] = None,
        prune: bool = True,
        metrics: Optional[Metrics] = None,
    ) -> None:
        root = as_root(grammar)
        validate_grammar(root)
        #: Guards every mutation of the table and of the grammar graph under
        #: it (transition derivation, state interning, witness
        #: materialization, pruning, metrics).  Warm walks read the
        #: transition dicts without taking it; see the module docstring for
        #: why that is sound.  Reentrant so tree-extraction fallbacks that
        #: hold it can still step the automaton.
        self.lock = threading.RLock()
        self.metrics = metrics if metrics is not None else Metrics()
        self.compaction_config = CompactionConfig.full()
        self.compactor = Compactor(self.compaction_config, self.metrics)
        #: The transition cache's backbone: a grammar-lifetime derive memo.
        #: Its owner-keyed entries on the shared nodes are what make state
        #: interning by node identity sound (same node × same token → the
        #: identical result node, for the lifetime of this table).
        self.memo = PersistentDictMemo(self.metrics)
        self.nullability = NullabilityAnalyzer(self.metrics)
        #: The shared emptiness analysis (the productivity declaration on the
        #: unified fixed-point kernel).  Routing dead successors through it —
        #: rather than through a structural ∅ check — lets the automaton send
        #: semantically dead derivatives to the ∅ sink even when compaction
        #: has not structurally collapsed them yet.  Its persistent cache is
        #: sound for the table's lifetime: after construction a node's
        #: children change only via the semantics-preserving prune pass.
        self.productivity = ProductivityAnalyzer(self.nullability, self.metrics)
        self.deriver = Deriver(
            memo=self.memo,
            compactor=self.compactor,
            nullability=self.nullability,
            metrics=self.metrics,
        )
        if optimize:
            root = optimize_initial_grammar(root, self.compactor)
        self.optimized = optimize
        self.root = root
        # Snapshot the fingerprint *now*, before any derivation: adaptive
        # pruning rewrites child pointers of the shared graph in place, so a
        # fingerprint taken lazily at save time would never match the one a
        # fresh process computes over the un-pruned grammar at load time.
        self._fingerprint = structural_fingerprint(root)
        #: One classifier, computed from the grammar root, shared by every
        #: state.  Sound because derivation never creates new Token leaves —
        #: every terminal reachable from any derivative is one of the root's
        #: terminals, and tokens with equal signatures over a superset of a
        #: state's terminals take identical transitions.  The partition per
        #: state may be finer than strictly necessary (a class distinction a
        #: given state cannot observe), which costs a few extra interned
        #: edges but avoids an O(graph) terminal scan per new state.
        self.classifier = TokenClassifier(root)
        #: Kind-purity of the whole alphabet: when True, every state may
        #: flatten ``kind → successor``; when False, every token is
        #: classified by value (``by_kind`` stays empty everywhere).
        self.pure = self.classifier.pure
        self.max_states = max_states
        #: The dense int-indexed execution core (kind-pure grammars only).
        #: Built incrementally as states/edges are interned; the executor's
        #: hot loop runs entirely on it and falls back to :meth:`step_slow`
        #: on :data:`DENSE_UNEXPLORED` entries.  None when the alphabet has
        #: predicate terminals (value-dependent classification).
        self.dense: Optional[DenseCore] = DenseCore() if self.pure else None
        self._states: Dict[Language, AutomatonState] = {}
        self._by_index: List[AutomatonState] = []
        #: Number of transitions resolved by actually deriving (cache misses).
        self.transitions_derived = 0
        self.dead = AutomatonState(index=-1, language=EMPTY, accepting=False, dead=True)
        # Adaptive empty-branch pruning, on the exact schedule the
        # interpreted parser uses (shared implementation).
        self.prune_enabled = prune
        self.prune_passes = 0
        self._prune_schedule = AdaptivePruneSchedule(
            graph_size(root), self.metrics.derive_uncached
        )
        self.start = self._intern(root, parent=None, via=None)

    # ------------------------------------------------------------- interning
    def _intern(
        self,
        language: Language,
        parent: Optional[AutomatonState],
        via: Any,
    ) -> AutomatonState:
        state = self._states.get(language)
        if state is not None:
            return state
        state = AutomatonState(
            index=len(self._by_index),
            language=language,
            accepting=self.nullability.nullable(language),
            parent=parent,
            via=via,
        )
        if self.max_states is not None and len(self._by_index) >= self.max_states:
            state.transient = True
            return state
        self._states[language] = state
        self._by_index.append(state)
        if self.dense is not None:
            self.dense.add_state(state)
        return state

    # ------------------------------------------------------------- stepping
    def step_slow(self, state: AutomatonState, tok: Any) -> AutomatonState:
        """Advance one token past the flattened fast path.

        Callers (the executor's hot loops) probe ``state.by_kind`` first and
        come here on a miss: classify the token, consult the class table,
        derive only if the edge is genuinely new.  Impure states keep
        ``by_kind`` empty, so every token routes here and is classified by
        value — the invariant that makes the callers' bare kind probe sound.

        Thread-safe: the class-table probe is lock-free (classification
        reads a frozen terminal list), and a genuine miss re-checks the
        table after taking :attr:`lock`, so concurrent walkers racing on
        the same cold edge derive it once.
        """
        if state.dead:
            return state
        signature = self.classifier.signature(tok)
        if state.language is not None:
            successor = state.by_signature.get(signature)
            if successor is not None:
                if self.pure and not successor.transient and not state.transient:
                    kind = token_kind(tok)
                    state.by_kind[kind] = successor
                    if self.dense is not None:
                        self.dense.record_edge(self.lock, state, kind, successor)
                return successor
        with self.lock:
            if state.language is None:
                self.materialize(state)
            successor = state.by_signature.get(signature)
            if successor is None:
                self.transitions_derived += 1
                derived = self.deriver.derive(state.language, tok)
                if (
                    self.prune_enabled
                    and not isinstance(derived, Empty)
                    and self._prune_schedule.due(self.metrics.derive_uncached)
                ):
                    derived, live_size = prune_empty(derived, self.nullability, self.metrics)
                    self.prune_passes += 1
                    self._prune_schedule.ran(self.metrics.derive_uncached, live_size)
                if isinstance(derived, Empty) or self.productivity.is_empty(derived):
                    # Dead either structurally (the ∅ node) or semantically
                    # (the emptiness analysis proves no completion exists):
                    # route to the sink instead of interning a zombie state.
                    successor = self.dead
                else:
                    successor = self._intern(derived, parent=state, via=tok)
                if not successor.transient and not state.transient:
                    state.by_signature[signature] = successor
            if self.pure and not successor.transient and not state.transient:
                kind = token_kind(tok)
                state.by_kind[kind] = successor
                if self.dense is not None:
                    self.dense.record_edge(self.lock, state, kind, successor)
        return successor

    # -------------------------------------------------------- materialization
    def materialize(self, state: AutomatonState) -> Language:
        """Attach a live language to a deserialized state via its witness chain.

        Walks ``parent`` links up to the nearest state that has a language
        (ultimately the start state, whose language is the grammar root),
        then re-derives downward through the recorded representative tokens.
        The re-derivation populates the persistent memo, so each witness
        edge is paid for at most once per table lifetime.  Takes
        :attr:`lock` (reentrant — :meth:`step_slow` already holds it).
        """
        with self.lock:
            return self._materialize_locked(state)

    def _materialize_locked(self, state: AutomatonState) -> Language:
        chain: List[AutomatonState] = []
        cursor = state
        while cursor.language is None:
            if cursor.parent is None:
                raise ReproError(
                    "cannot materialize automaton state #{}: no witness chain "
                    "links it to the grammar root".format(cursor.index)
                )
            chain.append(cursor)
            cursor = cursor.parent
        language = cursor.language
        for entry in reversed(chain):
            language = self.deriver.derive(language, entry.via)
            if language is EMPTY or isinstance(language, Empty):
                raise ReproError(
                    "corrupt compiled table: the witness chain for state #{} "
                    "derives to the empty language".format(entry.index)
                )
            entry.language = language
            entry.accepting = self.nullability.nullable(language)
            if self.dense is not None and entry.dense_id is not None:
                self.dense.accepting[entry.dense_id] = entry.accepting
            # Reconnect the node-identity interning map; if another state
            # already claims this node the first claimant keeps it (both
            # remain correct — the persistent memo gives them identical
            # successor nodes).
            self._states.setdefault(language, entry)
        return state.language

    # --------------------------------------------------------- dense metering
    def note_dense_run(self, hits: int, fallbacks: int) -> None:
        """Fold one recognition run's dense-hit/fallback counts into the table.

        The executor counts locally during the run (zero per-token metering
        cost) and reports once at the end; the fold takes :attr:`lock`, per
        the shared-:class:`~repro.core.metrics.Metrics` contract.
        """
        if not hits and not fallbacks:
            return
        with self.lock:
            if self.dense is not None:
                self.dense.hits += hits
                self.dense.fallbacks += fallbacks
            self.metrics.dense_hits += hits
            self.metrics.dense_fallbacks += fallbacks

    # ------------------------------------------------------------ inspection
    @property
    def fingerprint(self) -> str:
        """Structural fingerprint of the (optimized, pre-parse) grammar root."""
        return self._fingerprint

    def state_count(self) -> int:
        """Number of interned (non-transient) automaton states."""
        return len(self._by_index)

    def transition_count(self) -> int:
        """Number of resolved outgoing edges across all states.

        Live states count their ``state × token-class`` edges; states
        deserialized from a saved table carry only flattened kind edges
        until a cache miss re-classifies them, so those are counted
        instead (a kind edge may be finer than a class edge, but zero
        would misreport a warm loaded table as empty).
        """
        total = 0
        for state in self._by_index:
            total += len(state.by_signature) if state.by_signature else len(state.by_kind)
        return total

    def states(self) -> List[AutomatonState]:
        """The interned states in creation order (index order)."""
        return list(self._by_index)

    def stats(self) -> Dict[str, Any]:
        """A summary dictionary for benchmarks, serve logs and debugging.

        The ``dense_*`` keys report promotion progress of the int-indexed
        core: how many kinds/states have dense ids, what fraction of the
        row slots hold a resolved edge, and how many tokens the executor
        resolved densely vs. fell back on (all zero on kind-impure tables,
        which have no core).
        """
        flattened = sum(len(state.by_kind) for state in self._by_index)
        dense = self.dense
        return {
            "states": self.state_count(),
            "class_transitions": self.transition_count(),
            "kind_transitions": flattened,
            "transitions_derived": self.transitions_derived,
            "memo_entries": self.memo.entry_count(),
            "pure": self.pure,
            "dense_states": len(dense.rows) if dense is not None else 0,
            "dense_kinds": len(dense.kinds) if dense is not None else 0,
            "dense_row_fill": dense.row_fill() if dense is not None else 0.0,
            "dense_hits": dense.hits if dense is not None else 0,
            "dense_fallbacks": dense.fallbacks if dense is not None else 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        dense = self.dense
        dense_part = (
            ", dense={}x{} fill={:.2f}".format(
                len(dense.rows), len(dense.kinds), dense.row_fill()
            )
            if dense is not None
            else ""
        )
        return "GrammarTable(states={}, transitions={}{})".format(
            self.state_count(), self.transition_count(), dense_part
        )


def compile_grammar(
    grammar: Any,
    optimize: bool = True,
    max_states: Optional[int] = None,
) -> GrammarTable:
    """Return the shared :class:`GrammarTable` for ``grammar``, compiling once.

    The default-configuration table is **anchored on the grammar root**
    (its ``compiled_table`` field, the node-resident idiom of the derive
    memos): the grammar owns its table, every caller that resolves to the
    same graph — repeated :class:`~repro.compile.CompiledParser`
    constructions, the :meth:`~repro.core.parse.DerivativeParser.compile`
    fast path, the ``engine="compiled"`` wrappers, a
    :class:`~repro.cfg.grammar.Grammar` compiled twice — shares the one
    warm transition cache for as long as the grammar lives, and dropping
    the grammar frees grammar, table, memo and cached derivatives as one
    garbage-collected cycle (the anchored table's memo is
    :meth:`~repro.core.memo.PersistentDictMemo.bind_to_graph`-bound, so no
    global finalizer registry pins the cycle).

    Non-default ``optimize``/``max_states`` callers always get a
    **private**, unanchored table built to spec: the shared default cache
    is never reconfigured or hijacked by whoever compiles first, and the
    private table lives only as long as its holders.

    The shared table is deliberately uncapped: states and persistent memo
    entries accumulate per *distinct* input walked, for as long as the
    grammar lives.  Long-running services parsing unbounded varied input
    against a process-lifetime grammar should either bound memory with a
    private capped table (``max_states=...``) or periodically call
    :func:`discard_table` to let the accumulated cache be collected and
    start fresh.
    """
    root = as_root(grammar)
    if not (optimize is True and max_states is None):
        return GrammarTable(root, optimize=optimize, max_states=max_states)
    table = root.compiled_table
    if table is not None:
        return table
    table = GrammarTable(root)
    # The root will hold the table strongly; drop the memo's death-sweep
    # finalizer so the grammar↔table cycle stays collectable (the sweep is
    # pointless here anyway — the entries die with the graph).
    table.memo.bind_to_graph()
    root.compiled_table = table
    if table.root is not root:
        # Initial-grammar optimization may rebuild the root; anchor on the
        # optimized node too so DerivativeParser.compile() (which sees the
        # optimized root) lands on the same table.
        table.root.compiled_table = table
    return table


def discard_table(grammar: Any) -> bool:
    """Un-anchor the grammar's shared table so it can be collected.

    The memory-control valve for long-lived grammars: once the last parser
    holding the old table lets go, the table, its persistent memo and every
    interned derivative state are freed, and the next
    :func:`compile_grammar` starts a fresh cold table.  Parsers still
    holding the old table keep working on it, unaffected.  Returns True
    when an anchored table was discarded.
    """
    root = as_root(grammar)
    table = root.compiled_table
    if table is None:
        return False
    root.compiled_table = None
    if table.root is not root:
        table.root.compiled_table = None
    return True
