"""repro — a reproduction of *On the Complexity and Performance of Parsing with
Derivatives* (Adams, Hollenbeck & Might, PLDI 2016).

The package provides:

* :mod:`repro.core` — the improved parsing-with-derivatives parser (the
  paper's contribution): cubic worst case, accelerated nullability fixed
  points, inline compaction and single-entry memoization.
* :mod:`repro.baseline` — the original 2011 algorithm, for comparison.
* :mod:`repro.cfg` — a context-free-grammar substrate (productions, analyses,
  BNF front end, conversion to parsing expressions).
* :mod:`repro.earley` and :mod:`repro.glr` — the Earley and GLR baseline
  parsers used by the paper's evaluation.
* :mod:`repro.incremental` — edit-aware incremental reparsing on checkpoint
  trails over either engine (:class:`IncrementalDocument`).
* :mod:`repro.serve` — the concurrent batched parsing service (cached
  compiled tables, worker pools, async coalescing, editable sessions).
* :mod:`repro.regex` and :mod:`repro.lexer` — Brzozowski regular-expression
  derivatives and a derivative-based lexer.
* :mod:`repro.grammars`, :mod:`repro.workloads`, :mod:`repro.bench`,
  :mod:`repro.analysis` — evaluation grammars, workload generators, the
  benchmark harness and complexity-analysis tools.

Quickstart::

    from repro import DerivativeParser, Ref, token, epsilon

    expr = Ref("expr")
    expr.set((expr + token("+") + expr) | token("x"))
    parser = DerivativeParser(expr)
    assert parser.recognize(list("x+x+x"))
"""

from .compile import CompiledParser, GrammarTable, compile_grammar, load_table, save_table
from .core import (
    EMPTY,
    Alt,
    Cat,
    CompactionConfig,
    DerivativeParser,
    Empty,
    Epsilon,
    GrammarError,
    Language,
    Metrics,
    ParseError,
    ParserState,
    Reduce,
    Ref,
    ReproError,
    Token,
    any_token,
    count_trees,
    epsilon,
    first_tree,
    iter_trees,
    parse,
    recognize,
    token,
)
from .incremental import EditResult, IncrementalDocument

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DerivativeParser",
    "ParserState",
    "IncrementalDocument",
    "EditResult",
    "CompiledParser",
    "GrammarTable",
    "compile_grammar",
    "save_table",
    "load_table",
    "parse",
    "recognize",
    "CompactionConfig",
    "Metrics",
    "Language",
    "Empty",
    "Epsilon",
    "Token",
    "Alt",
    "Cat",
    "Reduce",
    "Ref",
    "EMPTY",
    "epsilon",
    "token",
    "any_token",
    "iter_trees",
    "count_trees",
    "first_tree",
    "ReproError",
    "GrammarError",
    "ParseError",
]
