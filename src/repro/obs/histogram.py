"""Fixed-log-bucket latency histograms with mergeable shards.

The engine's :class:`~repro.core.metrics.Metrics` counts *events*; this
module counts *magnitudes* — request latencies in nanoseconds, ns/token of
a warm walk, batch sizes, re-fed token counts — cheaply enough to stay on
all the time.  :class:`Histogram` is an HdrHistogram-style structure:
values are bucketed by their binary magnitude with ``2**_SUBBITS`` linear
sub-buckets per power of two, so

* ``record`` is a ``bit_length`` plus two shifts plus one dict bump — no
  floats, no ``log`` calls, no allocation on the warm path,
* storage is a sparse ``{bucket_index: count}`` dict whose size is bounded
  by the number of *distinct magnitudes* seen (~4 per power of two), never
  by the number of observations,
* any quantile is recoverable to within one bucket's relative error
  (≤ ``2**-_SUBBITS`` = 25% of the value, values below ``2**_SUBBITS``
  exactly), which is all a p99 needs.

**Concurrency contract** — the same sharded-then-merged pattern as
:meth:`repro.core.metrics.Metrics.merge`: a :class:`Histogram` instance is
unsynchronized, so either confine it to one thread (a per-worker shard)
and fold the shards with :meth:`Histogram.merge` under the aggregator's
lock, or take a small lock around every ``record`` (what
:class:`repro.obs.observer.Observer` does for request-level events, which
are rare next to the parses being timed).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

__all__ = ["Histogram"]

#: Linear sub-buckets per power of two: 4 sub-buckets, so a bucket's width
#: is at most 25% of its lower bound (the advertised relative error).
_SUBBITS = 2
_SUBMASK = (1 << _SUBBITS) - 1


def _bucket_index(value: int) -> int:
    """The bucket index of a non-negative int (monotone in ``value``)."""
    if value < (1 << _SUBBITS):
        return value
    length = value.bit_length()
    return ((length - _SUBBITS) << _SUBBITS) | (
        (value >> (length - 1 - _SUBBITS)) & _SUBMASK
    )


def _bucket_bounds(index: int) -> Tuple[int, int]:
    """The half-open value range ``[lower, upper)`` of bucket ``index``."""
    if index < (1 << _SUBBITS):
        return index, index + 1
    length = (index >> _SUBBITS) + _SUBBITS
    step = 1 << (length - 1 - _SUBBITS)
    lower = (1 << (length - 1)) | ((index & _SUBMASK) * step)
    return lower, lower + step


class Histogram:
    """A mergeable log-bucketed histogram of non-negative integer values.

    Quantiles are estimated as the midpoint of the bucket holding the
    nearest-rank observation, so the estimate is off by at most one
    bucket's width — a relative error of at most 25% (exact below 4).
    ``count``/``total``/``low``/``high`` are tracked exactly.
    """

    __slots__ = ("_counts", "count", "total", "low", "high")

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        #: Number of recorded values.
        self.count = 0
        #: Exact sum of recorded values.
        self.total = 0
        #: Exact smallest / largest recorded value (None while empty).
        self.low: "int | None" = None
        self.high: "int | None" = None

    # ---------------------------------------------------------------- record
    def record(self, value: "int | float") -> None:
        """Record one observation (floats are truncated, negatives clamp to 0)."""
        value = int(value)
        if value < 0:
            value = 0
        index = _bucket_index(value)
        counts = self._counts
        counts[index] = counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        if self.low is None or value < self.low:
            self.low = value
        if self.high is None or value > self.high:
            self.high = value

    def record_many(self, values: Iterable["int | float"]) -> None:
        """Record every observation from an iterable."""
        for value in values:
            self.record(value)

    # ----------------------------------------------------------------- merge
    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram.

        The aggregation primitive for per-worker shards, mirroring
        :meth:`repro.core.metrics.Metrics.merge`: ``merge`` itself does not
        synchronize — the caller's lock (and the shard's thread
        confinement) is the contract.
        """
        counts = self._counts
        for index, bump in other._counts.items():
            counts[index] = counts.get(index, 0) + bump
        self.count += other.count
        self.total += other.total
        if other.low is not None and (self.low is None or other.low < self.low):
            self.low = other.low
        if other.high is not None and (self.high is None or other.high > self.high):
            self.high = other.high

    def copy(self) -> "Histogram":
        """An independent snapshot of this histogram's current contents."""
        clone = Histogram()
        clone._counts = dict(self._counts)
        clone.count = self.count
        clone.total = self.total
        clone.low = self.low
        clone.high = self.high
        return clone

    # ------------------------------------------------------------- quantiles
    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (``0 < q <= 1``); ``nan`` while empty.

        Nearest-rank over the bucket counts: the estimate is the midpoint
        of the bucket containing the rank-``ceil(q * count)`` observation,
        clamped into the exactly-tracked ``[low, high]`` envelope.
        """
        if self.count == 0:
            return float("nan")
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile q must be in (0, 1], got {}".format(q))
        # Nearest rank, with a tiny slack so q * count landing exactly on an
        # integer (up to float noise) selects that rank, not the next one.
        target = max(1, math.ceil(q * self.count - 1e-9))
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= target:
                lower, upper = _bucket_bounds(index)
                estimate = (lower + upper) / 2.0
                return min(max(estimate, self.low), self.high)
        return float(self.high)  # pragma: no cover - cumulative covers count

    def summary(self) -> Dict[str, float]:
        """The digest ``stats()`` exposes: count/sum/min/max/mean/p50/p95/p99."""
        if self.count == 0:
            return {"count": 0, "sum": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.low,
            "max": self.high,
            "mean": self.total / self.count,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # ------------------------------------------------------------ exposition
    def cumulative_buckets(self) -> List[Tuple[int, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ascending (Prometheus shape).

        Upper bounds are the occupied buckets' exclusive upper edges; the
        implicit ``+Inf`` bucket is ``count`` and is left to the renderer.
        """
        out: List[Tuple[int, int]] = []
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            out.append((_bucket_bounds(index)[1], cumulative))
        return out

    @staticmethod
    def bucket_bounds(value: int) -> Tuple[int, int]:
        """The bucket range a value falls in (the advertised error envelope)."""
        return _bucket_bounds(_bucket_index(int(value)))

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        if self.count == 0:
            return "Histogram(empty)"
        return "Histogram(count={}, p50={:.0f}, p99={:.0f}, max={})".format(
            self.count, self.quantile(0.5), self.quantile(0.99), self.high
        )
