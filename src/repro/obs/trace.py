"""Contextvar-based request tracing with sampled, bounded retention.

A **trace** covers one request (a batch call, one async parse, one session
edit) and collects **stage spans** — named wall-clock intervals measured
with :func:`time.perf_counter_ns` — as the request flows through the
stack: ``fingerprint → table → recognize/tree → session_edit`` on the
serve path, ``rewind → replay → splice`` on the incremental path.  The
layers below the service never hold a tracer reference; they call the
module-level :func:`stage`, which reads the active trace out of a
:class:`contextvars.ContextVar` and returns a shared no-op when none is
active.  That keeps the instrumentation cost of the disabled state to one
contextvar read *per call* (never per token — the dense hot loop of
:meth:`repro.compile.executor.CompiledParser.recognize_with_stats` checks
once per run, which ``benchmarks/bench_obs_overhead.py`` gates at ≤ 5%).

:class:`Tracer` owns the policy: off by default, deterministic 1-in-N
sampling when on, a bounded ring buffer of recent traces (old traces fall
off; memory never grows with traffic), and a slow-request log line —
through the structured logger — for any sampled trace above a threshold.

Spans crossing threads: a worker pool runs request stages on threads the
request's contextvar never propagated to, so pool-dispatching callers wrap
the worker body in :func:`activated` to re-enter the trace (appends to a
trace's span list are atomic under the GIL; concurrent stages from a
fanned-out batch simply all land in the trace).
"""

from __future__ import annotations

import threading
from collections import deque
from contextvars import ContextVar
from time import perf_counter_ns
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["Span", "Trace", "Tracer", "current_trace", "stage", "activated"]

#: The trace active in this thread/task, or None (the overwhelmingly
#: common disabled case — one ``.get()`` is the entire off-path cost).
_ACTIVE: "ContextVar[Optional[Trace]]" = ContextVar("repro_obs_trace", default=None)


def current_trace() -> "Optional[Trace]":
    """The trace active in the current context, or None."""
    return _ACTIVE.get()


class _Noop:
    """A shared, allocation-free stand-in for every disabled context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NOOP = _Noop()


def stage(name: str) -> Any:
    """A span context manager on the active trace — or a shared no-op.

    The one instrumentation hook the engine layers use: cost when no trace
    is active is a contextvar read and a shared-object return.
    """
    trace = _ACTIVE.get()
    if trace is None:
        return _NOOP
    return Span(trace, name)


def activated(trace: "Optional[Trace]") -> Any:
    """Re-enter ``trace`` in this thread (no-op context manager when None).

    Worker-pool bodies run on threads that never inherited the request's
    context; the dispatching caller passes the trace explicitly and wraps
    the body in ``with activated(trace):`` so :func:`stage` works there.
    """
    if trace is None:
        return _NOOP
    return _Activation(trace)


class _Activation:
    """Context manager binding a trace into the current context."""

    __slots__ = ("trace", "_token")

    def __init__(self, trace: "Trace") -> None:
        self.trace = trace
        self._token: Any = None

    def __enter__(self) -> "Trace":
        self._token = _ACTIVE.set(self.trace)
        return self.trace

    def __exit__(self, *exc_info: Any) -> bool:
        _ACTIVE.reset(self._token)
        return False


class Span:
    """One named wall-clock interval, recorded into its trace on exit."""

    __slots__ = ("trace", "name", "_start")

    def __init__(self, trace: "Trace", name: str) -> None:
        self.trace = trace
        self.name = name
        self._start = 0

    def __enter__(self) -> "Span":
        self._start = perf_counter_ns()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        end = perf_counter_ns()
        # One atomic append; concurrent spans from fanned-out workers are fine.
        self.trace.spans.append((self.name, self._start, end - self._start))
        return False


class Trace:
    """One request's spans: a name, labels, and ``(stage, start, ns)`` triples."""

    __slots__ = ("name", "labels", "start_ns", "duration_ns", "spans")

    def __init__(self, name: str, labels: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.labels = labels or {}
        self.start_ns = 0
        #: Filled in by the tracer when the request context exits.
        self.duration_ns = 0
        self.spans: List[Tuple[str, int, int]] = []

    def span(self, name: str) -> Span:
        """A context manager timing one stage of this trace."""
        return Span(self, name)

    def add_span(self, name: str, start_ns: int, duration_ns: int) -> None:
        """File an externally measured interval as a span of this trace.

        The hook for stages whose clock ran somewhere :class:`Span` cannot —
        a pooled worker *process* reports how long it held a request, and
        the dispatcher files that measurement into the request's trace as a
        ``worker`` span.  One atomic append, same as a ``Span`` exit.
        """
        self.spans.append((name, start_ns, duration_ns))

    def stage_totals(self) -> Dict[str, int]:
        """Total nanoseconds per stage name (a span's repeats accumulate)."""
        totals: Dict[str, int] = {}
        for name, _start, duration in self.spans:
            totals[name] = totals.get(name, 0) + duration
        return totals

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-friendly rendering (what the recent-trace digest exposes)."""
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "duration_ns": self.duration_ns,
            "spans": [
                {"stage": name, "offset_ns": start - self.start_ns, "ns": duration}
                for name, start, duration in self.spans
            ],
        }

    def __repr__(self) -> str:
        return "Trace({}, {} spans, {:.3f} ms)".format(
            self.name, len(self.spans), self.duration_ns / 1e6
        )


class _RequestContext:
    """Context manager for one sampled request: binds, times, retires."""

    __slots__ = ("tracer", "trace", "_token")

    def __init__(self, tracer: "Tracer", trace: Trace) -> None:
        self.tracer = tracer
        self.trace = trace
        self._token: Any = None

    def __enter__(self) -> Trace:
        self._token = _ACTIVE.set(self.trace)
        self.trace.start_ns = perf_counter_ns()
        return self.trace

    def __exit__(self, *exc_info: Any) -> bool:
        trace = self.trace
        trace.duration_ns = perf_counter_ns() - trace.start_ns
        _ACTIVE.reset(self._token)
        self.tracer._retire(trace)
        return False


class Tracer:
    """Sampling policy plus a bounded ring of recent traces.

    Parameters
    ----------
    enabled:
        Off by default; a disabled tracer's :meth:`request` returns the
        shared no-op without taking any lock.
    sample_every:
        Deterministic 1-in-N sampling of requests while enabled (1 traces
        everything).  Deterministic — a counter, not a coin flip — so
        tests and benchmarks can assert exact trace counts.
    ring_size:
        How many finished traces are retained (older ones fall off).
    slow_threshold_ns:
        Sampled traces at least this long are counted and logged through
        ``logger`` as ``slow_request`` events; None disables the log.
    logger:
        A :class:`repro.obs.logging.StructuredLogger` (or anything with
        its ``log(event, **fields)`` shape) for slow-request lines.
    """

    def __init__(
        self,
        enabled: bool = False,
        sample_every: int = 1,
        ring_size: int = 128,
        slow_threshold_ns: Optional[int] = None,
        logger: Any = None,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1, got {}".format(sample_every))
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1, got {}".format(ring_size))
        self.enabled = enabled
        self.sample_every = sample_every
        self.slow_threshold_ns = slow_threshold_ns
        self.logger = logger
        self._lock = threading.Lock()
        self._ring: "Deque[Trace]" = deque(maxlen=ring_size)
        #: Requests seen / sampled / retired-as-slow while enabled.
        self.seen = 0
        self.sampled = 0
        self.slow = 0

    # ------------------------------------------------------------- requests
    def request(self, name: str, **labels: Any) -> Any:
        """Open a request trace (or the shared no-op when off / not sampled).

        Use as ``with tracer.request("recognize") as trace:`` — ``trace``
        is None when the request is not being traced, and stages inside
        the block (this thread) need no reference: :func:`stage` finds the
        trace through the contextvar.
        """
        if not self.enabled:
            return _NOOP
        with self._lock:
            self.seen += 1
            take = self.seen % self.sample_every == 0
            if take:
                self.sampled += 1
        if not take:
            return _NOOP
        return _RequestContext(self, Trace(name, labels))

    def _retire(self, trace: Trace) -> None:
        """File a finished trace into the ring (and the slow log)."""
        self._ring.append(trace)
        threshold = self.slow_threshold_ns
        if threshold is not None and trace.duration_ns >= threshold:
            with self._lock:
                self.slow += 1
            if self.logger is not None:
                self.logger.log(
                    "slow_request",
                    request=trace.name,
                    duration_ms=round(trace.duration_ns / 1e6, 3),
                    stages={
                        name: round(ns / 1e6, 3)
                        for name, ns in trace.stage_totals().items()
                    },
                    **trace.labels,
                )

    # ------------------------------------------------------------ inspection
    def traces(self) -> List[Trace]:
        """The retained recent traces, oldest first."""
        return list(self._ring)

    def digest(self) -> Dict[str, Any]:
        """A JSON-friendly summary of tracer state and the recent ring.

        ``stages`` aggregates span time per stage name across the ring —
        the per-stage breakdown :meth:`repro.serve.ParseService.stats`
        exposes without shipping whole traces.
        """
        traces = self.traces()
        stages: Dict[str, Dict[str, int]] = {}
        for trace in traces:
            for name, total in trace.stage_totals().items():
                bucket = stages.setdefault(name, {"count": 0, "total_ns": 0})
                bucket["count"] += 1
                bucket["total_ns"] += total
        return {
            "enabled": self.enabled,
            "sample_every": self.sample_every,
            "seen": self.seen,
            "sampled": self.sampled,
            "slow": self.slow,
            "recent": len(traces),
            "recent_total_ns": sum(trace.duration_ns for trace in traces),
            "stages": stages,
        }

    def __repr__(self) -> str:
        return "Tracer(enabled={}, sampled={}/{}, ring={})".format(
            self.enabled, self.sampled, self.seen, len(self._ring)
        )
