"""Metrics exposition: Prometheus text format and JSON snapshots.

The service's :meth:`~repro.serve.ParseService.stats` dict is the one
source of truth; this module renders it for the two consumers a network
front door has: a scraper (Prometheus text format 0.0.4 — ``# TYPE``
comments, ``name{labels} value`` samples, histogram ``_bucket``/``_sum``/
``_count`` families) and a human/automation pipeline (the stats dict is
already JSON-shaped; :func:`json_snapshot` just makes the round-trip
explicit).  :func:`parse_prometheus` is the matching validator — the CI
smoke job and the exposition tests parse every emitted line back rather
than trusting the renderer.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Mapping, Optional

from .histogram import Histogram

__all__ = ["prometheus_exposition", "parse_prometheus", "json_snapshot"]

#: One Prometheus sample line: metric name, optional {labels}, numeric value.
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|Inf|NaN))$"
)


def _sane_name(name: str) -> str:
    """Coerce a counter name into the Prometheus metric-name alphabet."""
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def prometheus_exposition(
    stats: Mapping[str, Any],
    histograms: Optional[Mapping[str, Histogram]] = None,
    prefix: str = "repro",
) -> str:
    """Render a :meth:`ParseService.stats` dict as Prometheus text format.

    Service counters become ``<prefix>_<name>`` counters (the precomputed
    ``table_hit_rate`` a gauge), engine counters ``<prefix>_engine_<name>``
    counters, the cache/session occupancy numbers gauges, and each entry
    of ``histograms`` a native histogram family with cumulative
    ``_bucket{le=...}`` samples.  Every emitted line parses back through
    :func:`parse_prometheus`.
    """
    lines = []

    def emit(name: str, kind: str, value: Any, labels: str = "") -> None:
        name = _sane_name("{}_{}".format(prefix, name))
        if kind:
            lines.append("# TYPE {} {}".format(name, kind))
        lines.append("{}{} {}".format(name, labels, _render_value(value)))

    service = stats.get("service", {})
    for name in sorted(service):
        value = service[name]
        kind = "gauge" if name.endswith("_rate") else "counter"
        emit(name, kind, value)
    engine = stats.get("engine", {})
    for name in sorted(engine):
        emit("engine_{}".format(name), "counter", engine[name])
    for name in ("tables_cached", "table_capacity", "live_sessions", "workers"):
        if name in stats:
            emit(name, "gauge", stats[name])
    traces = stats.get("traces", {})
    for name in ("seen", "sampled", "slow"):
        if name in traces:
            emit("traces_{}".format(name), "counter", traces[name])

    for hist_name in sorted(histograms or {}):
        histogram = histograms[hist_name]
        family = _sane_name("{}_{}".format(prefix, hist_name))
        lines.append("# TYPE {} histogram".format(family))
        for upper, cumulative in histogram.cumulative_buckets():
            lines.append('{}_bucket{{le="{}"}} {}'.format(family, upper, cumulative))
        lines.append('{}_bucket{{le="+Inf"}} {}'.format(family, histogram.count))
        lines.append("{}_sum {}".format(family, histogram.total))
        lines.append("{}_count {}".format(family, histogram.count))

    return "\n".join(lines) + "\n"


def _render_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse Prometheus text format into ``{"name{labels}": value}``.

    Strict about the line grammar (the point: CI asserts the exposition
    *parses*, not merely prints): every non-comment, non-blank line must
    be a well-formed sample, duplicate sample keys are rejected, and
    ``_bucket`` cumulative counts must be non-decreasing within a family.
    Raises :class:`ValueError` on any violation.
    """
    samples: Dict[str, float] = {}
    last_bucket: Dict[str, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError("line {} is not a Prometheus sample: {!r}".format(lineno, raw))
        key = match.group("name") + (match.group("labels") or "")
        if key in samples:
            raise ValueError("line {} repeats sample {!r}".format(lineno, key))
        value = float(match.group("value").replace("Inf", "inf"))
        samples[key] = value
        name = match.group("name")
        if name.endswith("_bucket"):
            previous = last_bucket.get(name)
            if previous is not None and value < previous:
                raise ValueError(
                    "line {}: cumulative bucket {!r} decreased ({} < {})".format(
                        lineno, key, value, previous
                    )
                )
            last_bucket[name] = value
    return samples


def json_snapshot(stats: Mapping[str, Any]) -> str:
    """One JSON document of the stats dict (asserted round-trippable)."""
    text = json.dumps(stats, sort_keys=False, default=str)
    json.loads(text)  # the round-trip is the contract, so prove it here
    return text
