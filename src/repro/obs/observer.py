"""The :class:`Observer` bundle: one tracer + named histograms + one logger.

The serve layer needs three observability primitives with one lifetime
(the service's): a :class:`~repro.obs.trace.Tracer` for sampled request
traces, a registry of named :class:`~repro.obs.histogram.Histogram` series
(request latency, ns/token per warm path, batch sizes, re-fed token
counts), and a :class:`~repro.obs.logging.StructuredLogger` for lifecycle
events.  ``Observer`` owns all three so :class:`repro.serve.ParseService`
takes a single optional knob instead of four.

Histogram records take the observer's one small lock — sound from any
thread, and cheap because the serve layer records per *request/stream*,
never per token.  Code that does need per-token-rate recording shards its
own :class:`Histogram` per worker and folds it in with :meth:`fold`
(the :meth:`repro.core.metrics.Metrics.merge` pattern).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from .histogram import Histogram
from .logging import NULL_LOGGER, StructuredLogger
from .trace import Tracer

__all__ = ["Observer"]


class Observer:
    """Tracing, latency histograms and structured logging behind one handle.

    Parameters
    ----------
    tracing:
        Enable the span tracer (off by default; histograms and the logger
        are independent of this switch).
    sample_every:
        Trace every Nth request while tracing (deterministic).
    ring_size:
        Recent traces retained by the tracer.
    slow_threshold_ms:
        Sampled traces at least this long are logged as ``slow_request``
        events; None disables the slow log.
    logger:
        A :class:`StructuredLogger`; defaults to the shared no-op logger.
    """

    def __init__(
        self,
        tracing: bool = False,
        sample_every: int = 1,
        ring_size: int = 128,
        slow_threshold_ms: Optional[float] = None,
        logger: Optional[StructuredLogger] = None,
    ) -> None:
        self.logger = logger if logger is not None else NULL_LOGGER
        self.tracer = Tracer(
            enabled=tracing,
            sample_every=sample_every,
            ring_size=ring_size,
            slow_threshold_ns=(
                int(slow_threshold_ms * 1e6) if slow_threshold_ms is not None else None
            ),
            logger=self.logger,
        )
        self._lock = threading.Lock()
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------ histograms
    def record(self, name: str, value: "int | float") -> None:
        """Record one observation into the named histogram (created lazily)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.record(value)

    def fold(self, name: str, shard: Histogram) -> None:
        """Merge a per-worker histogram shard into the named series."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.merge(shard)

    def histogram_snapshots(self) -> Dict[str, Histogram]:
        """Independent copies of every named histogram (exposition input)."""
        with self._lock:
            return {name: hist.copy() for name, hist in self._histograms.items()}

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-histogram digests (count/sum/min/max/mean/p50/p95/p99)."""
        with self._lock:
            return {name: hist.summary() for name, hist in self._histograms.items()}

    def __repr__(self) -> str:
        with self._lock:
            names = sorted(self._histograms)
        return "Observer(tracing={}, histograms={})".format(self.tracer.enabled, names)
