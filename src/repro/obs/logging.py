"""Structured event logging: JSON lines for machines, ``key=value`` for TTYs.

Service lifecycle events — a table compiled or evicted, a session opened,
evicted or restored, a coalesced duplicate request, a slow traced request
— are emitted through one :class:`StructuredLogger` as one event per line.
On a TTY the line is human-shaped (``event key=value ...``); everywhere
else it is one JSON object, so a log shipper (or a test) can
``json.loads`` each line without guessing.  Every JSON line carries an
ISO-8601 UTC timestamp; the clock is injectable for deterministic tests.

The logger is deliberately tiny: a stream, a mode, a lock.  A ``None``
stream makes every ``log`` a no-op (:data:`NULL_LOGGER` is the shared
default the serve layer uses until a caller opts in), so components can
log unconditionally without checking for a configured sink.
"""

from __future__ import annotations

import json
import threading
import time
from datetime import datetime, timezone
from typing import Any, Callable, IO, Optional

__all__ = ["StructuredLogger", "NULL_LOGGER"]


def _utc_iso(epoch_seconds: float) -> str:
    """Render an epoch timestamp as ISO-8601 UTC with millisecond precision."""
    stamp = datetime.fromtimestamp(epoch_seconds, tz=timezone.utc)
    return stamp.isoformat(timespec="milliseconds").replace("+00:00", "Z")


class StructuredLogger:
    """One-event-per-line logger with JSON and human renderings.

    Parameters
    ----------
    stream:
        Where lines go; ``None`` turns every :meth:`log` into a no-op.
    human:
        ``True`` renders ``event key=value ...``; ``False`` renders one
        JSON object per line (with a ``ts`` timestamp field).  Use
        :meth:`for_stream` to pick by the stream's TTY-ness.
    clock:
        Epoch-seconds source for the JSON ``ts`` field (injectable so
        tests can pin timestamps).

    ``log`` is safe from any thread: the line is rendered outside the lock
    and written under it, so concurrent events never interleave mid-line.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        human: bool = False,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.stream = stream
        self.human = human
        self.clock = clock
        self._lock = threading.Lock()

    @classmethod
    def for_stream(cls, stream: Optional[IO[str]], clock: Callable[[], float] = time.time) -> "StructuredLogger":
        """A logger matching the stream: human on a TTY, JSON lines otherwise."""
        is_tty = False
        if stream is not None:
            isatty = getattr(stream, "isatty", None)
            try:
                is_tty = bool(isatty()) if callable(isatty) else False
            except (ValueError, OSError):  # closed/exotic streams: not a TTY
                is_tty = False
        return cls(stream=stream, human=is_tty, clock=clock)

    def log(self, event: str, **fields: Any) -> None:
        """Emit one event line (a no-op when the logger has no stream).

        ``fields`` must be JSON-renderable in JSON mode; in human mode
        nested values render compactly via ``json.dumps``.
        """
        stream = self.stream
        if stream is None:
            return
        if self.human:
            parts = [event]
            for key, value in fields.items():
                if isinstance(value, float):
                    rendered = "{:.6g}".format(value)
                elif isinstance(value, (dict, list, tuple)):
                    rendered = json.dumps(value, sort_keys=True, default=str)
                else:
                    rendered = str(value)
                parts.append("{}={}".format(key, rendered))
            line = " ".join(parts)
        else:
            payload = {"event": event, "ts": _utc_iso(self.clock())}
            payload.update(fields)
            line = json.dumps(payload, sort_keys=False, default=str)
        with self._lock:
            stream.write(line + "\n")

    def __repr__(self) -> str:
        mode = "human" if self.human else "json"
        sink = "null" if self.stream is None else "stream"
        return "StructuredLogger({}, {})".format(mode, sink)


#: The shared do-nothing logger (no stream): components log unconditionally
#: through this until a caller wires a real sink.
NULL_LOGGER = StructuredLogger(stream=None)
