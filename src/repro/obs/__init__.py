"""repro.obs — request tracing, latency histograms and metrics exposition.

The engine's :class:`~repro.core.metrics.Metrics` reproduces the paper's
evaluation by *counting* (nullable? calls, memo entries, dense hits); this
package adds the *time* domain a serving system needs, designed so the
hot loops PR 6 won stay hot:

* :mod:`~repro.obs.trace` — contextvar-scoped request traces with named
  stage spans (``perf_counter_ns``), off by default, deterministically
  sampled when on, retained in a bounded ring with a slow-request log.
  Cost when disabled: one contextvar read per *call*, never per token.
* :mod:`~repro.obs.histogram` — fixed-log-bucket :class:`Histogram`
  (HdrHistogram-style int bucketing, quantiles within one bucket's ≤ 25%
  relative error), sharded per worker and folded with
  :meth:`Histogram.merge` exactly like ``Metrics.merge``.
* :mod:`~repro.obs.logging` — one-event-per-line structured logging,
  JSON lines for machines and ``key=value`` for TTYs.
* :mod:`~repro.obs.exposition` — Prometheus text format and JSON
  snapshots of :meth:`repro.serve.ParseService.stats`, plus the strict
  parser the CI smoke job validates the exposition with.
* :mod:`~repro.obs.observer` — the :class:`Observer` bundle the serve
  layer takes as one knob.

Quickstart::

    from repro.obs import Observer, StructuredLogger
    from repro.serve import ParseService
    import sys

    observer = Observer(tracing=True, sample_every=8, slow_threshold_ms=50,
                        logger=StructuredLogger.for_stream(sys.stderr))
    service = ParseService(workers=4, observer=observer)
    # ... serve traffic ...
    service.stats()["latency"]["request_latency_ns"]["p99"]
    print(service.exposition())            # Prometheus text format

``benchmarks/bench_obs_overhead.py`` gates the overhead: disabled tracing
within 5% of the bare dense hot loop, fully traced within 15%.
"""

from .exposition import json_snapshot, parse_prometheus, prometheus_exposition
from .histogram import Histogram
from .logging import NULL_LOGGER, StructuredLogger
from .observer import Observer
from .trace import Span, Trace, Tracer, activated, current_trace, stage

__all__ = [
    "Observer",
    "Histogram",
    "Tracer",
    "Trace",
    "Span",
    "current_trace",
    "stage",
    "activated",
    "StructuredLogger",
    "NULL_LOGGER",
    "prometheus_exposition",
    "parse_prometheus",
    "json_snapshot",
]
