"""Token-stream generators for the non-Python evaluation grammars."""

from __future__ import annotations

import random
from typing import List

from ..lexer.tokens import Tok

__all__ = [
    "arithmetic_tokens",
    "json_tokens",
    "sexpr_tokens",
    "nested_parens_tokens",
    "ambiguous_sum_tokens",
    "chain_expression_tokens",
    "repeated_token_stream",
]


def arithmetic_tokens(length: int, seed: int = 0) -> List[Tok]:
    """A random well-formed arithmetic expression of roughly ``length`` tokens."""
    rng = random.Random(seed)
    out: List[Tok] = []
    depth = 0

    def operand() -> None:
        nonlocal depth
        if rng.random() < 0.2 and depth < 8:
            out.append(Tok("("))
            depth += 1
            operand()
            rest()
            out.append(Tok(")"))
            depth -= 1
        elif rng.random() < 0.5:
            out.append(Tok("NUMBER", str(rng.randrange(0, 1000))))
        else:
            out.append(Tok("NAME", rng.choice("abcxyz")))

    def rest() -> None:
        while rng.random() < 0.5:
            out.append(Tok(rng.choice("+-*/")))
            operand()

    operand()
    while len(out) < length:
        out.append(Tok(rng.choice("+-*/")))
        operand()
    return out


def json_tokens(length: int, seed: int = 0) -> List[Tok]:
    """A random well-formed JSON document of at least ``length`` tokens."""
    rng = random.Random(seed)
    out: List[Tok] = []

    def value(depth: int) -> None:
        roll = rng.random()
        if depth <= 0 or roll < 0.35:
            out.append(
                rng.choice(
                    [
                        Tok("NUMBER", str(rng.randrange(0, 100))),
                        Tok("STRING", '"s{}"'.format(rng.randrange(0, 50))),
                        Tok("true"),
                        Tok("false"),
                        Tok("null"),
                    ]
                )
            )
        elif roll < 0.7:
            out.append(Tok("{"))
            for position in range(rng.randrange(1, 4)):
                if position:
                    out.append(Tok(","))
                out.append(Tok("STRING", '"k{}"'.format(position)))
                out.append(Tok(":"))
                value(depth - 1)
            out.append(Tok("}"))
        else:
            out.append(Tok("["))
            for position in range(rng.randrange(1, 4)):
                if position:
                    out.append(Tok(","))
                value(depth - 1)
            out.append(Tok("]"))

    # Wrap everything in one array so concatenating more elements keeps the
    # document well formed while we grow to the requested size.
    out.append(Tok("["))
    value(4)
    while len(out) < length - 1:
        out.append(Tok(","))
        value(4)
    out.append(Tok("]"))
    return out


def sexpr_tokens(length: int, seed: int = 0) -> List[Tok]:
    """A random S-expression of at least ``length`` tokens."""
    rng = random.Random(seed)
    out: List[Tok] = []

    def expr(depth: int) -> None:
        if depth <= 0 or rng.random() < 0.4:
            out.append(Tok("ATOM", "a{}".format(rng.randrange(0, 50))))
            return
        out.append(Tok("("))
        for _ in range(rng.randrange(1, 4)):
            expr(depth - 1)
        out.append(Tok(")"))

    out.append(Tok("("))
    expr(5)
    while len(out) < length - 1:
        expr(5)
    out.append(Tok(")"))
    return out


def nested_parens_tokens(pairs: int) -> List[Tok]:
    """``( ( ... ) )`` — maximal nesting for the balanced-parentheses grammar."""
    return [Tok("(")] * pairs + [Tok(")")] * pairs


def ambiguous_sum_tokens(terms: int) -> List[Tok]:
    """``n + n + ... + n`` with ``terms`` operands (Catalan-many parses)."""
    out: List[Tok] = [Tok("n")]
    for _ in range(terms - 1):
        out.append(Tok("+"))
        out.append(Tok("n"))
    return out


def chain_expression_tokens(length: int, operator: str = "+") -> List[Tok]:
    """``x + x + ... + x`` — a flat operator chain of exactly ``length`` tokens.

    The canonical deep-recursion workload: on the classic expression grammar
    every extra operand deepens the derived grammar (and the resulting parse
    tree), so a 100 000-token chain defeats any engine that recurses over the
    grammar graph on the host stack.  ``length`` must be odd (operand,
    operator, operand, ...); it is rounded down to the nearest odd number.
    """
    if length < 1:
        return []
    if length % 2 == 0:
        length -= 1
    out: List[Tok] = [Tok("NAME", "x")]
    for _ in range(length // 2):
        out.append(Tok(operator))
        out.append(Tok("NAME", "x"))
    return out


def repeated_token_stream(kind: str, count: int, distinct: bool = False) -> List[Tok]:
    """``count`` copies of one token kind; ``distinct`` makes every value unique.

    Distinct values exercise the worst case of the single-entry memo (no reuse
    between positions); identical values exercise the best case.
    """
    if distinct:
        return [Tok(kind, "{}_{}".format(kind, position)) for position in range(count)]
    return [Tok(kind)] * count
