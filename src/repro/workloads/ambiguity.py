"""Depth-parameterized workloads for the closed-form ambiguity grammars.

The zoo's pathological grammars are only useful as *gates* because their
forest sizes have closed forms; this module provides both the token streams
and the reference counts, so differential suites can pin
``count_trees(parse_forest(...))`` against exact answers at any depth:

* :func:`catalan_tokens` / :func:`catalan_count` — ``a^n`` under
  :func:`repro.grammars.catalan_grammar` (``S → S S | a``) has exactly
  Catalan(n−1) parses: every binary bracketing of ``n`` leaves.
* :func:`dangling_else_tokens` / :func:`dangling_else_count` — the depth-``d``
  stream ``(if c then)^d s else s`` under
  :func:`repro.grammars.dangling_else_grammar` has exactly ``d`` parses: the
  single ``else`` may attach to any of the ``d`` enclosing ifs.

Both stream builders are pure functions of their depth argument — no RNG at
all — so identical cells across benchmark runs and test processes see
byte-identical inputs.
"""

from __future__ import annotations

from math import comb
from typing import List

from ..lexer.tokens import Tok

__all__ = [
    "ASTRONOMICAL_LEAVES",
    "ASTRONOMICAL_QUICK_LEAVES",
    "catalan_tokens",
    "catalan_count",
    "dangling_else_tokens",
    "dangling_else_count",
]


#: Leaf count of the *astronomical* catalan workload: ``a^41`` has
#: Catalan(40) = 2_622_127_042_276_492_108_820 parses — about 2.6 × 10²¹,
#: far beyond 2⁵³ (the last float-exact integer), so any float creeping
#: into the counting pass would corrupt the count.  The stream itself is
#: 41 tokens: parsing it is milliseconds, only *enumerating* it is
#: impossible — exactly the regime the forest-query layer is built for.
ASTRONOMICAL_LEAVES = 41

#: Quick-mode (CI) sibling: ``a^27`` has Catalan(26) ≈ 1.8 × 10¹³ parses —
#: still past 10¹² and past exact float addition, at a fraction of the
#: counting work.
ASTRONOMICAL_QUICK_LEAVES = 27


def catalan_tokens(leaves: int) -> List[Tok]:
    """The stream ``a^leaves`` — input to :func:`repro.grammars.catalan_grammar`."""
    if leaves < 1:
        raise ValueError("catalan workload needs at least one leaf")
    return [Tok("a") for _ in range(leaves)]


def catalan_count(leaves: int) -> int:
    """Catalan(leaves−1): the exact number of parses of ``a^leaves``.

    ``S → S S | a`` derives ``a^n`` once per binary bracketing of ``n``
    leaves, and those are counted by the (n−1)-th Catalan number
    ``C(2(n−1), n−1) / n``.
    """
    if leaves < 1:
        raise ValueError("catalan workload needs at least one leaf")
    n = leaves - 1
    return comb(2 * n, n) // (n + 1)


def dangling_else_tokens(depth: int) -> List[Tok]:
    """The stream ``(if c then)^depth s else s`` — linearly ambiguous input."""
    if depth < 1:
        raise ValueError("dangling-else workload needs at least one if")
    out: List[Tok] = []
    for _ in range(depth):
        out.extend([Tok("if"), Tok("c"), Tok("then")])
    out.extend([Tok("s"), Tok("else"), Tok("s")])
    return out


def dangling_else_count(depth: int) -> int:
    """Exactly ``depth`` parses: the lone ``else`` attaches to any of the ifs."""
    if depth < 1:
        raise ValueError("dangling-else workload needs at least one if")
    return depth
