"""Deterministic edit-script generators for incremental-reparsing workloads.

An *edit* is a triple ``(start, end, tokens)`` — replace the buffer slice
``[start:end)`` with ``tokens`` — matching
:meth:`repro.incremental.IncrementalDocument.apply_edit` exactly.  This
module generates the two shapes the benchmarks and differential suites
need:

* **value edits** (:func:`value_edit_at`, :func:`single_token_edits`) —
  replace one token with a fresh token of the *same kind* (a new NUMBER
  literal, a renamed IDENT), the "typing inside a literal" case every
  editor session is made of.  Value edits never change what a grammar
  accepts, and on the compiled engine they re-converge with the old parse
  immediately (transitions are token-class-interned).
* **random edit scripts** (:func:`random_edit_script`) — seeded sequences
  of arbitrary splices (insert/delete/replace spans, tokens drawn from
  the stream's own vocabulary), most of which *break* the parse; the
  differential suite replays them to assert that incremental results
  equal from-scratch results on valid and invalid buffers alike.

Everything is deterministic in its ``seed`` so benchmark runs and
regression failures are repeatable.  :func:`apply_edits` is the obvious
list-splicing reference implementation the property tests compare
against.
"""

from __future__ import annotations

import random
from typing import Any, List, NamedTuple, Optional, Sequence

from ..lexer.tokens import Tok

__all__ = [
    "Edit",
    "value_edit_at",
    "single_token_edits",
    "random_edit_script",
    "apply_edits",
]


class Edit(NamedTuple):
    """One splice: replace ``buffer[start:end)`` with ``tokens``."""

    start: int
    end: int
    tokens: List[Any]

    @property
    def size(self) -> int:
        """Edit magnitude: tokens removed plus tokens inserted."""
        return (self.end - self.start) + len(self.tokens)


def _fresh_value(token: Any, rng: random.Random) -> Any:
    """A same-kind token with a different value (NUMBER/IDENT aware)."""
    kind = getattr(token, "kind", None)
    if kind == "NUMBER":
        return Tok("NUMBER", str(rng.randrange(10_000, 99_999)))
    if kind in ("IDENT", "NAME"):
        return Tok(kind, "edited_{}".format(rng.randrange(1_000)))
    return token


def value_edit_at(
    tokens: Sequence[Any],
    position: int,
    seed: int = 0,
    kinds: Sequence[str] = ("NUMBER", "IDENT", "NAME"),
) -> Edit:
    """A single-token same-kind replacement at (or just after) ``position``.

    Scans forward (wrapping once) for the nearest token whose kind is in
    ``kinds`` and replaces it with a fresh same-kind value, which keeps
    any grammar's verdict unchanged.  Raises :class:`LookupError` when
    the stream has no such token.
    """
    rng = random.Random("{}:{}".format(seed, position))
    total = len(tokens)
    for offset in range(total):
        index = (position + offset) % total
        if getattr(tokens[index], "kind", None) in kinds:
            return Edit(index, index + 1, [_fresh_value(tokens[index], rng)])
    raise LookupError(
        "no token of kind {} to edit in a stream of {}".format(kinds, total)
    )


def single_token_edits(
    tokens: Sequence[Any],
    fractions: Sequence[float] = (0.1, 0.5, 0.9),
    seed: int = 0,
) -> List[Edit]:
    """One value edit per requested position fraction (early/mid/late)."""
    return [
        value_edit_at(tokens, int(fraction * len(tokens)), seed=seed)
        for fraction in fractions
    ]


def random_edit_script(
    tokens: Sequence[Any],
    count: int,
    seed: int = 0,
    max_span: int = 3,
    max_insert: int = 3,
    vocabulary: Optional[Sequence[Any]] = None,
) -> List[Edit]:
    """A seeded sequence of arbitrary splices, valid against the evolving buffer.

    Each edit's range is drawn against the buffer length *after* the
    previous edits (the script is meant to be applied in order);
    insertions draw tokens from ``vocabulary`` (default: the original
    stream itself, so the token alphabet stays the grammar's own).  The
    script exercises every shape — pure inserts, pure deletes, replaces,
    empty-buffer edits — and makes no validity promise: most random
    splices break the parse, which is exactly what the differential
    parity suite wants to stress.
    """
    rng = random.Random(seed)
    pool = list(vocabulary if vocabulary is not None else tokens)
    length = len(tokens)
    script: List[Edit] = []
    for _ in range(count):
        start = rng.randrange(length + 1)
        end = min(length, start + rng.randrange(max_span + 1))
        inserted = [
            pool[rng.randrange(len(pool))]
            for _ in range(rng.randrange(max_insert + 1))
        ] if pool else []
        script.append(Edit(start, end, inserted))
        length += len(inserted) - (end - start)
    return script


def apply_edits(tokens: Sequence[Any], edits: Sequence[Edit]) -> List[Any]:
    """Reference implementation: apply a script by plain list splicing."""
    buffer = list(tokens)
    for edit in edits:
        buffer[edit.start : edit.end] = list(edit.tokens)
    return buffer
