"""Deterministic synthetic PL/0 programs at configurable token counts.

Mirrors :mod:`repro.workloads.python_source` for the PL/0 grammar
(:func:`repro.grammars.pl0_grammar`): a seeded generator emits well-formed
programs — constant and variable declarations, nested procedures,
``begin…end`` compounds, ``if``/``while`` statements, arithmetic with the
full operator ladder — growing until the requested token count is reached,
so every stream is accepted by all parser families and benchmark runs are
repeatable.
"""

from __future__ import annotations

import random
from typing import List

from ..lexer.tokens import Tok

__all__ = ["pl0_tokens", "pl0_source"]


_NAMES = ("x", "y", "z", "count", "limit", "total", "value", "temp", "acc", "step")
_PROCS = ("init", "update", "square", "report", "advance")
_REL_OPS = ("=", "#", "<", "<=", ">", ">=")
_ADD_OPS = ("+", "-")
_MUL_OPS = ("*", "/")


class _Pl0Generator:
    """Emit one well-formed PL/0 program of at least ``target`` tokens."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.tokens: List[Tok] = []
        self.text: List[str] = []

    # ------------------------------------------------------------- emission
    def tok(self, kind: str, value: str = None) -> None:
        self.tokens.append(Tok(kind, value if value is not None else kind))
        self.text.append(value if value is not None else kind)

    def ident(self) -> None:
        self.tok("IDENT", self.rng.choice(_NAMES))

    def number(self) -> None:
        self.tok("NUMBER", str(self.rng.randrange(0, 1000)))

    # ----------------------------------------------------------- structure
    def factor(self, depth: int) -> None:
        roll = self.rng.random()
        if depth > 0 and roll < 0.12:
            self.tok("(")
            self.expression(depth - 1)
            self.tok(")")
        elif roll < 0.55:
            self.ident()
        else:
            self.number()

    def term(self, depth: int) -> None:
        self.factor(depth)
        while self.rng.random() < 0.3:
            self.tok(self.rng.choice(_MUL_OPS))
            self.factor(depth)

    def expression(self, depth: int) -> None:
        if self.rng.random() < 0.1:
            self.tok(self.rng.choice(_ADD_OPS))
        self.term(depth)
        while self.rng.random() < 0.35:
            self.tok(self.rng.choice(_ADD_OPS))
            self.term(depth)

    def condition(self, depth: int) -> None:
        if self.rng.random() < 0.2:
            self.tok("odd")
            self.expression(depth)
        else:
            self.expression(depth)
            self.tok(self.rng.choice(_REL_OPS))
            self.expression(depth)

    def statement(self, depth: int) -> None:
        roll = self.rng.random()
        if depth <= 0 or roll < 0.55:
            self.ident()
            self.tok(":=")
            self.expression(2)
        elif roll < 0.65:
            self.tok("call")
            self.tok("IDENT", self.rng.choice(_PROCS))
        elif roll < 0.8:
            self.tok("begin")
            for position in range(self.rng.randrange(2, 5)):
                if position:
                    self.tok(";")
                self.statement(depth - 1)
            self.tok("end")
        elif roll < 0.9:
            self.tok("if")
            self.condition(1)
            self.tok("then")
            self.statement(depth - 1)
        else:
            self.tok("while")
            self.condition(1)
            self.tok("do")
            self.statement(depth - 1)

    def const_part(self) -> None:
        self.tok("const")
        for position in range(self.rng.randrange(1, 4)):
            if position:
                self.tok(",")
            self.ident()
            self.tok("=")
            self.number()
        self.tok(";")

    def var_part(self) -> None:
        self.tok("var")
        for position in range(self.rng.randrange(1, 5)):
            if position:
                self.tok(",")
            self.ident()
        self.tok(";")

    def procedure(self) -> None:
        self.tok("procedure")
        self.tok("IDENT", self.rng.choice(_PROCS))
        self.tok(";")
        if self.rng.random() < 0.5:
            self.var_part()
        self.statement(2)
        self.tok(";")

    def program(self, target: int) -> None:
        if self.rng.random() < 0.7:
            self.const_part()
        self.var_part()
        for _ in range(self.rng.randrange(0, 3)):
            self.procedure()
        # The main statement: a begin…end compound grown until the program
        # reaches the requested size.
        self.tok("begin")
        self.statement(3)
        while len(self.tokens) < target - 2:
            self.tok(";")
            self.statement(3)
        self.tok("end")
        self.tok(".")


def pl0_tokens(length: int, seed: int = 0) -> List[Tok]:
    """A well-formed PL/0 token stream of at least ``length`` tokens.

    Deterministic in ``(length, seed)``; every stream is accepted by
    :func:`repro.grammars.pl0_grammar` (asserted by the workload tests), so
    benchmark comparisons measure parsing speed, never error handling.
    """
    generator = _Pl0Generator(seed)
    generator.program(length)
    return generator.tokens


def pl0_source(length: int, seed: int = 0) -> str:
    """The source text of the program :func:`pl0_tokens` generates."""
    generator = _Pl0Generator(seed)
    generator.program(length)
    return " ".join(generator.text)
