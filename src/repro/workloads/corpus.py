"""Real-Python corpus loading (the locally installed standard library).

The paper's corpus is the Python 3.4.3 standard library.  The reproduction
uses whatever CPython standard library is installed on the machine running
the benchmarks: files are discovered under ``sysconfig``'s stdlib path,
tokenized with the stdlib ``tokenize`` module and mapped onto the grammar's
token vocabulary by :mod:`repro.lexer.python_tokens`.

Not every real file is inside the Python *subset* grammar (decorators,
``try``/``except``, comprehensions and other constructs are outside the
subset), so corpus files are primarily used for tokenizer-level statistics
and for opportunistic end-to-end checks; the timing benchmarks use the
synthetic generator, which guarantees grammar coverage at every size.
"""

from __future__ import annotations

import os
import sysconfig
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..core.errors import LexError
from ..lexer.python_tokens import tokenize_python_file
from ..lexer.tokens import Tok

__all__ = ["CorpusFile", "stdlib_paths", "iter_corpus", "load_corpus_sample"]


@dataclass
class CorpusFile:
    """One tokenized corpus file."""

    path: str
    tokens: List[Tok]

    @property
    def token_count(self) -> int:
        return len(self.tokens)


def stdlib_paths(limit: Optional[int] = None) -> List[str]:
    """Paths of standard-library ``.py`` files, smallest first."""
    root = sysconfig.get_paths().get("stdlib")
    if not root or not os.path.isdir(root):
        return []
    paths: List[str] = []
    for entry in sorted(os.listdir(root)):
        full = os.path.join(root, entry)
        if entry.endswith(".py") and os.path.isfile(full):
            paths.append(full)
    paths.sort(key=lambda path: os.path.getsize(path))
    return paths[:limit] if limit is not None else paths


def iter_corpus(limit: Optional[int] = None) -> Iterator[CorpusFile]:
    """Tokenize standard-library files, skipping any the tokenizer rejects."""
    for path in stdlib_paths(limit):
        try:
            yield CorpusFile(path, tokenize_python_file(path))
        except LexError:
            continue


def load_corpus_sample(max_files: int = 10, max_tokens: int = 5000) -> List[CorpusFile]:
    """A small deterministic sample of tokenized stdlib files for tests."""
    sample: List[CorpusFile] = []
    for corpus_file in iter_corpus(limit=max_files * 5):
        if corpus_file.token_count == 0 or corpus_file.token_count > max_tokens:
            continue
        sample.append(corpus_file)
        if len(sample) >= max_files:
            break
    return sample
