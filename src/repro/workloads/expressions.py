"""Deterministic function-expression streams for the expression grammar.

Mirrors :mod:`repro.workloads.pl0` for
:func:`repro.grammars.expression_grammar`: a seeded recursive generator
emits well-formed expressions — the full precedence ladder, unary signs,
integer powers, parenthesised sub-expressions and function calls with
argument lists — growing with additive operators until the requested token
count is reached, so every stream is accepted by all parser families and
benchmark runs are repeatable.
"""

from __future__ import annotations

import random
from typing import List

from ..grammars.expressions import EXPRESSION_FUNCTIONS
from ..lexer.tokens import Tok

__all__ = ["expression_tokens", "expression_source"]


_VARIABLES = ("x", "y", "z", "a", "b", "t")


class _ExpressionGenerator:
    """Emit one well-formed expression of at least ``target`` tokens."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.tokens: List[Tok] = []

    def tok(self, kind: str, value: str = None) -> None:
        self.tokens.append(Tok(kind, value if value is not None else kind))

    def atom(self, depth: int) -> None:
        roll = self.rng.random()
        if depth > 0 and roll < 0.15:
            self.tok("(")
            self.expression(depth - 1)
            self.tok(")")
        elif depth > 0 and roll < 0.3:
            self.call(depth - 1)
        elif roll < 0.65:
            self.tok("NUMBER", str(self.rng.randrange(0, 100)))
        else:
            self.tok("IDENT", self.rng.choice(_VARIABLES))

    def call(self, depth: int) -> None:
        self.tok("FUNC", self.rng.choice(EXPRESSION_FUNCTIONS))
        self.tok("(")
        for position in range(self.rng.randrange(1, 4)):
            if position:
                self.tok(",")
            self.expression(depth)
        self.tok(")")

    def factor(self, depth: int) -> None:
        # Optional unary-sign layers, then a power over an atom.
        while self.rng.random() < 0.1:
            self.tok(self.rng.choice("+-"))
        self.atom(depth)
        if self.rng.random() < 0.2:
            self.tok("^")
            self.tok("NUMBER", str(self.rng.randrange(2, 9)))

    def term(self, depth: int) -> None:
        self.factor(depth)
        while self.rng.random() < 0.3:
            self.tok("*")
            self.factor(depth)

    def expression(self, depth: int) -> None:
        if self.rng.random() < 0.15:
            self.tok(self.rng.choice("+-"))
        self.term(depth)
        while self.rng.random() < 0.35:
            self.tok(self.rng.choice("+-"))
            self.term(depth)

    def grow(self, target: int) -> None:
        self.expression(3)
        while len(self.tokens) < target:
            self.tok(self.rng.choice("+-"))
            self.term(3)


def expression_tokens(length: int, seed: int = 0) -> List[Tok]:
    """A well-formed function-expression stream of at least ``length`` tokens.

    Deterministic in ``(length, seed)``; every stream is accepted by
    :func:`repro.grammars.expression_grammar` (asserted by the workload
    property tests), so benchmark comparisons measure parsing speed, never
    error handling.
    """
    generator = _ExpressionGenerator(seed)
    generator.grow(length)
    return generator.tokens


def expression_source(length: int, seed: int = 0) -> str:
    """The source text of the expression :func:`expression_tokens` generates."""
    return " ".join(str(tok.value) for tok in expression_tokens(length, seed))
