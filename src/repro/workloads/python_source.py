"""Deterministic synthetic Python programs for the evaluation workloads.

The paper benchmarks against the Python Standard Library (663 files, up to
26,125 tokens).  The reproduction cannot ship that exact corpus, so this
module generates *synthetic* Python programs with the statistical shape of
ordinary Python code — functions with arithmetic and calls, conditionals,
loops, classes, imports — at any requested token count.  Two properties make
the generator suitable for benchmarking:

* **Determinism** — a given ``seed`` and ``target_tokens`` always produce the
  same program, so measurements are repeatable.
* **Grammar closure** — every emitted construct is covered by
  :func:`repro.grammars.python_subset.python_grammar`, so all four parsers
  accept every generated program and the comparison measures parsing speed,
  never error handling.

The generator produces both the token stream (what the parsers consume — the
paper tokenizes ahead of time as well) and the corresponding source text
(useful for eyeballing the workload and for the stdlib-``tokenize`` bridge).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..lexer.tokens import Tok

__all__ = ["SyntheticProgram", "PythonProgramGenerator", "generate_program"]


@dataclass
class SyntheticProgram:
    """A generated program: its token stream and its source text."""

    tokens: List[Tok]
    source: str
    seed: int
    requested_tokens: int

    @property
    def token_count(self) -> int:
        return len(self.tokens)


class _Emitter:
    """Accumulates tokens and source text while tracking indentation."""

    def __init__(self) -> None:
        self.tokens: List[Tok] = []
        self.lines: List[str] = []
        self.indent = 0
        self._current: List[str] = []

    def tok(self, kind: str, value: Optional[str] = None) -> None:
        self.tokens.append(Tok(kind, value if value is not None else kind))
        self._current.append(value if value is not None else kind)

    def newline(self) -> None:
        self.tokens.append(Tok("NEWLINE", "\n"))
        self.lines.append("    " * self.indent + " ".join(self._current))
        self._current = []

    def open_suite(self) -> None:
        self.newline()
        self.indent += 1
        self.tokens.append(Tok("INDENT", "    " * self.indent))

    def close_suite(self) -> None:
        self.indent -= 1
        self.tokens.append(Tok("DEDENT", ""))

    @property
    def count(self) -> int:
        return len(self.tokens)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class PythonProgramGenerator:
    """Generate Python-like programs of (approximately) a requested token count."""

    NAMES = ("alpha", "beta", "counter", "data", "index", "item", "result", "total", "value", "x")
    ATTRS = ("size", "next", "items", "name", "head")
    FUNCS = ("process", "compute", "update", "handle", "reduce_all", "scan")
    MODULES = ("os", "sys", "math", "json", "collections")
    NUMBERS = ("0", "1", "2", "3", "7", "10", "42", "100")
    STRINGS = ("'ok'", "'error'", "'result'", "'x'")
    COMPARES = ("<", ">", "==", "!=", "<=", ">=")
    ARITH = ("+", "-", "*", "//", "%")
    AUG = ("+=", "-=", "*=")

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self.seed = seed

    # ------------------------------------------------------------------ API
    def generate(self, target_tokens: int) -> SyntheticProgram:
        """Generate a program of roughly ``target_tokens`` tokens (never fewer)."""
        emitter = _Emitter()
        # A little preamble of imports, like most real modules.
        self._import(emitter)
        while emitter.count < target_tokens:
            choice = self.rng.random()
            if choice < 0.45:
                self._funcdef(emitter)
            elif choice < 0.55:
                self._classdef(emitter)
            else:
                self._statement(emitter, in_function=False, in_loop=False)
        return SyntheticProgram(
            tokens=emitter.tokens,
            source=emitter.source(),
            seed=self.seed,
            requested_tokens=target_tokens,
        )

    # ------------------------------------------------------------ statements
    def _import(self, emitter: _Emitter) -> None:
        if self.rng.random() < 0.5:
            emitter.tok("import")
            emitter.tok("NAME", self.rng.choice(self.MODULES))
        else:
            emitter.tok("from")
            emitter.tok("NAME", self.rng.choice(self.MODULES))
            emitter.tok("import")
            emitter.tok("NAME", self.rng.choice(self.FUNCS))
        emitter.newline()

    def _funcdef(self, emitter: _Emitter) -> None:
        emitter.tok("def")
        emitter.tok("NAME", self.rng.choice(self.FUNCS))
        emitter.tok("(")
        params = self.rng.randrange(0, 4)
        for position in range(params):
            if position:
                emitter.tok(",")
            emitter.tok("NAME", self.NAMES[position])
            if self.rng.random() < 0.25:
                emitter.tok("=")
                emitter.tok("NUMBER", self.rng.choice(self.NUMBERS))
        emitter.tok(")")
        emitter.tok(":")
        emitter.open_suite()
        for _ in range(self.rng.randrange(2, 6)):
            self._statement(emitter, in_function=True, in_loop=False)
        if self.rng.random() < 0.8:
            emitter.tok("return")
            self._expression(emitter, depth=2)
            emitter.newline()
        emitter.close_suite()

    def _classdef(self, emitter: _Emitter) -> None:
        emitter.tok("class")
        emitter.tok("NAME", "Widget")
        if self.rng.random() < 0.4:
            emitter.tok("(")
            emitter.tok("NAME", "object")
            emitter.tok(")")
        emitter.tok(":")
        emitter.open_suite()
        for _ in range(self.rng.randrange(1, 3)):
            self._funcdef(emitter)
        emitter.close_suite()

    def _statement(self, emitter: _Emitter, in_function: bool, in_loop: bool) -> None:
        roll = self.rng.random()
        if roll < 0.35:
            self._assignment(emitter)
        elif roll < 0.45:
            self._aug_assignment(emitter)
        elif roll < 0.55:
            self._call_statement(emitter)
        elif roll < 0.70:
            self._if(emitter, in_function, in_loop)
        elif roll < 0.80:
            self._while(emitter, in_function)
        elif roll < 0.90:
            self._for(emitter, in_function)
        elif roll < 0.95 and in_loop:
            emitter.tok(self.rng.choice(("break", "continue")))
            emitter.newline()
        else:
            emitter.tok("assert")
            self._expression(emitter, depth=1)
            emitter.newline()

    def _assignment(self, emitter: _Emitter) -> None:
        emitter.tok("NAME", self.rng.choice(self.NAMES))
        if self.rng.random() < 0.2:
            emitter.tok(".")
            emitter.tok("NAME", self.rng.choice(self.ATTRS))
        emitter.tok("=")
        self._expression(emitter, depth=2)
        emitter.newline()

    def _aug_assignment(self, emitter: _Emitter) -> None:
        emitter.tok("NAME", self.rng.choice(self.NAMES))
        emitter.tok(self.rng.choice(self.AUG))
        self._expression(emitter, depth=1)
        emitter.newline()

    def _call_statement(self, emitter: _Emitter) -> None:
        self._call(emitter, depth=1)
        emitter.newline()

    def _if(self, emitter: _Emitter, in_function: bool, in_loop: bool) -> None:
        emitter.tok("if")
        self._condition(emitter)
        emitter.tok(":")
        emitter.open_suite()
        for _ in range(self.rng.randrange(1, 3)):
            self._simple_statement(emitter)
        emitter.close_suite()
        if self.rng.random() < 0.4:
            emitter.tok("else")
            emitter.tok(":")
            emitter.open_suite()
            self._simple_statement(emitter)
            emitter.close_suite()

    def _while(self, emitter: _Emitter, in_function: bool) -> None:
        emitter.tok("while")
        self._condition(emitter)
        emitter.tok(":")
        emitter.open_suite()
        for _ in range(self.rng.randrange(1, 3)):
            self._simple_statement(emitter)
        if self.rng.random() < 0.3:
            emitter.tok(self.rng.choice(("break", "continue")))
            emitter.newline()
        emitter.close_suite()

    def _for(self, emitter: _Emitter, in_function: bool) -> None:
        emitter.tok("for")
        emitter.tok("NAME", self.rng.choice(self.NAMES))
        emitter.tok("in")
        self._call(emitter, depth=1)
        emitter.tok(":")
        emitter.open_suite()
        for _ in range(self.rng.randrange(1, 3)):
            self._simple_statement(emitter)
        emitter.close_suite()

    def _simple_statement(self, emitter: _Emitter) -> None:
        roll = self.rng.random()
        if roll < 0.5:
            self._assignment(emitter)
        elif roll < 0.7:
            self._aug_assignment(emitter)
        elif roll < 0.9:
            self._call_statement(emitter)
        else:
            emitter.tok("pass")
            emitter.newline()

    # ----------------------------------------------------------- expressions
    def _condition(self, emitter: _Emitter) -> None:
        self._expression(emitter, depth=1)
        emitter.tok(self.rng.choice(self.COMPARES))
        self._expression(emitter, depth=1)
        if self.rng.random() < 0.2:
            emitter.tok(self.rng.choice(("and", "or")))
            self._expression(emitter, depth=1)

    def _expression(self, emitter: _Emitter, depth: int) -> None:
        self._term(emitter, depth)
        for _ in range(self.rng.randrange(0, 3)):
            emitter.tok(self.rng.choice(self.ARITH))
            self._term(emitter, depth)

    def _term(self, emitter: _Emitter, depth: int) -> None:
        roll = self.rng.random()
        if depth <= 0 or roll < 0.35:
            emitter.tok("NAME", self.rng.choice(self.NAMES))
        elif roll < 0.6:
            emitter.tok("NUMBER", self.rng.choice(self.NUMBERS))
        elif roll < 0.7:
            emitter.tok("STRING", self.rng.choice(self.STRINGS))
        elif roll < 0.85:
            self._call(emitter, depth - 1)
        elif roll < 0.95:
            emitter.tok("NAME", self.rng.choice(self.NAMES))
            emitter.tok(".")
            emitter.tok("NAME", self.rng.choice(self.ATTRS))
        else:
            emitter.tok("(")
            self._expression(emitter, depth - 1)
            emitter.tok(")")

    def _call(self, emitter: _Emitter, depth: int) -> None:
        emitter.tok("NAME", self.rng.choice(self.FUNCS))
        emitter.tok("(")
        arguments = self.rng.randrange(0, 3)
        for position in range(arguments):
            if position:
                emitter.tok(",")
            self._expression(emitter, max(depth, 0))
        emitter.tok(")")


def generate_program(target_tokens: int, seed: int = 0) -> SyntheticProgram:
    """Convenience wrapper: one-shot generation of a synthetic program."""
    return PythonProgramGenerator(seed).generate(target_tokens)
