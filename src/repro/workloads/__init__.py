"""Workload generators: synthetic programs, token streams, corpus, edit scripts."""

from .ambiguity import (
    ASTRONOMICAL_LEAVES,
    ASTRONOMICAL_QUICK_LEAVES,
    catalan_count,
    catalan_tokens,
    dangling_else_count,
    dangling_else_tokens,
)
from .corpus import CorpusFile, iter_corpus, load_corpus_sample, stdlib_paths
from .documents import json_document_tokens
from .edits import (
    Edit,
    apply_edits,
    random_edit_script,
    single_token_edits,
    value_edit_at,
)
from .expressions import expression_source, expression_tokens
from .pl0 import pl0_source, pl0_tokens
from .python_source import PythonProgramGenerator, SyntheticProgram, generate_program
from .token_streams import (
    ambiguous_sum_tokens,
    arithmetic_tokens,
    chain_expression_tokens,
    json_tokens,
    nested_parens_tokens,
    repeated_token_stream,
    sexpr_tokens,
)

__all__ = [
    "PythonProgramGenerator",
    "SyntheticProgram",
    "generate_program",
    "CorpusFile",
    "iter_corpus",
    "load_corpus_sample",
    "stdlib_paths",
    "arithmetic_tokens",
    "json_tokens",
    "sexpr_tokens",
    "nested_parens_tokens",
    "ambiguous_sum_tokens",
    "chain_expression_tokens",
    "repeated_token_stream",
    "pl0_tokens",
    "pl0_source",
    "expression_tokens",
    "expression_source",
    "json_document_tokens",
    "ASTRONOMICAL_LEAVES",
    "ASTRONOMICAL_QUICK_LEAVES",
    "catalan_tokens",
    "catalan_count",
    "dangling_else_tokens",
    "dangling_else_count",
    "Edit",
    "value_edit_at",
    "single_token_edits",
    "random_edit_script",
    "apply_edits",
]
