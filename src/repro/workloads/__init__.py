"""Workload generators: synthetic programs, token streams, corpus, edit scripts."""

from .corpus import CorpusFile, iter_corpus, load_corpus_sample, stdlib_paths
from .edits import (
    Edit,
    apply_edits,
    random_edit_script,
    single_token_edits,
    value_edit_at,
)
from .pl0 import pl0_source, pl0_tokens
from .python_source import PythonProgramGenerator, SyntheticProgram, generate_program
from .token_streams import (
    ambiguous_sum_tokens,
    arithmetic_tokens,
    chain_expression_tokens,
    json_tokens,
    nested_parens_tokens,
    repeated_token_stream,
    sexpr_tokens,
)

__all__ = [
    "PythonProgramGenerator",
    "SyntheticProgram",
    "generate_program",
    "CorpusFile",
    "iter_corpus",
    "load_corpus_sample",
    "stdlib_paths",
    "arithmetic_tokens",
    "json_tokens",
    "sexpr_tokens",
    "nested_parens_tokens",
    "ambiguous_sum_tokens",
    "chain_expression_tokens",
    "repeated_token_stream",
    "pl0_tokens",
    "pl0_source",
    "Edit",
    "value_edit_at",
    "single_token_edits",
    "random_edit_script",
    "apply_edits",
]
