"""Large generated JSON documents for the data-format corner of the zoo.

:func:`repro.workloads.json_tokens` grows a document by rolling a recursion
die per value, which yields small, depth-limited documents.  This module's
:func:`json_document_tokens` instead *plans* a document around a target
token count — a top-level array of record objects, each with a handful of
keyed fields mixing scalars, nested objects and arrays — which is the shape
of real exported datasets and keeps the token count scaling linearly with
the requested size.  Everything is driven by one ``random.Random(seed)``,
so a (size, seed) pair names one exact document forever.
"""

from __future__ import annotations

import random
from typing import List

from ..lexer.tokens import Tok

__all__ = ["json_document_tokens"]

_SCALAR_KINDS = ("NUMBER", "STRING", "true", "false", "null")


def _scalar(rng: random.Random) -> Tok:
    kind = rng.choice(_SCALAR_KINDS)
    if kind == "NUMBER":
        return Tok("NUMBER", str(rng.randrange(0, 10000)))
    if kind == "STRING":
        return Tok("STRING", '"v{}"'.format(rng.randrange(0, 500)))
    return Tok(kind)


def _value(out: List[Tok], rng: random.Random, depth: int) -> None:
    roll = rng.random()
    if depth <= 0 or roll < 0.6:
        out.append(_scalar(rng))
    elif roll < 0.8:
        out.append(Tok("{"))
        for position in range(rng.randrange(1, 4)):
            if position:
                out.append(Tok(","))
            out.append(Tok("STRING", '"f{}"'.format(position)))
            out.append(Tok(":"))
            _value(out, rng, depth - 1)
        out.append(Tok("}"))
    else:
        out.append(Tok("["))
        for position in range(rng.randrange(1, 4)):
            if position:
                out.append(Tok(","))
            _value(out, rng, depth - 1)
        out.append(Tok("]"))


def _record(out: List[Tok], rng: random.Random) -> None:
    out.append(Tok("{"))
    for position in range(rng.randrange(3, 7)):
        if position:
            out.append(Tok(","))
        out.append(Tok("STRING", '"k{}"'.format(position)))
        out.append(Tok(":"))
        _value(out, rng, depth=3)
    out.append(Tok("}"))


def json_document_tokens(length: int, seed: int = 0) -> List[Tok]:
    """A well-formed JSON document of at least ``length`` tokens.

    Shaped like an exported dataset: a top-level array of record objects
    appended until the target size is reached.  Deterministic in
    ``(length, seed)``; every stream is accepted by
    :func:`repro.grammars.json_grammar` (asserted by the workload property
    tests).
    """
    rng = random.Random(seed)
    out: List[Tok] = [Tok("[")]
    _record(out, rng)
    while len(out) < length - 1:
        out.append(Tok(","))
        _record(out, rng)
    out.append(Tok("]"))
    return out
