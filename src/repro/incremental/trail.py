"""Checkpoint trails: ordered snapshots of a parse at increasing positions.

Both engine states snapshot in O(1) — an interpreted
:class:`~repro.core.parse.ParserSnapshot` pins one node of a persistent
derived-language graph, a compiled
:class:`~repro.compile.executor.CompiledSnapshot` pins one interned
automaton state (plus its int id in the table's dense core, which is what
edit-aware reparsing compares during shadow-cursor re-convergence) — so
keeping a snapshot every *k* tokens costs a handful of references per
kilotoken, not a copy of anything.  A
:class:`CheckpointTrail` is that bookkeeping: the sorted list of
snapshots plus the two queries edit-aware reparsing needs, "rightmost
checkpoint at or before this position" (where to rewind to) and
"truncate beyond this position" (checkpoints past an edit describe a
prefix that no longer exists).

The trail is engine-agnostic: it only reads each snapshot's ``position``
attribute, which both snapshot types expose.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterable, List, Tuple

__all__ = ["CheckpointTrail"]


class CheckpointTrail:
    """Engine snapshots at strictly increasing stream positions."""

    __slots__ = ("_snapshots",)

    def __init__(self, snapshots: Iterable[Any] = ()) -> None:
        self._snapshots: List[Any] = list(snapshots)
        positions = [snap.position for snap in self._snapshots]
        if positions != sorted(set(positions)):
            raise ValueError(
                "trail positions must be strictly increasing, got {}".format(positions)
            )

    # ------------------------------------------------------------- recording
    def record(self, snapshot: Any) -> None:
        """Append a snapshot; its position must exceed every recorded one."""
        if self._snapshots and snapshot.position <= self._snapshots[-1].position:
            raise ValueError(
                "snapshot at position {} does not extend the trail (last is {})".format(
                    snapshot.position, self._snapshots[-1].position
                )
            )
        self._snapshots.append(snapshot)

    def truncate_beyond(self, position: int) -> int:
        """Drop snapshots with ``position > position``; return how many."""
        keep = bisect_right(self.positions(), position)
        dropped = len(self._snapshots) - keep
        del self._snapshots[keep:]
        return dropped

    # --------------------------------------------------------------- queries
    def rewind_point(self, position: int) -> Any:
        """The rightmost snapshot at or before ``position``.

        Raises :class:`LookupError` when the trail has no snapshot that
        early (a trail anchored at position 0 always has one).
        """
        index = bisect_right(self.positions(), position) - 1
        if index < 0:
            raise LookupError(
                "no checkpoint at or before position {}".format(position)
            )
        return self._snapshots[index]

    def at_or_after(self, position: int) -> List[Any]:
        """Every snapshot with ``position >= position``, in order."""
        index = bisect_right(self.positions(), position - 1)
        return self._snapshots[index:]

    def positions(self) -> List[int]:
        """The recorded positions, ascending."""
        return [snap.position for snap in self._snapshots]

    def snapshots(self) -> Tuple[Any, ...]:
        """An immutable view of the recorded snapshots."""
        return tuple(self._snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)

    def __repr__(self) -> str:
        return "CheckpointTrail({} checkpoints, positions={})".format(
            len(self._snapshots), self.positions()[:8]
        )
