"""repro.incremental — edit-aware reparsing on checkpoint trails.

Snapshotting a prefix of a derivative parse is a reference copy (the
structures are persistent), so keeping a checkpoint every *k* tokens is
nearly free — and an edit then costs a rewind to the nearest checkpoint
plus a replay of the changed region, instead of a full reparse.  On the
compiled engine the replay also *re-converges*: interned automaton states
are value-insensitive, so a shadow cursor detects the position where the
new parse re-joins the old one and splices the old trail back in,
bounding an edit's cost by ``checkpoint interval + edit size``.

Quickstart::

    from repro.incremental import IncrementalDocument
    from repro.grammars import pl0_grammar
    from repro.workloads import pl0_tokens

    tokens = pl0_tokens(5_000)
    document = IncrementalDocument(
        pl0_grammar(), tokens, checkpoint_every=64, engine="compiled"
    )
    document.recognize()                     # True
    result = document.apply_edit(2_500, 2_501, [tokens[2_500]._replace(value="7")])
    result.refed_tokens                      # ~ checkpoint interval, not 5 000
    document.recognize()                     # parity with a from-scratch parse

The serve layer wraps the same machinery in sessions:
``ParseSession.apply_edit`` and the :class:`~repro.serve.ParseService`
``edit`` front door (see :mod:`repro.serve.sessions`).
"""

from .document import DEFAULT_CHECKPOINT_EVERY, EditResult, IncrementalDocument
from .trail import CheckpointTrail

__all__ = [
    "IncrementalDocument",
    "EditResult",
    "CheckpointTrail",
    "DEFAULT_CHECKPOINT_EVERY",
]
