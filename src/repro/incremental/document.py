"""Edit-aware incremental reparsing over checkpoint trails.

The PLDI'16 structures make incremental reparsing nearly free to set up:
every prefix of a parse is pinned by an O(1) snapshot (interpreted
derived-language graphs are persistent; compiled automaton states are
interned), so a :class:`~repro.incremental.trail.CheckpointTrail` of one
snapshot every *k* tokens costs a few references per kilotoken.
:class:`IncrementalDocument` owns the one authoritative token buffer plus
that trail, and implements ``apply_edit(start, end, new_tokens)`` as:

1. **Rewind** to the rightmost checkpoint at or before ``start`` (O(1) —
   adopt the snapshot by reference), discarding the now-invalid
   checkpoints beyond it.
2. **Re-feed** the changed region from there, recording fresh
   checkpoints as the replay crosses multiples of *k*.
3. **Re-converge** (compiled engine only): once the replay is past the
   edited region the remaining tokens are exactly the old suffix, so a
   *shadow cursor* — the old parse resumed from its own nearest
   checkpoint — walks in lock-step with the replay, and the moment both
   cursors sit on the *same interned automaton state* every later
   transition is provably identical: the replay stops, the old trail's
   suffix is spliced back (positions shifted by the edit's length
   delta), and the old final state is adopted.  Re-fed work is then
   bounded by ``checkpoint interval + edit size + convergence lag``
   instead of the suffix length.

The interpreted engine deliberately skips step 3: its derived graphs
carry the parse *payloads* of the consumed prefix (that is how
``parse-null`` extracts trees), so after an edit the old and new chains
are never the same object even when recognition-equivalent — an
interpreted edit re-feeds the whole suffix, which still beats a full
reparse by ``position / suffix`` and is exact for trees.  Compiled
automaton states are value-insensitive (token-class transitions, no
payloads), which is precisely why they re-converge — and why compiled
documents extract trees through the engine's usual interpreted fallback
over the buffer.

**Parity contract** (asserted by ``tests/differential``): after any edit
sequence, ``recognize()``, ``tree()`` and the diagnosed failure position
agree exactly with a from-scratch parse of the current buffer on the
same engine.

Like a :class:`~repro.core.parse.DerivativeParser`, a document is a
single-caller object — wrap it in a lock to share it across threads
(:class:`repro.serve.ParseSession` does exactly that).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from ..compile.executor import CompiledParser, CompiledSnapshot
from ..core.errors import ParseError
from ..core.forest import ForestNode, first_tree, iter_trees
from ..core.metrics import Metrics
from ..core.parse import DerivativeParser, ParserSnapshot
from ..obs.trace import stage
from .trail import CheckpointTrail

__all__ = ["EditResult", "IncrementalDocument"]

#: Tokens between checkpoints when the caller does not choose.
DEFAULT_CHECKPOINT_EVERY = 64


class EditResult:
    """What one :meth:`IncrementalDocument.apply_edit` actually did.

    ``refed_tokens`` is the number of tokens genuinely re-derived (the
    edit's real cost); ``rewound_to`` the checkpoint position the replay
    started from; ``converged_at`` the buffer position where the replay
    re-joined the old parse and spliced its trail (None when it re-fed to
    the end — always None on the interpreted engine).
    """

    __slots__ = (
        "start",
        "end",
        "removed",
        "inserted",
        "rewound_to",
        "refed_tokens",
        "converged_at",
        "length",
    )

    def __init__(
        self,
        start: int,
        end: int,
        removed: int,
        inserted: int,
        rewound_to: int,
        refed_tokens: int,
        converged_at: Optional[int],
        length: int,
    ) -> None:
        self.start = start
        self.end = end
        self.removed = removed
        self.inserted = inserted
        self.rewound_to = rewound_to
        self.refed_tokens = refed_tokens
        self.converged_at = converged_at
        self.length = length

    def __repr__(self) -> str:
        return (
            "EditResult([{}:{}) -{} +{}, rewound_to={}, refed={}, "
            "converged_at={}, length={})".format(
                self.start,
                self.end,
                self.removed,
                self.inserted,
                self.rewound_to,
                self.refed_tokens,
                self.converged_at,
                self.length,
            )
        )


class IncrementalDocument:
    """A token buffer whose parse survives edits by rewinding a checkpoint trail.

    Parameters
    ----------
    grammar:
        Anything the chosen engine's parser constructor accepts.  Ignored
        when ``parser`` is given.
    tokens:
        Initial buffer contents, fed on construction.
    checkpoint_every:
        Trail density *k*: one O(1) snapshot per ``k`` consumed tokens.
        Smaller ``k`` means less re-feeding per edit and a longer trail.
    engine:
        ``"interpreted"`` (alias ``"derivative"``) or ``"compiled"``.
    parser:
        An existing :class:`~repro.core.parse.DerivativeParser` or
        :class:`~repro.compile.executor.CompiledParser` to drive instead
        of constructing one (e.g. a parser over a service's shared table).
    metrics:
        Optional :class:`~repro.core.metrics.Metrics` for the
        ``edits_applied`` / ``edit_tokens_refed`` / ``edit_splices``
        counters; defaults to the interpreted parser's own instance, or a
        private one for compiled documents (whose table metrics are only
        written under the table lock).
    """

    def __init__(
        self,
        grammar: Any = None,
        tokens: Iterable[Any] = (),
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        engine: str = "interpreted",
        parser: Any = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(
                "checkpoint_every must be >= 1, got {}".format(checkpoint_every)
            )
        if parser is None:
            if grammar is None:
                raise ValueError("IncrementalDocument needs a grammar or a parser")
            if engine in ("interpreted", "derivative"):
                parser = DerivativeParser(grammar)
            elif engine == "compiled":
                parser = CompiledParser(grammar)
            else:
                raise ValueError(
                    "unknown engine {!r}; expected 'interpreted' or 'compiled'".format(
                        engine
                    )
                )
        self._parser = parser
        self._compiled = isinstance(parser, CompiledParser)
        self.checkpoint_every = checkpoint_every
        if metrics is not None:
            self.metrics = metrics
        elif self._compiled:
            self.metrics = Metrics()
        else:
            self.metrics = parser.metrics
        self._tokens: List[Any] = []
        self._trail = CheckpointTrail()
        self._state = self._fresh_state()
        self._trail.record(self._state.snapshot())
        self.extend(tokens)

    # --------------------------------------------------------- construction
    @classmethod
    def restore(
        cls,
        parser: Any,
        tokens: Sequence[Any],
        trail: Sequence[Any],
        snapshot: Any,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        metrics: Optional[Metrics] = None,
    ) -> "IncrementalDocument":
        """Rebuild a document from captured state without re-feeding anything.

        ``trail`` must be the snapshot sequence of a previous document over
        the same engine artifact (its first snapshot anchors position 0)
        and ``snapshot`` that document's final state; everything is adopted
        by reference in O(trail length).  This is what trail-aware session
        restore (:meth:`repro.serve.SessionManager.restore`) runs.
        """
        document = cls(parser=parser, checkpoint_every=checkpoint_every, metrics=metrics)
        if not trail or trail[0].position != 0:
            raise ValueError("a restorable trail must start with a position-0 snapshot")
        document._tokens = list(tokens)
        document._trail = CheckpointTrail(trail)
        document._state = document._resume(snapshot)
        return document

    # ------------------------------------------------------------ engine gl
    @property
    def engine(self) -> str:
        """Which engine drives this document: 'interpreted' or 'compiled'."""
        return "compiled" if self._compiled else "interpreted"

    @property
    def parser(self) -> Any:
        """The engine parser this document drives."""
        return self._parser

    def _fresh_state(self) -> Any:
        if self._compiled:
            # The document owns the authoritative token buffer; the state
            # does not need to retain a second copy.
            return self._parser.start(
                keep_tokens=False,
                snapshot_every=self.checkpoint_every,
                on_snapshot=self._record,
            )
        return self._parser.start(
            snapshot_every=self.checkpoint_every, on_snapshot=self._record
        )

    def _resume(self, snapshot: Any) -> Any:
        return self._parser.resume(
            snapshot,
            snapshot_every=self.checkpoint_every,
            on_snapshot=self._record,
        )

    def _record(self, snapshot: Any) -> None:
        self._trail.record(snapshot)

    def _shift(self, snapshot: Any, delta: int) -> Any:
        failure = snapshot.failure_position
        if failure is not None:
            failure += delta
        if self._compiled:
            return CompiledSnapshot(snapshot.state, snapshot.position + delta, failure)
        return ParserSnapshot(snapshot.language, snapshot.position + delta, failure)

    # --------------------------------------------------------------- buffer
    @property
    def tokens(self) -> Tuple[Any, ...]:
        """A copy of the current buffer contents (O(n))."""
        return tuple(self._tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    @property
    def position(self) -> int:
        """Tokens the parse has consumed (== ``len(self)`` unless failed)."""
        return self._state.position

    @property
    def failed(self) -> bool:
        """True once the parse died *structurally*.

        Structural death can lag the token that semantically killed the
        parse (engine prune cadence decides when a dead language collapses
        to ``∅``), so the definitive answers are :meth:`recognize` and
        :meth:`failure_position`.
        """
        return self._state.failed

    @property
    def structural_failure_position(self) -> Optional[int]:
        """Where the parse died *structurally*, or None while alive.

        Cheap (a field read), but can lag the semantically killing token;
        :meth:`failure_position` is the exact, engine-diagnosed answer.
        """
        return self._state.failure_position

    def checkpoints(self) -> List[int]:
        """The trail's checkpoint positions, ascending (position 0 first)."""
        return self._trail.positions()

    def trail_snapshots(self) -> Tuple[Any, ...]:
        """The trail's snapshots (for trail-aware checkpoint/restore)."""
        return self._trail.snapshots()

    def state_snapshot(self) -> Any:
        """An O(1) snapshot of the current final state."""
        return self._state.snapshot()

    # -------------------------------------------------------------- feeding
    def append(self, token: Any) -> "IncrementalDocument":
        """Append one token to the end of the buffer (no rewind needed)."""
        self._state.feed(token)
        self._tokens.append(token)
        return self

    def extend(self, tokens: Iterable[Any]) -> "IncrementalDocument":
        """Append every token from an iterable."""
        for token in tokens:
            self._state.feed(token)
            self._tokens.append(token)
        return self

    # --------------------------------------------------------------- edits
    def apply_edit(
        self, start: int, end: int, new_tokens: Sequence[Any]
    ) -> EditResult:
        """Replace ``buffer[start:end]`` with ``new_tokens`` and reparse cheaply.

        Insertion is ``start == end``, deletion an empty ``new_tokens``.
        Returns an :class:`EditResult` describing the real work done.  The
        parse state afterwards is exactly equivalent to a from-scratch
        parse of the new buffer (the parity contract).
        """
        new_tokens = list(new_tokens)
        length = len(self._tokens)
        if not (0 <= start <= end <= length):
            raise ValueError(
                "edit range [{}:{}) is outside the buffer (length {})".format(
                    start, end, length
                )
            )
        removed = end - start
        inserted = len(new_tokens)
        delta = inserted - removed
        self.metrics.edits_applied += 1

        if removed == 0 and inserted == 0:
            return self._edit_result(start, end, removed, inserted,
                                     rewound_to=self._state.position, refed=0,
                                     converged_at=None)

        state = self._state
        # Dead-prefix short-circuit: the parse died structurally on a token
        # strictly before the edit, so the prefix that killed it is
        # untouched and the state cannot change.
        if state.failed and start > state.failure_position:
            self._tokens[start:end] = new_tokens
            return self._edit_result(start, end, removed, inserted,
                                     rewound_to=state.position, refed=0,
                                     converged_at=None)

        # Pure append onto a live parse: no rewind, just feed.
        if removed == 0 and start == length and not state.failed:
            before = state.position
            state.feed_all(new_tokens)
            self._tokens.extend(new_tokens)
            refed = state.position - before
            self.metrics.edit_tokens_refed += refed
            return self._edit_result(start, end, removed, inserted,
                                     rewound_to=before, refed=refed,
                                     converged_at=None)

        # The rewind/replay/splice blocks below double as repro.obs trace
        # stages: when a trace is active (a served session edit under a
        # tracing observer) each block's wall time is recorded; otherwise
        # stage() is a shared no-op costing one contextvar read per edit.
        with stage("rewind"):
            old_snapshots = self._trail.snapshots()
            old_final = state.snapshot()
            base = self._trail.rewind_point(start)

            # Shadow cursor (compiled only): the old parse resumed just
            # before the edit's right edge and caught up to it on the *old*
            # tokens, so the replay below can compare interned states
            # position-for-position over the unchanged suffix.  Must be set
            # up before the buffer mutation consumes the old middle span.
            shadow = None
            if self._compiled and (
                old_final.failure_position is None or old_final.failure_position >= end
            ):
                shadow_base = self._trail.rewind_point(end)
                shadow = self._parser.resume(shadow_base)
                shadow.feed_all(self._tokens[shadow_base.position : end])
                if shadow.failed:  # pragma: no cover - deterministic replay is alive
                    shadow = None

            self._trail.truncate_beyond(base.position)
            self._tokens[start:end] = new_tokens
            self._state = state = self._resume(base)

        boundary = start + inserted
        converged_at: Optional[int] = None
        with stage("replay"):
            # Replay the unchanged left span plus the new tokens; no
            # convergence is possible before the edit's right edge.
            state.feed_all(self._tokens[base.position : boundary])

            if not state.failed and shadow is not None:
                # Lock-step walk over the unchanged suffix: state is at new
                # position p, shadow at old position p - delta, both about to
                # consume the same token object.  Same interned state ⇒ every
                # later transition identical ⇒ stop and splice.  Interned
                # states and dense ids are bijective, so on a dense-cored
                # table the comparison is two int reads (the same ids
                # CompiledSnapshot pins into checkpoint trails); impure
                # tables keep the object-identity check.
                p = boundary
                total = len(self._tokens)
                while p < total:
                    ssid = state.state.dense_id
                    if (
                        ssid == shadow.state.dense_id
                        if ssid is not None
                        else state.state is shadow.state
                    ):
                        converged_at = p
                        break
                    token = self._tokens[p]
                    state.feed(token)
                    if state.failed:
                        break
                    shadow.feed(token)
                    if shadow.failed:
                        shadow = None
                        break
                    p += 1
            if converged_at is None:
                state.feed_all(self._tokens[state.position:])
                refed = state.position - base.position
        if converged_at is not None:
            refed = converged_at - base.position
            with stage("splice"):
                self._splice(old_snapshots, old_final, converged_at - delta, delta)
            self.metrics.edit_splices += 1

        self.metrics.edit_tokens_refed += refed
        return self._edit_result(start, end, removed, inserted,
                                 rewound_to=base.position, refed=refed,
                                 converged_at=converged_at)

    def _splice(
        self,
        old_snapshots: Sequence[Any],
        old_final: Any,
        old_position: int,
        delta: int,
    ) -> None:
        """Adopt the old parse's suffix from ``old_position`` on, shifted."""
        last = self._trail.positions()[-1] if len(self._trail) else -1
        for snapshot in old_snapshots:
            if snapshot.position < old_position:
                continue
            shifted = self._shift(snapshot, delta)
            if shifted.position > last:
                self._trail.record(shifted)
                last = shifted.position
        self._state = self._resume(self._shift(old_final, delta))

    def _edit_result(
        self,
        start: int,
        end: int,
        removed: int,
        inserted: int,
        rewound_to: int,
        refed: int,
        converged_at: Optional[int],
    ) -> EditResult:
        return EditResult(
            start=start,
            end=end,
            removed=removed,
            inserted=inserted,
            rewound_to=rewound_to,
            refed_tokens=refed,
            converged_at=converged_at,
            length=len(self._tokens),
        )

    # -------------------------------------------------------------- results
    def accepts(self) -> bool:
        """True when the current buffer is a complete parse (definitive)."""
        return self._state.accepts()

    def recognize(self) -> bool:
        """Alias for :meth:`accepts` (the batch-API verb)."""
        return self._state.accepts()

    def forest(self) -> ForestNode:
        """The parse forest of the current buffer.

        Raises :class:`~repro.core.errors.ParseError` with the *exact*
        semantic failure position when the buffer does not parse —
        identical to what a from-scratch batch parse reports.
        """
        if self._compiled:
            return self._parser.parse_forest(list(self._tokens))
        state = self._state
        if state.failed or not self._parser.nullability.nullable(state.language):
            raise self._parser._failure_error(list(self._tokens))
        return self._parser.parse_null(state.language)

    def tree(self) -> Any:
        """One parse tree of the current buffer (raises exactly like batch parse)."""
        if self._compiled:
            return self._parser.parse(list(self._tokens))
        forest = self.forest()
        try:
            return first_tree(forest)
        except ValueError:
            raise ParseError(
                "input recognized but no finite parse tree could be extracted",
                position=len(self._tokens),
                tokens=list(self._tokens),
            ) from None

    def parse_trees(
        self, limit: Optional[int] = None, ranking: Optional[Any] = None
    ) -> List[Any]:
        """Up to ``limit`` trees of the current buffer.

        With ``ranking`` (a ``Ranking`` or registered name like ``"size"``)
        trees come back best-first via the shared forest-query layer —
        bounded memory even when the buffer is astronomically ambiguous.
        """
        if self._compiled:
            return self._parser.parse_trees(
                list(self._tokens), limit=limit, ranking=ranking
            )
        forest = self.forest()
        if ranking is None:
            return list(iter_trees(forest, limit=limit))
        from ..core.forest_query import iter_trees_ranked

        return list(iter_trees_ranked(forest, ranking, limit))

    def sample_parses(self, rng: Any, n: int = 1) -> List[Any]:
        """``n`` uniform samples over the current buffer's parse forest.

        ``rng`` is an explicit ``random.Random`` or ``int`` seed (no global
        RNG); same-seed replays return identical samples.
        """
        if self._compiled:
            return self._parser.sample_parses(list(self._tokens), rng, n=n)
        from ..core.errors import EmptyForestError
        from ..core.forest_query import sample_trees

        forest = self.forest()
        try:
            return sample_trees(forest, rng, n)
        except EmptyForestError:
            raise ParseError(
                "input recognized but no finite parse tree could be extracted",
                position=len(self._tokens),
                tokens=list(self._tokens),
            ) from None

    def diagnose(self) -> Optional[ParseError]:
        """The exact :class:`ParseError` for the current buffer, or None.

        Error-path API: on a failed buffer this re-derives with the
        engine's positional diagnosis (one warm pass), exactly as the
        batch ``parse()`` error path does.
        """
        if self._state.accepts():
            return None
        try:
            self.forest()
        except ParseError as error:
            return error
        return None  # pragma: no cover - accepts() and forest() disagree

    def failure_position(self) -> Optional[int]:
        """The exact failing token index, or None when the buffer parses.

        ``len(self)`` means "unexpected end of input", matching the batch
        engines and Earley.
        """
        error = self.diagnose()
        return None if error is None else error.position

    def __repr__(self) -> str:
        status = "failed@{}".format(self._state.failure_position) if self.failed else "alive"
        return "IncrementalDocument({} engine, {} tokens, {} checkpoints, {})".format(
            self.engine, len(self._tokens), len(self._trail), status
        )
