"""Evaluation grammars: classic, ambiguous/worst-case, JSON and the Python subset."""

from .ambiguous import (
    binary_sum_grammar,
    exponential_grammar,
    worst_case_grammar,
    worst_case_language,
)
from .classic import (
    arithmetic_grammar,
    balanced_parens_grammar,
    json_grammar,
    sexpr_grammar,
)
from .python_subset import PYTHON_GRAMMAR_TEXT, PYTHON_KEYWORDS, python_grammar

__all__ = [
    "arithmetic_grammar",
    "balanced_parens_grammar",
    "sexpr_grammar",
    "json_grammar",
    "exponential_grammar",
    "binary_sum_grammar",
    "worst_case_grammar",
    "worst_case_language",
    "python_grammar",
    "PYTHON_GRAMMAR_TEXT",
    "PYTHON_KEYWORDS",
]
