"""Evaluation grammars: classic, ambiguous/worst-case, JSON, Python subset, PL/0."""

from .ambiguous import (
    binary_sum_grammar,
    exponential_grammar,
    worst_case_grammar,
    worst_case_language,
)
from .classic import (
    arithmetic_grammar,
    balanced_parens_grammar,
    json_grammar,
    sexpr_grammar,
)
from .pl0 import PL0_GRAMMAR_TEXT, PL0_KEYWORDS, pl0_grammar
from .python_subset import PYTHON_GRAMMAR_TEXT, PYTHON_KEYWORDS, python_grammar

__all__ = [
    "arithmetic_grammar",
    "balanced_parens_grammar",
    "sexpr_grammar",
    "json_grammar",
    "exponential_grammar",
    "binary_sum_grammar",
    "worst_case_grammar",
    "worst_case_language",
    "python_grammar",
    "PYTHON_GRAMMAR_TEXT",
    "PYTHON_KEYWORDS",
    "pl0_grammar",
    "PL0_GRAMMAR_TEXT",
    "PL0_KEYWORDS",
]
