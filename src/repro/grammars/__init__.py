"""Evaluation grammars: classic, ambiguous/worst-case, JSON, Python subset, PL/0."""

from .ambiguous import (
    binary_sum_grammar,
    catalan_grammar,
    dangling_else_grammar,
    exponential_grammar,
    worst_case_grammar,
    worst_case_language,
)
from .classic import (
    arithmetic_grammar,
    balanced_parens_grammar,
    json_grammar,
    sexpr_grammar,
)
from .expressions import (
    EXPRESSION_FUNCTIONS,
    EXPRESSION_GRAMMAR_TEXT,
    expression_grammar,
)
from .pl0 import PL0_GRAMMAR_TEXT, PL0_KEYWORDS, pl0_grammar
from .python_subset import PYTHON_GRAMMAR_TEXT, PYTHON_KEYWORDS, python_grammar

__all__ = [
    "arithmetic_grammar",
    "balanced_parens_grammar",
    "sexpr_grammar",
    "json_grammar",
    "expression_grammar",
    "EXPRESSION_GRAMMAR_TEXT",
    "EXPRESSION_FUNCTIONS",
    "exponential_grammar",
    "binary_sum_grammar",
    "catalan_grammar",
    "dangling_else_grammar",
    "worst_case_grammar",
    "worst_case_language",
    "python_grammar",
    "PYTHON_GRAMMAR_TEXT",
    "PYTHON_KEYWORDS",
    "pl0_grammar",
    "PL0_GRAMMAR_TEXT",
    "PL0_KEYWORDS",
]
