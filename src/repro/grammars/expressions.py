"""An arithmetic/function-expression grammar with precedence and nesting.

The shape follows the classic object-oriented expression-parsing exercise
(a `Lexer`/`Parser`/`Expr` triple over polynomial expressions): a full
precedence ladder (additive < multiplicative < power), unary signs bound
tightly at the factor level, integer-exponent powers, nested parenthesised
sub-expressions, and *function calls* with comma-separated argument lists
(``sin(x)``, ``f(x, y^2)``), where function names are their own ``FUNC``
token kind so the grammar stays LR-friendly and unambiguous.

It complements the rest of the zoo: unlike :func:`~repro.grammars.classic.
arithmetic_grammar` it has right-nested unary layers, a power operator and
arbitrary-arity call sites; unlike PL/0 it is pure expression nesting with
no statement scaffolding — so deep, operator-heavy inputs stress the
derivative closure of recursion through *several* mutually nested levels.
"""

from __future__ import annotations

from functools import lru_cache

from ..cfg.bnf import parse_bnf
from ..cfg.grammar import Grammar

__all__ = ["expression_grammar", "EXPRESSION_GRAMMAR_TEXT", "EXPRESSION_FUNCTIONS"]


#: Function names the workload generator draws from (lexed as FUNC tokens).
EXPRESSION_FUNCTIONS = ("sin", "cos", "tan", "f", "g", "h")


EXPRESSION_GRAMMAR_TEXT = """
# Additive < multiplicative < power; unary sign bound at the factor level
# only (a sign anywhere else would make leading `- t` derivable two ways);
# FUNC '(' args ')' call sites with comma-separated argument lists.
expr        : term | expr '+' term | expr '-' term ;
term        : factor | term '*' factor ;
factor      : power | '+' factor | '-' factor ;
power       : atom | atom '^' NUMBER ;
atom        : NUMBER | IDENT | '(' expr ')' | call ;
call        : FUNC '(' arguments ')' ;
arguments   : expr | expr ',' arguments ;
"""


@lru_cache(maxsize=None)
def _cached_expression() -> Grammar:
    return parse_bnf(EXPRESSION_GRAMMAR_TEXT)


def expression_grammar() -> Grammar:
    """The function-expression grammar (cached: callers share one Grammar).

    Sharing matters for the compiled-automaton workloads: the grammar
    object's cached :meth:`~repro.cfg.grammar.Grammar.language` graph is the
    key under which :func:`repro.compile.compile_grammar` interns the shared
    transition table.
    """
    return _cached_expression()
