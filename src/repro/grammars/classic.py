"""Classic small grammars used by the tests, examples and benchmarks."""

from __future__ import annotations

from ..cfg.bnf import parse_bnf
from ..cfg.grammar import Grammar, grammar_from_rules

__all__ = [
    "arithmetic_grammar",
    "balanced_parens_grammar",
    "sexpr_grammar",
    "json_grammar",
]


def arithmetic_grammar() -> Grammar:
    """The classic unambiguous expression grammar over NUMBER tokens.

    ``expr → expr + term | term``, ``term → term * factor | factor``,
    ``factor → ( expr ) | NUMBER`` — left recursive, so it exercises exactly
    the feature that defeats recursive descent and PEGs but that parsing with
    derivatives, Earley and GLR all handle.
    """
    return parse_bnf(
        """
        expr   : expr '+' term | expr '-' term | term ;
        term   : term '*' factor | term '/' factor | factor ;
        factor : '(' expr ')' | NUMBER | NAME ;
        """
    )


def balanced_parens_grammar() -> Grammar:
    """Balanced parentheses: ``S → ( S ) S | ε`` (nullable and recursive)."""
    return grammar_from_rules("S", {"S": [["(", "S", ")", "S"], []]})


def sexpr_grammar() -> Grammar:
    """S-expressions over atoms: ``sexpr → ATOM | ( items )``."""
    return parse_bnf(
        """
        sexpr : ATOM | '(' items ')' ;
        items : %empty | sexpr items ;
        """
    )


def json_grammar() -> Grammar:
    """A JSON grammar over lexer token kinds (STRING, NUMBER, punctuation).

    Token kinds follow json.org: objects, arrays, strings, numbers, the three
    literals.  The grammar is unambiguous and heavily nested — a good
    "realistic data format" workload that is not Python.
    """
    return parse_bnf(
        """
        value    : object | array | STRING | NUMBER | 'true' | 'false' | 'null' ;
        object   : '{' '}' | '{' members '}' ;
        members  : pair | pair ',' members ;
        pair     : STRING ':' value ;
        array    : '[' ']' | '[' elements ']' ;
        elements : value | value ',' elements ;
        """
    )
