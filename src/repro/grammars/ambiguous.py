"""Highly ambiguous and worst-case grammars from the paper's analysis.

These are the grammars the complexity discussion of Section 3 leans on:

* ``S → S S | a | b`` — the grammar the paper uses to justify the
  ambiguity-node assumption (it has exponentially many parses).
* ``E → E + E | n`` — the textbook ambiguous expression grammar (Catalan-many
  parses), convenient because inputs are easy to scale.
* ``L = (L ◦ L) ∪ c`` — Figure 5's worst-case grammar for the node-naming
  argument, provided both as a CFG and as a raw parsing-expression graph with
  an any-token terminal (exactly as drawn in the figure).
"""

from __future__ import annotations

from ..cfg.grammar import Grammar, grammar_from_rules
from ..core.languages import Alt, Cat, Language, Ref, any_token

__all__ = [
    "exponential_grammar",
    "binary_sum_grammar",
    "worst_case_grammar",
    "worst_case_language",
]


def exponential_grammar() -> Grammar:
    """``S → S S | a | b`` — exponentially many parses without sharing."""
    return grammar_from_rules("S", {"S": [["S", "S"], ["a"], ["b"]]})


def binary_sum_grammar() -> Grammar:
    """``E → E + E | n`` — Catalan-number ambiguity, easy to scale by length."""
    return grammar_from_rules("E", {"E": [["E", "+", "E"], ["n"]]})


def worst_case_grammar() -> Grammar:
    """Figure 5's grammar as a CFG over a single terminal ``c``."""
    return grammar_from_rules("L", {"L": [["L", "L"], ["c"]]})


def worst_case_language() -> Language:
    """Figure 5's grammar as a raw parsing-expression graph.

    The terminal accepts *any* token ("in this example, c accepts any token"),
    which is what makes every position of the input a potential split point
    and drives the O(G·n³) node construction the naming argument counts.
    """
    ref = Ref("L")
    ref.set(Alt(Cat(ref, ref), any_token("c")))
    return ref
