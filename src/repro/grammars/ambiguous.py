"""Highly ambiguous and worst-case grammars from the paper's analysis.

These are the grammars the complexity discussion of Section 3 leans on:

* ``S → S S | a | b`` — the grammar the paper uses to justify the
  ambiguity-node assumption (it has exponentially many parses).
* ``E → E + E | n`` — the textbook ambiguous expression grammar (Catalan-many
  parses), convenient because inputs are easy to scale.
* ``L = (L ◦ L) ∪ c`` — Figure 5's worst-case grammar for the node-naming
  argument, provided both as a CFG and as a raw parsing-expression graph with
  an any-token terminal (exactly as drawn in the figure).

The grammar zoo adds two more pathological shapes with *closed-form*
ambiguity, so forest extraction and counting can be gated against known
answers at any depth:

* ``S → S S | a`` (:func:`catalan_grammar`) — on ``a^n`` the forest holds
  exactly Catalan(n−1) trees (every binary bracketing of n leaves).
* dangling else (:func:`dangling_else_grammar`) — the textbook ambiguous
  conditional; on ``(if c then)^d s else s`` the single ``else`` can attach
  to any of the ``d`` ifs, so the forest holds exactly ``d`` trees.
"""

from __future__ import annotations

from ..cfg.grammar import Grammar, grammar_from_rules
from ..core.languages import Alt, Cat, Language, Ref, any_token

__all__ = [
    "exponential_grammar",
    "binary_sum_grammar",
    "catalan_grammar",
    "dangling_else_grammar",
    "worst_case_grammar",
    "worst_case_language",
]


def exponential_grammar() -> Grammar:
    """``S → S S | a | b`` — exponentially many parses without sharing."""
    return grammar_from_rules("S", {"S": [["S", "S"], ["a"], ["b"]]})


def binary_sum_grammar() -> Grammar:
    """``E → E + E | n`` — Catalan-number ambiguity, easy to scale by length."""
    return grammar_from_rules("E", {"E": [["E", "+", "E"], ["n"]]})


def catalan_grammar() -> Grammar:
    """``S → S S | a`` — Catalan(n−1) parses of ``a^n`` (pure bracketing ambiguity).

    The canonical depth-parameterized forest workload: recognition is trivial
    (every non-empty run of ``a`` is accepted) while the forest grows as the
    Catalan numbers, so the grammar isolates forest *extraction and counting*
    cost from recognition cost.  :func:`repro.workloads.catalan_count` is the
    closed-form reference the differential suite pins counts against.
    """
    return grammar_from_rules("S", {"S": [["S", "S"], ["a"]]})


def dangling_else_grammar() -> Grammar:
    """The textbook dangling-else grammar (linearly ambiguous in nesting depth).

    ``stmt → if c then stmt | if c then stmt else stmt | s`` — on the
    depth-``d`` workload ``(if c then)^d s else s`` the one ``else`` may
    attach to any of the ``d`` enclosing ifs, giving exactly ``d`` parses
    (:func:`repro.workloads.dangling_else_count`).  Complements
    :func:`catalan_grammar`: ambiguity that grows linearly, not
    exponentially, so deep inputs stay countable.
    """
    return grammar_from_rules(
        "stmt",
        {
            "stmt": [
                ["if", "c", "then", "stmt"],
                ["if", "c", "then", "stmt", "else", "stmt"],
                ["s"],
            ],
        },
    )


def worst_case_grammar() -> Grammar:
    """Figure 5's grammar as a CFG over a single terminal ``c``."""
    return grammar_from_rules("L", {"L": [["L", "L"], ["c"]]})


def worst_case_language() -> Language:
    """Figure 5's grammar as a raw parsing-expression graph.

    The terminal accepts *any* token ("in this example, c accepts any token"),
    which is what makes every position of the input a potential split point
    and drives the O(G·n³) node construction the naming argument counts.
    """
    ref = Ref("L")
    ref.set(Alt(Cat(ref, ref), any_token("c")))
    return ref
