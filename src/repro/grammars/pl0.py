"""Wirth's PL/0 as an evaluation grammar (after Navas-López, arXiv:2207.08972).

PL/0 is the didactic statically-structured language Wirth designed for
*Algorithms + Data Structures = Programs* and the one the "Modern Compiler
for an Ancient Language" paper (Navas-López 2022) builds its teaching
compiler around: constants, variables, nested procedures, ``begin…end``
blocks, ``if``/``while``, and a tiny expression language.  It complements
the existing evaluation grammars nicely — unlike the Python subset it is
keyword-delimited (no indentation tokens), unlike JSON it has real nesting
of *declarations*, and unlike the ambiguous grammars it is deterministic —
so it exercises the compiled automaton on the "conventional programming
language" shape.

The EBNF of the report (repetition ``{…}`` and option ``[…]``) is flattened
to the plain BNF dialect of :mod:`repro.cfg.bnf`, introducing one helper
non-terminal per repetition/option, exactly the way the paper's 722-rule
Python grammar flattens the CPython EBNF.  Terminals are token *kinds*:
``IDENT`` and ``NUMBER`` carry values; keywords and punctuation are their
own kinds (the shape produced by :func:`repro.workloads.pl0_tokens`).
"""

from __future__ import annotations

from functools import lru_cache

from ..cfg.bnf import parse_bnf
from ..cfg.grammar import Grammar

__all__ = ["pl0_grammar", "PL0_GRAMMAR_TEXT", "PL0_KEYWORDS"]


#: Keywords lexed as their own token kinds.
PL0_KEYWORDS = (
    "const",
    "var",
    "procedure",
    "call",
    "begin",
    "end",
    "if",
    "then",
    "while",
    "do",
    "odd",
)


PL0_GRAMMAR_TEXT = """
# Wirth's PL/0, flattened from the EBNF in Navas-López (2022), Fig. 1.
program     : block '.' ;

block       : const_part var_part proc_part statement ;
const_part  : %empty | 'const' const_list ';' ;
const_list  : const_item | const_item ',' const_list ;
const_item  : IDENT '=' NUMBER ;
var_part    : %empty | 'var' ident_list ';' ;
ident_list  : IDENT | IDENT ',' ident_list ;
proc_part   : %empty | proc_decl proc_part ;
proc_decl   : 'procedure' IDENT ';' block ';' ;

statement   : %empty
            | IDENT ':=' expression
            | 'call' IDENT
            | 'begin' stmt_list 'end'
            | 'if' condition 'then' statement
            | 'while' condition 'do' statement ;
stmt_list   : statement | statement ';' stmt_list ;

condition   : 'odd' expression | expression rel_op expression ;
rel_op      : '=' | '#' | '<' | '<=' | '>' | '>=' ;

expression  : signed_term | expression '+' term | expression '-' term ;
signed_term : term | '+' term | '-' term ;
term        : factor | term '*' factor | term '/' factor ;
factor      : IDENT | NUMBER | '(' expression ')' ;
"""


@lru_cache(maxsize=None)
def _cached_pl0() -> Grammar:
    return parse_bnf(PL0_GRAMMAR_TEXT)


def pl0_grammar() -> Grammar:
    """The PL/0 grammar (cached: every caller shares one Grammar object).

    Sharing matters for the compiled-automaton workloads: the grammar
    object's cached :meth:`~repro.cfg.grammar.Grammar.language` graph is the
    key under which :func:`repro.compile.compile_grammar` interns the
    shared transition table.
    """
    return _cached_pl0()
