"""A substantial Python-subset grammar over the standard token vocabulary.

The paper's evaluation parses the Python Standard Library with a grammar
derived from the Python 3.4.3 reference grammar, flattened to 722 traditional
CFG productions (Section 4.1).  This module provides the reproduction's
equivalent: a Python-subset grammar written as traditional CFG productions
over the token kinds produced by :mod:`repro.lexer.python_tokens` (and by the
synthetic program generator in :mod:`repro.workloads`).

The subset covers the constructs that dominate real Python code and that the
paper's workload exercises: modules of statements, function and class
definitions, ``if``/``elif``/``else``, ``while``/``for`` loops, ``return`` /
``pass`` / ``break`` / ``continue`` / ``assert`` / ``import`` statements,
assignments and augmented assignments, the boolean/comparison/arithmetic
expression ladder, calls, attribute access, subscripts, and the common
literal forms (names, numbers, strings, tuples, lists, dictionaries).  Blocks
use ``NEWLINE`` / ``INDENT`` / ``DEDENT`` tokens exactly like CPython's
tokenizer, so the grammar is driven by the same token stream shape as the
real Python grammar.

The grammar is deliberately written in the flat ``lhs : alternatives`` style
the paper uses for its Earley/Bison comparison, so the very same object
drives the derivative parser, the original 2011 parser, the Earley parser and
the GLR parser.
"""

from __future__ import annotations

from functools import lru_cache

from ..cfg.bnf import parse_bnf
from ..cfg.grammar import Grammar

__all__ = ["python_grammar", "PYTHON_GRAMMAR_TEXT", "PYTHON_KEYWORDS"]


#: Keywords that appear as their own token kinds in the grammar.
PYTHON_KEYWORDS = (
    "def",
    "class",
    "return",
    "pass",
    "break",
    "continue",
    "if",
    "elif",
    "else",
    "while",
    "for",
    "in",
    "is",
    "not",
    "and",
    "or",
    "import",
    "from",
    "assert",
    "lambda",
    "True",
    "False",
    "None",
    "global",
    "del",
    "raise",
    "with",
    "as",
)


PYTHON_GRAMMAR_TEXT = """
file_input     : stmts ;
stmts          : stmt | stmt stmts ;

stmt           : simple_stmt | compound_stmt ;
simple_stmt    : small_stmts 'NEWLINE' ;
small_stmts    : small_stmt | small_stmt ';' small_stmts ;
small_stmt     : expr_stmt | return_stmt | pass_stmt | flow_stmt | import_stmt
               | assert_stmt | global_stmt | del_stmt | raise_stmt ;

expr_stmt      : testlist
               | testlist '=' expr_stmt
               | testlist augassign testlist ;
augassign      : '+=' | '-=' | '*=' | '/=' | '//=' | '%=' | '**=' ;

return_stmt    : 'return' | 'return' testlist ;
pass_stmt      : 'pass' ;
flow_stmt      : 'break' | 'continue' ;
global_stmt    : 'global' name_list ;
del_stmt       : 'del' testlist ;
raise_stmt     : 'raise' | 'raise' test | 'raise' test 'from' test ;
name_list      : 'NAME' | 'NAME' ',' name_list ;

import_stmt    : 'import' dotted_as_names | 'from' dotted_name 'import' import_targets ;
import_targets : '*' | import_as_names | '(' import_as_names ')' ;
import_as_names: import_as_name | import_as_name ',' import_as_names ;
import_as_name : 'NAME' | 'NAME' 'as' 'NAME' ;
dotted_as_names: dotted_as_name | dotted_as_name ',' dotted_as_names ;
dotted_as_name : dotted_name | dotted_name 'as' 'NAME' ;
dotted_name    : 'NAME' | 'NAME' '.' dotted_name ;

assert_stmt    : 'assert' test | 'assert' test ',' test ;

compound_stmt  : if_stmt | while_stmt | for_stmt | funcdef | classdef | with_stmt ;

if_stmt        : 'if' test ':' suite elif_clauses
               | 'if' test ':' suite elif_clauses 'else' ':' suite ;
elif_clauses   : %empty | 'elif' test ':' suite elif_clauses ;
while_stmt     : 'while' test ':' suite | 'while' test ':' suite 'else' ':' suite ;
for_stmt       : 'for' targetlist 'in' testlist ':' suite
               | 'for' targetlist 'in' testlist ':' suite 'else' ':' suite ;
with_stmt      : 'with' with_items ':' suite ;
with_items     : with_item | with_item ',' with_items ;
with_item      : test | test 'as' target ;

funcdef        : 'def' 'NAME' '(' params ')' ':' suite
               | 'def' 'NAME' '(' params ')' '->' test ':' suite ;
params         : %empty | param_list ;
param_list     : param | param ',' param_list ;
param          : 'NAME' | 'NAME' '=' test | '*' 'NAME' | '**' 'NAME' | 'NAME' ':' test ;

classdef       : 'class' 'NAME' ':' suite
               | 'class' 'NAME' '(' ')' ':' suite
               | 'class' 'NAME' '(' arglist ')' ':' suite ;

suite          : 'NEWLINE' 'INDENT' stmts 'DEDENT' ;

testlist       : test | test ',' testlist ;
targetlist     : target | target ',' targetlist ;
target         : 'NAME' | target '.' 'NAME' | target '[' test ']'
               | '(' targetlist ')' ;

test           : or_test | or_test 'if' or_test 'else' test | lambdef ;
lambdef        : 'lambda' params ':' test ;
or_test        : and_test | or_test 'or' and_test ;
and_test       : not_test | and_test 'and' not_test ;
not_test       : comparison | 'not' not_test ;
comparison     : arith_expr | comparison comp_op arith_expr ;
comp_op        : '<' | '>' | '==' | '!=' | '<=' | '>=' | 'in' | 'not' 'in'
               | 'is' | 'is' 'not' ;
arith_expr     : term | arith_expr '+' term | arith_expr '-' term ;
term           : factor | term '*' factor | term '/' factor | term '%' factor
               | term '//' factor ;
factor         : power | '+' factor | '-' factor ;
power          : atom_expr | atom_expr '**' factor ;
atom_expr      : atom | atom_expr trailer ;
trailer        : '(' ')' | '(' arglist ')' | '[' test ']' | '.' 'NAME' ;
arglist        : argument | argument ',' arglist ;
argument       : test | 'NAME' '=' test | '*' test | '**' test ;

atom           : 'NAME' | 'NUMBER' | strings | 'True' | 'False' | 'None'
               | '(' ')' | '(' testlist ')'
               | '[' ']' | '[' testlist ']'
               | '{' '}' | '{' dict_items '}' ;
strings        : 'STRING' | 'STRING' strings ;
dict_items     : dict_item | dict_item ',' dict_items ;
dict_item      : test ':' test ;
"""


@lru_cache(maxsize=1)
def python_grammar() -> Grammar:
    """The Python-subset grammar as a :class:`~repro.cfg.grammar.Grammar`.

    The result is cached: grammar construction is cheap but the benchmarks
    construct many parsers over the same grammar object.
    """
    grammar = parse_bnf(PYTHON_GRAMMAR_TEXT, start="file_input")
    grammar.validate()
    return grammar
