"""An Earley parser — the stand-in for Racket's ``parser-tools/cfg-parser``.

The paper's second baseline is the ``parser-tools/cfg-parser`` library, which
its documentation describes as a variant of the Earley algorithm
(Section 4.1).  This module implements the textbook Earley parser (Earley
1968/1970) over the :class:`repro.cfg.grammar.Grammar` representation:

* a chart with one item set per input position,
* the *predictor*, *scanner* and *completer* rules,
* the Aycock–Horspool refinement for nullable non-terminals (the predictor
  immediately completes a predicted non-terminal that can derive ε), and
* memoized parse-tree extraction from the completed chart.

Like the other parsers in this reproduction it works on token *kinds*
(see :func:`repro.core.languages.token_kind`), so the same token streams feed
the derivative, Earley and GLR parsers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.errors import ParseError
from ..core.languages import token_kind, token_value
from ..cfg.analyses import nullable_nonterminals
from ..cfg.grammar import Grammar, Nonterminal, Production

__all__ = ["EarleyParser", "EarleyItem"]


@dataclass(frozen=True)
class EarleyItem:
    """A dotted production with an origin position: ``A → α • β  [origin]``."""

    production: Production
    dot: int
    origin: int

    @property
    def next_symbol(self) -> Optional[Any]:
        """The symbol right after the dot, or None when the item is complete."""
        if self.dot < len(self.production.rhs):
            return self.production.rhs[self.dot]
        return None

    @property
    def is_complete(self) -> bool:
        return self.dot >= len(self.production.rhs)

    def advanced(self) -> "EarleyItem":
        """The item with the dot moved one symbol to the right."""
        return EarleyItem(self.production, self.dot + 1, self.origin)

    def __str__(self) -> str:
        before = " ".join(str(sym) for sym in self.production.rhs[: self.dot])
        after = " ".join(str(sym) for sym in self.production.rhs[self.dot :])
        return "{} → {} • {} [{}]".format(self.production.lhs, before, after, self.origin)


class EarleyParser:
    """Chart-based Earley recognizer and parser for arbitrary CFGs."""

    def __init__(self, grammar: Grammar) -> None:
        grammar.validate()
        self.grammar = grammar
        self.nullable = nullable_nonterminals(grammar)

    # ------------------------------------------------------------------ API
    def recognize(self, tokens: Sequence[Any]) -> bool:
        """True when the token sequence is in the grammar's language."""
        chart = self._build_chart(tokens)
        return self._accepting_item(chart, len(tokens)) is not None

    def parse(self, tokens: Sequence[Any]) -> Any:
        """Return one parse tree of the input in ``(lhs, children)`` form."""
        chart = self._build_chart(tokens)
        if self._accepting_item(chart, len(tokens)) is None:
            raise ParseError(
                "Earley parse failed",
                position=self._failure_position(chart, tokens),
                tokens=tokens,
            )
        completed = self._completed_index(chart)
        memo: Dict[Tuple[str, int, int], Optional[Any]] = {}
        tree = self._derive_tree(self.grammar.start, 0, len(tokens), tokens, completed, memo)
        if tree is None:  # pragma: no cover - recognition succeeded, so a tree exists
            raise ParseError("Earley tree extraction failed", position=len(tokens))
        return tree

    def chart_sizes(self, tokens: Sequence[Any]) -> List[int]:
        """Number of items per chart position (used by tests and diagnostics)."""
        return [len(items) for items in self._build_chart(tokens)]

    # ------------------------------------------------------------ chart core
    def _build_chart(self, tokens: Sequence[Any]) -> List[Set[EarleyItem]]:
        length = len(tokens)
        chart: List[Set[EarleyItem]] = [set() for _ in range(length + 1)]
        order: List[List[EarleyItem]] = [[] for _ in range(length + 1)]

        def add(position: int, item: EarleyItem) -> None:
            if item not in chart[position]:
                chart[position].add(item)
                order[position].append(item)

        for production in self.grammar.productions_for(self.grammar.start):
            add(0, EarleyItem(production, 0, 0))

        for position in range(length + 1):
            index = 0
            items = order[position]
            while index < len(items):
                item = items[index]
                index += 1
                symbol = item.next_symbol
                if symbol is None:
                    # Completer: finish every item waiting on this non-terminal.
                    for waiting in list(order[item.origin]):
                        next_symbol = waiting.next_symbol
                        if (
                            isinstance(next_symbol, Nonterminal)
                            and next_symbol.name == item.production.lhs
                        ):
                            add(position, waiting.advanced())
                elif isinstance(symbol, Nonterminal):
                    # Predictor.
                    for production in self.grammar.productions_for(symbol.name):
                        add(position, EarleyItem(production, 0, position))
                    if symbol.name in self.nullable:
                        # Aycock–Horspool: a nullable prediction completes here.
                        add(position, item.advanced())
                else:
                    # Scanner.
                    if position < length and token_kind(tokens[position]) == symbol:
                        add(position + 1, item.advanced())
        return chart

    def _accepting_item(
        self, chart: List[Set[EarleyItem]], length: int
    ) -> Optional[EarleyItem]:
        for item in chart[length]:
            if (
                item.is_complete
                and item.origin == 0
                and item.production.lhs == self.grammar.start
            ):
                return item
        return None

    @staticmethod
    def _failure_position(chart: List[Set[EarleyItem]], tokens: Sequence[Any]) -> int:
        for position in range(len(chart)):
            if not chart[position]:
                return max(position - 1, 0)
        return len(tokens)

    # -------------------------------------------------------- tree extraction
    def _completed_index(
        self, chart: List[Set[EarleyItem]]
    ) -> Dict[Tuple[str, int], List[Tuple[Production, int]]]:
        """Index completed items as (lhs, origin) → [(production, end), ...]."""
        completed: Dict[Tuple[str, int], List[Tuple[Production, int]]] = {}
        for end, items in enumerate(chart):
            for item in items:
                if item.is_complete:
                    completed.setdefault((item.production.lhs, item.origin), []).append(
                        (item.production, end)
                    )
        return completed

    def _derive_tree(
        self,
        lhs: str,
        start: int,
        end: int,
        tokens: Sequence[Any],
        completed: Dict[Tuple[str, int], List[Tuple[Production, int]]],
        memo: Dict[Tuple[str, int, int], Optional[Any]],
    ) -> Optional[Any]:
        """Find one derivation of ``lhs`` spanning ``tokens[start:end]``."""
        key = (lhs, start, end)
        if key in memo:
            return memo[key]
        memo[key] = None  # guards against ε-cycles while searching
        for production, completed_end in completed.get((lhs, start), ()):
            if completed_end != end:
                continue
            children = self._match_symbols(
                production.rhs, 0, start, end, tokens, completed, memo
            )
            if children is not None:
                tree = (lhs, tuple(children))
                memo[key] = tree
                return tree
        return memo[key]

    def _match_symbols(
        self,
        symbols: Tuple[Any, ...],
        index: int,
        start: int,
        end: int,
        tokens: Sequence[Any],
        completed: Dict[Tuple[str, int], List[Tuple[Production, int]]],
        memo: Dict[Tuple[str, int, int], Optional[Any]],
    ) -> Optional[List[Any]]:
        """Split ``tokens[start:end]`` across ``symbols[index:]`` (backtracking)."""
        if index == len(symbols):
            return [] if start == end else None
        symbol = symbols[index]
        if not isinstance(symbol, Nonterminal):
            if start < end and token_kind(tokens[start]) == symbol:
                rest = self._match_symbols(
                    symbols, index + 1, start + 1, end, tokens, completed, memo
                )
                if rest is not None:
                    return [token_value(tokens[start])] + rest
            return None
        # Try every completed span of this non-terminal beginning at `start`.
        for production, mid in completed.get((symbol.name, start), ()):
            if mid > end:
                continue
            subtree = self._derive_tree(
                symbol.name, start, mid, tokens, completed, memo
            )
            if subtree is None:
                continue
            rest = self._match_symbols(symbols, index + 1, mid, end, tokens, completed, memo)
            if rest is not None:
                return [subtree] + rest
        return None
