"""Earley parser baseline (stand-in for Racket's parser-tools/cfg-parser)."""

from .parser import EarleyItem, EarleyParser

__all__ = ["EarleyParser", "EarleyItem"]
