"""Complexity-analysis helpers (growth exponents, cubic-bound audits)."""

from .complexity import (
    GrowthSummary,
    growth_exponent,
    summarize_series,
    within_cubic_bound,
)

__all__ = [
    "growth_exponent",
    "within_cubic_bound",
    "GrowthSummary",
    "summarize_series",
]
