"""Empirical complexity analysis: growth exponents and bound checks.

Section 3 of the paper proves the number of grammar nodes constructed during
parsing — and therefore the total running time — is O(G·n³), while Section 4.1
observes that behaviour on real inputs is close to linear.  These helpers turn
measured series (input size → node count or time) into the quantities those
claims are about:

* :func:`growth_exponent` fits ``value ≈ c · n^k`` by least squares on the
  log-log series and returns ``k``,
* :func:`within_cubic_bound` checks a node-count series against the explicit
  ``G·(n+1)²·(n+2)`` bound used by the Theorem 8 audit,
* :func:`summarize_series` packages both for reporting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["growth_exponent", "within_cubic_bound", "GrowthSummary", "summarize_series"]


def growth_exponent(sizes: Sequence[float], values: Sequence[float]) -> float:
    """Least-squares slope of ``log(value)`` against ``log(size)``.

    An exponent near 1 indicates linear growth, near 3 cubic growth.  Points
    with non-positive coordinates are skipped (they carry no information about
    polynomial growth).
    """
    points: List[Tuple[float, float]] = [
        (math.log(size), math.log(value))
        for size, value in zip(sizes, values)
        if size > 0 and value > 0
    ]
    if len(points) < 2:
        raise ValueError("need at least two positive points to fit a growth exponent")
    mean_x = sum(x for x, _ in points) / len(points)
    mean_y = sum(y for _, y in points) / len(points)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in points)
    denominator = sum((x - mean_x) ** 2 for x, y in points)
    if denominator == 0:
        raise ValueError("all sizes are equal; growth exponent is undefined")
    return numerator / denominator


def within_cubic_bound(
    grammar_size: int,
    sizes: Sequence[int],
    node_counts: Sequence[int],
    slack: float = 1.0,
) -> bool:
    """True when every measured node count respects ``slack · G·(n+1)²·(n+2)``.

    Theorem 8 bounds the number of *distinct node names* — equivalently, the
    number of distinct memoized derivative results.  An implementation's raw
    node-construction counter additionally includes a bounded number of
    bookkeeping nodes per derivative (discarded placeholders, the ``δ``
    null-parse factor and its concatenation), so callers comparing that
    counter against the bound should pass a small constant ``slack`` factor;
    the audit of the bound proper (distinct names) lives in
    :class:`repro.core.naming.NamingScheme`.
    """
    for size, count in zip(sizes, node_counts):
        bound = slack * grammar_size * (size + 1) * (size + 1) * (size + 2)
        if count > bound:
            return False
    return True


@dataclass
class GrowthSummary:
    """A fitted growth exponent plus the data it was fitted from."""

    sizes: Tuple[int, ...]
    values: Tuple[float, ...]
    exponent: float

    @property
    def looks_linear(self) -> bool:
        """Exponent ≤ 1.35 — the paper's "linear in practice" observation."""
        return self.exponent <= 1.35

    @property
    def looks_subcubic(self) -> bool:
        """Exponent ≤ 3.2 (small slack over the proven cubic bound)."""
        return self.exponent <= 3.2

    def __str__(self) -> str:
        pairs = ", ".join(
            "{}→{:.0f}".format(size, value) for size, value in zip(self.sizes, self.values)
        )
        return "growth exponent {:.2f} over [{}]".format(self.exponent, pairs)


def summarize_series(sizes: Sequence[int], values: Sequence[float]) -> GrowthSummary:
    """Fit and package a growth exponent for a measured series."""
    return GrowthSummary(tuple(sizes), tuple(values), growth_exponent(sizes, values))
