"""Shared parse forests with explicit ambiguity nodes.

Section 3 of the paper notes that its cubic bound — like the cubic bounds of
GLR and Earley — assumes parse results are represented as a *graph* with
ambiguity nodes rather than as an explicitly enumerated set of trees (the
grammar ``S → S S | a | b`` has exponentially many distinct parses, but they
share structure).  This module provides that representation:

* :class:`ForestEmpty` — no parses,
* :class:`ForestLeaf` — one or more finished trees,
* :class:`ForestPair` — the cross product of two forests (from ``◦`` nodes),
* :class:`ForestMap` — a reduction function applied to every tree,
* :class:`ForestAmb` — an ambiguity node (union of alternatives),
* :class:`ForestRef` — an indirection used to tie cyclic forests together.

Forests are produced by ``parse_null`` (:mod:`repro.core.parse`) and consumed
through :func:`iter_trees`, :func:`count_trees` and :func:`first_tree`.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, List, Optional

__all__ = [
    "ForestNode",
    "ForestEmpty",
    "ForestLeaf",
    "ForestPair",
    "ForestMap",
    "ForestAmb",
    "ForestRef",
    "FOREST_EMPTY",
    "iter_trees",
    "count_trees",
    "first_tree",
    "is_empty_forest",
]


class ForestNode:
    """Base class for parse-forest nodes."""

    __slots__ = ()


class ForestEmpty(ForestNode):
    """A forest containing no parse trees."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "ForestEmpty()"


#: Canonical empty forest.
FOREST_EMPTY = ForestEmpty()


class ForestLeaf(ForestNode):
    """A forest of fully-built trees (typically exactly one)."""

    __slots__ = ("trees",)

    def __init__(self, trees: tuple) -> None:
        self.trees = tuple(trees)

    def __repr__(self) -> str:
        return "ForestLeaf({!r})".format(self.trees)


class ForestPair(ForestNode):
    """Every tree ``(l, r)`` with ``l`` from ``left`` and ``r`` from ``right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: ForestNode, right: ForestNode) -> None:
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return "ForestPair({!r}, {!r})".format(self.left, self.right)


class ForestMap(ForestNode):
    """A reduction function applied to every tree of the child forest."""

    __slots__ = ("fn", "child")

    def __init__(self, fn, child: ForestNode) -> None:
        self.fn = fn
        self.child = child

    def __repr__(self) -> str:
        return "ForestMap({!r})".format(self.child)


class ForestAmb(ForestNode):
    """An ambiguity node: the union of several alternative forests."""

    __slots__ = ("alternatives",)

    def __init__(self, alternatives: Optional[List[ForestNode]] = None) -> None:
        self.alternatives = list(alternatives) if alternatives is not None else []

    def __repr__(self) -> str:
        return "ForestAmb(<{} alternatives>)".format(len(self.alternatives))


class ForestRef(ForestNode):
    """A forward reference, used while building forests over cyclic grammars."""

    __slots__ = ("target",)

    def __init__(self, target: Optional[ForestNode] = None) -> None:
        self.target = target

    def __repr__(self) -> str:
        return "ForestRef(resolved={})".format(self.target is not None)


def is_empty_forest(forest: ForestNode) -> bool:
    """True when the forest (shallowly) contains no parse trees.

    A :class:`ForestRef` or :class:`ForestAmb` with no resolved alternatives is
    treated as empty; deeper emptiness (e.g. a pair with an empty side) is
    discovered during enumeration.
    """
    if isinstance(forest, ForestEmpty):
        return True
    if isinstance(forest, ForestLeaf):
        return len(forest.trees) == 0
    if isinstance(forest, ForestAmb):
        return len(forest.alternatives) == 0
    if isinstance(forest, ForestRef):
        return forest.target is None or is_empty_forest(forest.target)
    return False


def iter_trees(
    forest: ForestNode,
    limit: Optional[int] = None,
    max_depth: int = 10_000,
) -> Iterator[Any]:
    """Enumerate concrete parse trees from a forest.

    ``limit`` bounds the number of trees yielded (ambiguous grammars can have
    exponentially or infinitely many), and ``max_depth`` bounds recursion
    through cyclic forests: alternatives that would require revisiting a node
    already on the current path are skipped, which yields exactly the finite
    trees of the forest.
    """
    emitted = 0
    for tree in _iter_trees(forest, set(), max_depth):
        yield tree
        emitted += 1
        if limit is not None and emitted >= limit:
            return


def _iter_trees(forest: ForestNode, on_path: set, depth: int) -> Iterator[Any]:
    if depth <= 0 or id(forest) in on_path:
        return
    if isinstance(forest, ForestEmpty):
        return
    if isinstance(forest, ForestLeaf):
        yield from forest.trees
        return
    on_path = on_path | {id(forest)}
    if isinstance(forest, ForestRef):
        if forest.target is not None:
            yield from _iter_trees(forest.target, on_path, depth - 1)
        return
    if isinstance(forest, ForestAmb):
        seen = []
        for alternative in forest.alternatives:
            for tree in _iter_trees(alternative, on_path, depth - 1):
                if not any(tree == prior for prior in seen):
                    seen.append(tree)
                    yield tree
        return
    if isinstance(forest, ForestMap):
        for tree in _iter_trees(forest.child, on_path, depth - 1):
            yield forest.fn(tree)
        return
    if isinstance(forest, ForestPair):
        # Materialize the right side lazily per left tree; both sides may be
        # large, so trees stream out in a nested-loop order.
        for left_tree in _iter_trees(forest.left, on_path, depth - 1):
            for right_tree in _iter_trees(forest.right, on_path, depth - 1):
                yield (left_tree, right_tree)
        return
    raise TypeError("unknown forest node: {!r}".format(forest))


def first_tree(forest: ForestNode, max_depth: int = 10_000) -> Any:
    """Return one parse tree from the forest, or raise ``ValueError`` if empty."""
    for tree in iter_trees(forest, limit=1, max_depth=max_depth):
        return tree
    raise ValueError("the parse forest contains no trees")


def count_trees(forest: ForestNode) -> float:
    """Count the trees in a forest; cyclic forests count as ``math.inf``.

    The count treats shared sub-forests correctly (each distinct combination
    is counted once per context, which is the number of distinct parse trees).
    """
    cache: dict[int, float] = {}
    on_path: set[int] = set()

    def visit(node: ForestNode) -> float:
        key = id(node)
        if key in cache:
            return cache[key]
        if key in on_path:
            return math.inf
        on_path.add(key)
        try:
            if isinstance(node, ForestEmpty):
                result: float = 0
            elif isinstance(node, ForestLeaf):
                result = len(node.trees)
            elif isinstance(node, ForestRef):
                result = visit(node.target) if node.target is not None else 0
            elif isinstance(node, ForestMap):
                result = visit(node.child)
            elif isinstance(node, ForestAmb):
                result = sum(visit(alt) for alt in node.alternatives)
            elif isinstance(node, ForestPair):
                left_count = visit(node.left)
                if left_count == 0:
                    result = 0
                else:
                    right_count = visit(node.right)
                    # Guard the inf * 0 = nan corner explicitly.
                    result = 0 if right_count == 0 else left_count * right_count
            else:
                raise TypeError("unknown forest node: {!r}".format(node))
        finally:
            on_path.discard(key)
        # Only cache values computed without hitting the current path; a value
        # involving a back edge is context-dependent, so it is not cached.
        if result != math.inf:
            cache[key] = result
        return result

    return visit(forest)
