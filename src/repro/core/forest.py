"""Shared parse forests with explicit ambiguity nodes.

Section 3 of the paper notes that its cubic bound — like the cubic bounds of
GLR and Earley — assumes parse results are represented as a *graph* with
ambiguity nodes rather than as an explicitly enumerated set of trees (the
grammar ``S → S S | a | b`` has exponentially many distinct parses, but they
share structure).  This module provides that representation:

* :class:`ForestEmpty` — no parses,
* :class:`ForestLeaf` — one or more finished trees,
* :class:`ForestPair` — the cross product of two forests (from ``◦`` nodes),
* :class:`ForestMap` — a reduction function applied to every tree,
* :class:`ForestAmb` — an ambiguity node (union of alternatives),
* :class:`ForestRef` — an indirection used to tie cyclic forests together.

Forests are produced by ``parse_null`` (:mod:`repro.core.parse`) and consumed
through :func:`iter_trees`, :func:`count_trees` and :func:`first_tree`.

Tree extraction is **iterative**: forests produced by long inputs are as deep
as the input (a 100 000-token parse yields a forest nested 100 000 levels
deep), so enumeration runs on an explicit stack of resumable frames instead
of the interpreter call stack.  Cycles are cut by tracking the identity of
every forest node on the current enumeration path, which also guarantees
termination without any depth cap.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Union

from .errors import EmptyForestError

__all__ = [
    "ForestNode",
    "ForestEmpty",
    "ForestLeaf",
    "ForestPair",
    "ForestMap",
    "ForestAmb",
    "ForestRef",
    "FOREST_EMPTY",
    "iter_trees",
    "count_trees",
    "first_tree",
    "is_empty_forest",
    "trees_equal",
    "tree_fingerprint",
]


def trees_equal(a: Any, b: Any) -> bool:
    """Structural equality of parse trees, safe for arbitrarily deep nesting.

    Parse trees from long inputs are tuples nested as deep as the input, and
    comparing those with ``==`` recurses in C — a ``RecursionError`` the
    iterative engine must not reintroduce through its deduplication checks.
    Tuple spines are therefore compared with an explicit stack; non-tuple
    leaves fall back to ``==``, with a recursion blow-up in an exotic
    user-defined tree type conservatively treated as "not equal" (at worst a
    duplicate tree is reported twice).
    """
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x is y:
            continue
        if isinstance(x, tuple) and isinstance(y, tuple):
            if len(x) != len(y):
                return False
            stack.extend(zip(x, y))
            continue
        try:
            if x != y:
                return False
        except RecursionError:
            return False
    return True


def tree_fingerprint(tree: Any) -> Optional[int]:
    """Structural hash of a parse tree, iterative and recursion-safe.

    Used to bucket trees for near-constant-time deduplication: equal trees
    always fingerprint equally, and collisions are resolved by
    :func:`trees_equal` within a bucket, so deduplication stays exact.
    Tuple spines are hashed on an explicit stack (trees nest as deep as the
    input); shared sub-tuples are memoized by identity so DAG-shaped trees
    do not blow up.  Returns ``None`` when a leaf is unhashable — callers
    fall back to pairwise comparison for that bucket.
    """
    memo: Dict[int, int] = {}
    values: List[int] = []
    stack: List[Any] = [(0, tree)]
    while stack:
        phase, node = stack.pop()
        if phase == 0:
            if type(node) is tuple:
                key = id(node)
                cached = memo.get(key)
                if cached is not None:
                    values.append(cached)
                    continue
                stack.append((1, node))
                for child in reversed(node):
                    stack.append((0, child))
            else:
                try:
                    values.append(hash((0, node)))
                except (TypeError, RecursionError):
                    return None
        else:
            width = len(node)
            children = tuple(values[len(values) - width :])
            del values[len(values) - width :]
            fingerprint = hash((1, width, children))
            memo[id(node)] = fingerprint
            values.append(fingerprint)
    return values[0]


class ForestNode:
    """Base class for parse-forest nodes."""

    __slots__ = ()


class ForestEmpty(ForestNode):
    """A forest containing no parse trees."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "ForestEmpty()"


#: Canonical empty forest.
FOREST_EMPTY = ForestEmpty()


class ForestLeaf(ForestNode):
    """A forest of fully-built trees (typically exactly one)."""

    __slots__ = ("trees",)

    def __init__(self, trees: tuple) -> None:
        self.trees = tuple(trees)

    def __repr__(self) -> str:
        return "ForestLeaf({!r})".format(self.trees)


class ForestPair(ForestNode):
    """Every tree ``(l, r)`` with ``l`` from ``left`` and ``r`` from ``right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: ForestNode, right: ForestNode) -> None:
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return "ForestPair({!r}, {!r})".format(self.left, self.right)


class ForestMap(ForestNode):
    """A reduction function applied to every tree of the child forest."""

    __slots__ = ("fn", "child")

    def __init__(self, fn, child: ForestNode) -> None:
        self.fn = fn
        self.child = child

    def __repr__(self) -> str:
        return "ForestMap({!r})".format(self.child)


class ForestAmb(ForestNode):
    """An ambiguity node: the union of several alternative forests."""

    __slots__ = ("alternatives",)

    def __init__(self, alternatives: Optional[List[ForestNode]] = None) -> None:
        self.alternatives = list(alternatives) if alternatives is not None else []

    def __repr__(self) -> str:
        return "ForestAmb(<{} alternatives>)".format(len(self.alternatives))


class ForestRef(ForestNode):
    """A forward reference, used while building forests over cyclic grammars."""

    __slots__ = ("target",)

    def __init__(self, target: Optional[ForestNode] = None) -> None:
        self.target = target

    def __repr__(self) -> str:
        return "ForestRef(resolved={})".format(self.target is not None)


def is_empty_forest(forest: ForestNode) -> bool:
    """True when the forest (shallowly) contains no parse trees.

    A :class:`ForestRef` or :class:`ForestAmb` with no resolved alternatives is
    treated as empty; deeper emptiness (e.g. a pair with an empty side) is
    discovered during enumeration.  Chains of references are followed
    iteratively (``parse_null`` can produce reference chains as long as the
    input).
    """
    seen: set = set()
    while isinstance(forest, ForestRef):
        if forest.target is None or id(forest) in seen:
            return True
        seen.add(id(forest))
        forest = forest.target
    if isinstance(forest, ForestEmpty):
        return True
    if isinstance(forest, ForestLeaf):
        return len(forest.trees) == 0
    if isinstance(forest, ForestAmb):
        return len(forest.alternatives) == 0
    return False


# --------------------------------------------------------------------------
# Iterative tree enumeration.
#
# Each forest node on the current enumeration path is represented by a
# resumable frame.  A driver loop moves a cursor up and down the chain of
# frames: a frame may PUSH a new child enumeration, PULL the next tree from a
# suspended child, EMIT a tree to its parent (or to the consumer) or report
# DONE.  The set of forest-node ids on the *active* chain is maintained
# incrementally and consulted before each PUSH, so cyclic forests terminate
# by skipping alternatives that would revisit a node already being expanded —
# exactly the finite trees of the forest.
# --------------------------------------------------------------------------

_START, _MORE, _TREE, _CHILD_DONE = range(4)
_PUSH, _PULL, _EMIT, _DONE = range(4)


class _Frame:
    """A resumable enumeration state for one forest node."""

    __slots__ = ("forest", "parent")

    def __init__(self, forest: ForestNode, parent: Optional["_Frame"]) -> None:
        self.forest = forest
        self.parent = parent


class _EmptyFrame(_Frame):
    __slots__ = ()

    def resume(self, msg: int, arg: Any):
        return _DONE, None


class _LeafFrame(_Frame):
    __slots__ = ("index",)

    def __init__(self, forest: ForestLeaf, parent: Optional[_Frame]) -> None:
        super().__init__(forest, parent)
        self.index = 0

    def resume(self, msg: int, arg: Any):
        trees = self.forest.trees
        if self.index < len(trees):
            tree = trees[self.index]
            self.index += 1
            return _EMIT, tree
        return _DONE, None


class _RefFrame(_Frame):
    __slots__ = ("child",)

    def __init__(self, forest: ForestRef, parent: Optional[_Frame]) -> None:
        super().__init__(forest, parent)
        self.child: Optional[_Frame] = None

    def resume(self, msg: int, arg: Any):
        if msg == _START:
            if self.forest.target is None:
                return _DONE, None
            return _PUSH, self.forest.target
        if msg == _TREE:
            return _EMIT, arg
        if msg == _MORE:
            return _PULL, self.child
        return _DONE, None  # child exhausted


class _MapFrame(_Frame):
    __slots__ = ("child",)

    def __init__(self, forest: ForestMap, parent: Optional[_Frame]) -> None:
        super().__init__(forest, parent)
        self.child: Optional[_Frame] = None

    def resume(self, msg: int, arg: Any):
        if msg == _START:
            return _PUSH, self.forest.child
        if msg == _TREE:
            return _EMIT, self.forest.fn(arg)
        if msg == _MORE:
            return _PULL, self.child
        return _DONE, None


class _AmbFrame(_Frame):
    __slots__ = ("child", "index", "seen")

    def __init__(self, forest: ForestAmb, parent: Optional[_Frame]) -> None:
        super().__init__(forest, parent)
        self.child: Optional[_Frame] = None
        self.index = 0
        # Fingerprint -> trees with that fingerprint.  Bucketing makes the
        # duplicate check O(1) per tree instead of O(k) against every prior
        # tree; trees_equal within a bucket keeps it collision-exact.
        self.seen: Dict[Optional[int], List[Any]] = {}

    def resume(self, msg: int, arg: Any):
        if msg == _TREE:
            # The same tree can arrive through several alternatives; only the
            # first derivation is reported (enumeration-time deduplication).
            fingerprint = tree_fingerprint(arg)
            bucket = self.seen.get(fingerprint)
            if bucket is None:
                self.seen[fingerprint] = [arg]
                return _EMIT, arg
            if any(trees_equal(arg, prior) for prior in bucket):
                return _PULL, self.child
            bucket.append(arg)
            return _EMIT, arg
        if msg == _MORE:
            return _PULL, self.child
        if msg == _CHILD_DONE:
            self.index += 1
        alternatives = self.forest.alternatives
        if self.index < len(alternatives):
            return _PUSH, alternatives[self.index]
        return _DONE, None


class _PairFrame(_Frame):
    """Nested-loop cross product: a fresh right enumeration per left tree."""

    __slots__ = ("left_frame", "right_frame", "left_tree", "in_right")

    def __init__(self, forest: ForestPair, parent: Optional[_Frame]) -> None:
        super().__init__(forest, parent)
        self.left_frame: Optional[_Frame] = None
        self.right_frame: Optional[_Frame] = None
        self.left_tree: Any = None
        self.in_right = False

    def resume(self, msg: int, arg: Any):
        if msg == _START:
            return _PUSH, self.forest.left
        if msg == _TREE:
            if self.in_right:
                return _EMIT, (self.left_tree, arg)
            self.left_tree = arg
            self.in_right = True
            return _PUSH, self.forest.right
        if msg == _MORE:
            return _PULL, self.right_frame
        # _CHILD_DONE
        if self.in_right:
            self.in_right = False
            self.right_frame = None
            return _PULL, self.left_frame
        return _DONE, None


_FRAME_TYPES = {
    ForestEmpty: _EmptyFrame,
    ForestLeaf: _LeafFrame,
    ForestRef: _RefFrame,
    ForestMap: _MapFrame,
    ForestAmb: _AmbFrame,
    ForestPair: _PairFrame,
}


def _make_frame(forest: ForestNode, parent: Optional[_Frame]) -> _Frame:
    frame_type = _FRAME_TYPES.get(type(forest))
    if frame_type is None:
        raise TypeError("unknown forest node: {!r}".format(forest))
    return frame_type(forest, parent)


def _attach_child(parent: _Frame, child: _Frame) -> None:
    """Record ``child`` as the parent frame's resumable active child."""
    if isinstance(parent, _PairFrame):
        if parent.in_right:
            parent.right_frame = child
        else:
            parent.left_frame = child
    elif isinstance(parent, (_RefFrame, _MapFrame, _AmbFrame)):
        parent.child = child


def _enumerate(root: ForestNode, max_depth: Optional[int]) -> Iterator[Any]:
    """Drive the frame machine, yielding every finite tree of ``root``."""
    on_path: set = set()
    depth = 0

    current: Optional[_Frame] = _make_frame(root, None)
    on_path.add(id(root))
    depth += 1
    msg, arg = _START, None

    while current is not None:
        action, value = current.resume(msg, arg)

        if action == _PUSH:
            # Skip children already being expanded on this path (cycles) and
            # children beyond the depth cap: both "contain no finite trees".
            if id(value) in on_path or (max_depth is not None and depth >= max_depth):
                msg, arg = _CHILD_DONE, None
                continue
            child = _make_frame(value, current)
            _attach_child(current, child)
            on_path.add(id(value))
            depth += 1
            current = child
            msg, arg = _START, None
        elif action == _PULL:
            # Re-descend into a suspended child enumeration.
            child = value
            on_path.add(id(child.forest))
            depth += 1
            current = child
            msg, arg = _MORE, None
        elif action == _EMIT:
            # Hand the tree to the parent (or the consumer); the emitting
            # frame suspends and leaves the active path.
            on_path.discard(id(current.forest))
            depth -= 1
            if current.parent is None:
                yield value
                # The consumer asked for another tree: re-enter the root.
                on_path.add(id(current.forest))
                depth += 1
                msg, arg = _MORE, None
            else:
                current = current.parent
                msg, arg = _TREE, value
        else:  # _DONE
            on_path.discard(id(current.forest))
            depth -= 1
            current = current.parent
            msg, arg = _CHILD_DONE, None


def iter_trees(
    forest: ForestNode,
    limit: Optional[int] = None,
    max_depth: Optional[int] = None,
) -> Iterator[Any]:
    """Enumerate concrete parse trees from a forest, without recursion.

    ``limit`` bounds the number of trees yielded (ambiguous grammars can have
    exponentially or infinitely many).  Cycles terminate on their own: an
    alternative that would revisit a forest node already on the current
    enumeration path is skipped, which yields exactly the finite trees of the
    forest.  ``max_depth`` optionally bounds the enumeration path length as
    well (``None`` — the default — means unbounded; deep forests from long
    inputs are handled iteratively, so no interpreter limit applies).
    """
    emitted = 0
    for tree in _enumerate(forest, max_depth):
        yield tree
        emitted += 1
        if limit is not None and emitted >= limit:
            return


def first_tree(forest: ForestNode, max_depth: Optional[int] = None) -> Any:
    """Return one parse tree from the forest.

    Raises :class:`~repro.core.errors.EmptyForestError` (a ``ParseError``
    that is also a ``ValueError``, for compatibility) when the forest holds
    no finite trees — either because the parse failed outright or because
    every alternative was cut by the cycle guard.
    """
    for tree in iter_trees(forest, limit=1, max_depth=max_depth):
        return tree
    raise EmptyForestError(
        "the parse forest contains no finite trees; input recognized "
        "but no finite parse tree could be extracted"
    )


def count_trees(forest: ForestNode) -> Union[int, float]:
    """Count the trees in a forest — an exact ``int``, of arbitrary
    magnitude; ``math.inf`` strictly for cyclic forests.

    The count treats shared sub-forests correctly (each distinct combination
    is counted once per context, which is the number of distinct parse
    trees), and integer arithmetic is used throughout so counts beyond
    2^53 — Catalan-ambiguous cells reach 10^21 — never lose exactness to
    float rounding.  Built on the shared bottom-up pass of
    :class:`repro.core.forest_query.ForestQuery` (explicit-stack post-order,
    so forests of any depth are counted without touching the interpreter
    recursion limit).
    """
    from .forest_query import exact_count

    return exact_count(forest)
