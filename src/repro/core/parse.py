"""The outer parsing loop and the public :class:`DerivativeParser` API.

Parsing with derivatives is the composition of three pieces (Section 3 of the
paper calls them ``derive``, ``nullable?`` and ``parse-null``):

1. successively derive the grammar by each input token,
2. ask whether the final grammar is nullable (recognition), and
3. extract the parse forest of the final grammar's empty-word parses
   (``parse-null``), which are exactly the parses of the original input.

:class:`DerivativeParser` wires together the pluggable pieces — memoization
strategy, compaction configuration, nullability analyzer and the optional
naming instrumentation — and exposes ``recognize``, ``parse``,
``parse_forest`` and a few inspection helpers used by the benchmarks.

Two engineering properties of this module are worth calling out:

* **No recursion-limit games.**  Earlier revisions raised
  ``sys.setrecursionlimit`` to 200 000 because ``derive`` and ``parse-null``
  recursed over grammar graphs whose depth grows with the input.  Every hot
  traversal is now iterative (:mod:`repro.core.derivative`,
  :meth:`DerivativeParser.parse_null`, :mod:`repro.core.forest`,
  :mod:`repro.core.prune`, :mod:`repro.core.nullability`), so inputs of any
  length parse under the default interpreter limit.  The old
  ``recursion_limit`` constructor argument is retained as a deprecated no-op.

* **Streaming.**  :meth:`DerivativeParser.start` returns a
  :class:`ParserState` whose ``feed(token)`` / ``feed_all(tokens)`` methods
  drive the grammar incrementally, so unbounded token streams can be parsed
  without materializing the input (and recognition status can be queried
  between tokens).

Several parsers may share one grammar graph.  Memo entries and ``parse-null``
results live in fields *on the shared nodes*, so every epoch used to tag them
is drawn from module/class-level monotonic counters — a fresh parser can
never mistake another parser's cached results for its own.
"""

from __future__ import annotations

import itertools
import warnings
from typing import Any, Callable, Iterable, List, Optional, Sequence, Union

from .compaction import CompactionConfig, Compactor, optimize_initial_grammar
from .derivative import Deriver
from .errors import EmptyForestError, GrammarError, ParseError
from .forest import (
    FOREST_EMPTY,
    ForestAmb,
    ForestLeaf,
    ForestMap,
    ForestNode,
    ForestPair,
    ForestRef,
    first_tree,
    iter_trees,
)
from .languages import (
    EMPTY,
    Alt,
    Cat,
    Delta,
    Empty,
    Epsilon,
    Language,
    Reduce,
    Ref,
    Token,
    graph_size,
    reachable_nodes,
)
from .memo import DeriveMemo, make_memo
from .metrics import Metrics
from .naming import NamingScheme, grammar_label
from .nullability import NullabilityAnalyzer
from .productivity import ProductivityAnalyzer
from .prune import AdaptivePruneSchedule, prune_empty

__all__ = [
    "DerivativeParser",
    "ParserState",
    "ParserSnapshot",
    "parse",
    "recognize",
    "validate_grammar",
    "DEFAULT_RECURSION_LIMIT",
]


#: Deprecated.  Earlier revisions raised ``sys.setrecursionlimit`` to this
#: value because the core traversals were recursive.  They are now iterative,
#: no interpreter limit is ever touched, and this constant is kept only so
#: that code importing it keeps working.
DEFAULT_RECURSION_LIMIT = 200_000


#: ``parse-null`` results are cached on (possibly shared) grammar nodes; the
#: epoch tagging each extraction is global and monotonic so results written by
#: one parser — or one earlier extraction — are never misread by another.
_NULL_PARSE_EPOCHS = itertools.count(1)


def validate_grammar(root: Language) -> None:
    """Check that a grammar graph is fully constructed.

    Raises :class:`GrammarError` when a non-terminal reference was never
    resolved or a binary node is missing a child.  Called by the parser
    constructor so that malformed grammars fail fast with a clear message
    rather than deep inside a derivative.
    """
    for node in reachable_nodes(root):
        if isinstance(node, Ref) and node.target is None:
            raise GrammarError(
                "non-terminal <{}> was never resolved (call .set(...) on the Ref)".format(
                    node.ref_name
                )
            )
        if isinstance(node, (Alt, Cat)) and (node.left is None or node.right is None):
            raise GrammarError("node {!r} is missing a child".format(node))
        if isinstance(node, (Reduce, Delta)) and node.lang is None:
            raise GrammarError("node {!r} is missing its language".format(node))


class ParserSnapshot:
    """An O(1) snapshot of a :class:`ParserState` at one stream position.

    Because derived languages are persistent graphs (derivation only ever
    builds new nodes; the in-place rewrites of
    :func:`repro.core.prune.prune_empty` replace provably-empty children
    with the semantically identical ``∅``), a snapshot is a *reference*
    copy: it pins the derived-language node for a prefix, never a deep
    copy of it.  Resume one with :meth:`DerivativeParser.resume` — this is
    the substrate :mod:`repro.incremental` builds its checkpoint trails
    on.
    """

    __slots__ = ("language", "position", "failure_position")

    def __init__(
        self,
        language: Language,
        position: int,
        failure_position: Optional[int],
    ) -> None:
        self.language = language
        self.position = position
        self.failure_position = failure_position

    def __repr__(self) -> str:
        status = (
            "failed@{}".format(self.failure_position)
            if self.failure_position is not None
            else "alive"
        )
        return "ParserSnapshot(position={}, {})".format(self.position, status)


class ParserState:
    """Incremental (streaming) parsing state over a :class:`DerivativeParser`.

    A state starts at the parser's initial grammar and is advanced one token
    at a time with :meth:`feed` (or in bulk with :meth:`feed_all`), keeping
    only the current derived language — O(live grammar) memory regardless of
    how many tokens have been consumed.  This is the API to use for unbounded
    token streams (sockets, token generators, log tails):

    >>> state = parser.start()
    >>> for tok in stream:
    ...     state.feed(tok)
    ...     if state.failed:
    ...         break
    >>> accepted = state.accepts()

    **``feed`` after failure is a no-op.**  Once the derived language
    collapses to ``∅`` the state is dead for good: further :meth:`feed` (and
    :meth:`feed_all`) calls return immediately without deriving, without
    advancing :attr:`position` and without touching
    :attr:`failure_position`, which keeps pointing at the token that killed
    the stream.  Driving loops therefore never need to special-case dead
    streams — feeding a corpse is free and changes nothing.

    ``failed`` reports *structural* death — the derived language collapsed to
    the ``∅`` node.  A semantically dead language can survive structurally
    for a while (cyclic cores that compaction cannot collapse until a prune
    pass runs), so ``failed=False`` does not promise a completion exists;
    :meth:`accepts` is always definitive for the tokens consumed so far, and
    the batch :meth:`DerivativeParser.parse_forest` path runs a productivity
    diagnosis to pin failures to their exact position.
    """

    __slots__ = (
        "parser",
        "language",
        "position",
        "failure_position",
        "snapshot_every",
        "on_snapshot",
    )

    def __init__(
        self,
        parser: "DerivativeParser",
        snapshot_every: Optional[int] = None,
        on_snapshot: Optional[Callable[["ParserSnapshot"], None]] = None,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError(
                "snapshot_every must be >= 1, got {}".format(snapshot_every)
            )
        self.parser = parser
        self.language: Language = parser.root
        #: Number of tokens consumed so far.
        self.position = 0
        #: Index of the token that killed the language, or None while alive.
        self.failure_position: Optional[int] = None
        #: Emit a snapshot to ``on_snapshot`` every this many tokens (the
        #: checkpoint-trail hook; None disables it).  Snapshots fire only
        #: while the state is alive — a dead language has no trail to grow.
        self.snapshot_every = snapshot_every
        self.on_snapshot = on_snapshot

    # ------------------------------------------------------------- predicates
    @property
    def failed(self) -> bool:
        """True once the derived language has become ∅ (no completion exists)."""
        return self.failure_position is not None

    def accepts(self) -> bool:
        """True when the tokens consumed so far form a complete parse."""
        if self.failed:
            return False
        return self.parser.nullability.nullable(self.language)

    # -------------------------------------------------------------- snapshots
    def snapshot(self) -> ParserSnapshot:
        """An O(1) reference snapshot of this state (see :class:`ParserSnapshot`)."""
        return ParserSnapshot(self.language, self.position, self.failure_position)

    # ---------------------------------------------------------------- driving
    def feed(self, token: Any) -> "ParserState":
        """Consume one token, deriving the current language by it."""
        if self.failed:
            return self
        language = self.parser._derive_step(self.language, token, self.position)
        self.position += 1
        if language is EMPTY or isinstance(language, Empty):
            self.failure_position = self.position - 1
            self.language = EMPTY
        else:
            self.language = language
            if (
                self.snapshot_every is not None
                and self.on_snapshot is not None
                and self.position % self.snapshot_every == 0
            ):
                self.on_snapshot(self.snapshot())
        return self

    def feed_all(self, tokens: Iterable[Any]) -> "ParserState":
        """Consume every token from an iterable (stops deriving on failure).

        Stops *before* pulling the next element once the state fails, so a
        one-shot iterator (socket, generator) keeps every unconsumed token —
        callers can resume reading it for error recovery.
        """
        if self.failed:
            return self
        for token in tokens:
            self.feed(token)
            if self.failed:
                break
        return self

    # ---------------------------------------------------------------- results
    def forest(self) -> ForestNode:
        """The parse forest of the tokens consumed so far (raises on failure)."""
        if self.failed:
            raise ParseError(
                "unexpected token", position=self.failure_position, token=None
            )
        if not self.parser.nullability.nullable(self.language):
            # Distinguish "more input could still complete this" from "the
            # language is semantically dead but has not structurally collapsed
            # yet" — a streaming caller must not be told to supply more input
            # when an earlier token already killed the parse.  (The state does
            # not retain consumed tokens, so the exact offending position is
            # only available from the batch path's re-derivation diagnosis.)
            diagnoser = ProductivityAnalyzer(self.parser.nullability)
            if not diagnoser.productive(self.language):
                raise ParseError(
                    "invalid token earlier in the stream (the remaining "
                    "language is empty)",
                    position=None,
                )
            raise ParseError("unexpected end of input", position=self.position, token=None)
        return self.parser.parse_null(self.language)

    def tree(self) -> Any:
        """One parse tree of the tokens consumed so far (raises on failure)."""
        try:
            return first_tree(self.forest())
        except ValueError:
            raise ParseError(
                "input recognized but no finite parse tree could be extracted",
                position=self.position,
            ) from None

    def __repr__(self) -> str:
        status = "failed@{}".format(self.failure_position) if self.failed else "alive"
        return "ParserState(grammar={}, position={}, {})".format(
            grammar_label(self.parser.root), self.position, status
        )


class DerivativeParser:
    """A parser for an arbitrary context-free grammar given as a language graph.

    Parameters
    ----------
    grammar:
        The root :class:`~repro.core.languages.Language` node.  Objects with a
        ``to_language()`` method (e.g. :class:`repro.cfg.grammar.Grammar`) are
        converted automatically.
    memo:
        Memoization strategy for ``derive``: ``"single"`` (the paper's
        improved single-entry strategy, default), ``"dict"`` (full per-node
        hash tables) or ``"nested"`` (the original global nested tables).
        A pre-built :class:`~repro.core.memo.DeriveMemo` may also be passed.
    compaction:
        A :class:`~repro.core.compaction.CompactionConfig`, or True/False for
        the full/disabled configurations.
    optimize_grammar:
        Whether to run the initial-grammar-only compaction rules of
        Section 4.3.1 before parsing (default True).
    naming:
        Enable the Definition 5 naming instrumentation (default False).
    prune:
        Periodically replace provably-empty sub-grammars with ``∅`` so that
        structural compaction can collapse them (see :mod:`repro.core.prune`).
        On by default; disable to measure the structural-rules-only behaviour.
    metrics:
        An optional shared :class:`~repro.core.metrics.Metrics` instance.
    recursion_limit:
        Deprecated and ignored.  The engine is iterative and never calls
        ``sys.setrecursionlimit``; the parameter is accepted so that existing
        callers keep working.
    """

    def __init__(
        self,
        grammar: Union[Language, Any],
        memo: Union[str, DeriveMemo] = "single",
        compaction: Union[CompactionConfig, bool, None] = None,
        optimize_grammar: bool = True,
        naming: bool = False,
        prune: bool = True,
        metrics: Optional[Metrics] = None,
        recursion_limit: Optional[int] = None,
    ) -> None:
        # Remember the caller's grammar object: compile() resolves the
        # shared table through it, so a cfg.Grammar lands on its cached
        # language() graph (the table's anchor) rather than on the fresh
        # to_language() conversion this parser interprets.
        self._compile_source = grammar
        if hasattr(grammar, "to_language"):
            grammar = grammar.to_language()
        if not isinstance(grammar, Language):
            raise GrammarError(
                "expected a Language node or an object with to_language(); got {!r}".format(
                    type(grammar)
                )
            )
        validate_grammar(grammar)

        if recursion_limit is not None:
            warnings.warn(
                "recursion_limit is deprecated and ignored: the engine is "
                "iterative and never calls sys.setrecursionlimit",
                DeprecationWarning,
                stacklevel=2,
            )

        self.metrics = metrics if metrics is not None else Metrics()

        if compaction is None or compaction is True:
            compaction_config = CompactionConfig.full()
        elif compaction is False:
            compaction_config = CompactionConfig.disabled()
        else:
            compaction_config = compaction
        self.compaction_config = compaction_config
        self.compactor = Compactor(compaction_config, self.metrics)

        if isinstance(memo, DeriveMemo):
            self.memo = memo
            self.memo.metrics = self.metrics
        else:
            self.memo = make_memo(memo, self.metrics)

        self.nullability = NullabilityAnalyzer(self.metrics)
        self.naming = NamingScheme() if naming else None

        if optimize_grammar and compaction_config.enabled:
            grammar = optimize_initial_grammar(grammar, self.compactor)
        self.root = grammar

        if self.naming is not None:
            self.naming.assign_initial(self.root)

        self.deriver = Deriver(
            memo=self.memo,
            compactor=self.compactor,
            nullability=self.nullability,
            metrics=self.metrics,
            naming=self.naming,
        )

        # Adaptive pruning of semantically-empty branches (repro.core.prune):
        # a prune pass runs whenever the uncached derive work since the last
        # pass exceeds a small multiple of the live grammar size, keeping the
        # amortized overhead constant.
        self.prune_enabled = prune and compaction_config.enabled
        self._initial_size = graph_size(self.root)
        self._prune_schedule = AdaptivePruneSchedule(
            self._initial_size, self.metrics.derive_uncached
        )
        self.prune_passes = 0

    # ------------------------------------------------------------------ API
    def reset(self) -> None:
        """Forget per-parse caches (the paper clears them before each timed parse).

        Clears the derive memo and the compactor's hash-consing table (both
        hold this parser's derived nodes; dropping one but not the other
        would leak every derivative ever interned), and re-anchors the
        adaptive-prune schedule to the *current* metrics counters — the
        shared :class:`~repro.core.metrics.Metrics` instance may have
        advanced since construction (other parsers, earlier parses), and a
        stale marker would make a reused parser prune far too early or far
        too late.
        """
        self.memo.clear()
        self.compactor.reset_interning()
        self._prune_schedule.reanchor(self.metrics.derive_uncached)

    def start(
        self,
        snapshot_every: Optional[int] = None,
        on_snapshot: Optional[Callable[[ParserSnapshot], None]] = None,
    ) -> ParserState:
        """Begin a streaming parse; see :class:`ParserState`.

        ``snapshot_every``/``on_snapshot`` enable the checkpoint-trail hook:
        every ``snapshot_every`` consumed tokens the (alive) state hands an
        O(1) :class:`ParserSnapshot` to ``on_snapshot``.
        """
        return ParserState(self, snapshot_every=snapshot_every, on_snapshot=on_snapshot)

    def resume(
        self,
        snapshot: ParserSnapshot,
        snapshot_every: Optional[int] = None,
        on_snapshot: Optional[Callable[[ParserSnapshot], None]] = None,
    ) -> ParserState:
        """A new :class:`ParserState` positioned exactly at ``snapshot``.

        The snapshot must have been taken over this parser's grammar graph
        (states of other parsers reference foreign nodes whose caches this
        parser does not own).  Resuming is O(1): the snapshot's language is
        adopted by reference, and re-deriving from it is sound because every
        node-resident cache is owner- or epoch-tagged.
        """
        state = ParserState(self, snapshot_every=snapshot_every, on_snapshot=on_snapshot)
        state.language = snapshot.language
        state.position = snapshot.position
        state.failure_position = snapshot.failure_position
        return state

    def compile(self) -> "Any":
        """Return a :class:`~repro.compile.CompiledParser` over this grammar.

        The fast path for repeated parsing: the compiled parser executes the
        grammar's shared derivative automaton (interned states, per-token-
        class transitions) instead of deriving per token, and its transition
        table persists across parses and parser instances.  Compiling is
        lazy — the table fills as input is consumed — and safe to interleave
        with this parser: every node-resident cache is owner- or epoch-
        tagged.

        The table is resolved through the grammar object this parser was
        constructed from, so ``DerivativeParser(g).compile()`` and
        ``CompiledParser(g)`` share one table even when ``g`` is a
        :class:`~repro.cfg.grammar.Grammar` (whose interpreted conversion
        here is a separate graph from its cached ``language()``).
        """
        from ..compile import CompiledParser

        return CompiledParser(self._compile_source)

    def grammar_size(self) -> int:
        """``G`` — the number of nodes in the (optimized) initial grammar."""
        return graph_size(self.root)

    def _derive_step(self, language: Language, tok: Any, position: int) -> Language:
        """Derive by one token and run the adaptive empty-branch prune."""
        language = self.deriver.derive(language, tok, position)
        self.metrics.tokens_consumed += 1
        if (
            self.prune_enabled
            and not isinstance(language, Empty)
            and self._prune_schedule.due(self.metrics.derive_uncached)
        ):
            language, live_size = prune_empty(language, self.nullability, self.metrics)
            self.prune_passes += 1
            self._prune_schedule.ran(self.metrics.derive_uncached, live_size)
        return language

    def derive_all(self, tokens: Iterable[Any]) -> Language:
        """Derive the grammar by every token and return the final language."""
        state = self.start()
        state.feed_all(tokens)
        if state.failed:
            return EMPTY
        return state.language

    def derivative_trace(self, tokens: Sequence[Any]) -> List[Language]:
        """Return the list of intermediate grammars ``[L, Dc1 L, Dc2 Dc1 L, ...]``."""
        state = self.start()
        trace = [state.language]
        for tok in tokens:
            state.feed(tok)
            trace.append(state.language)
            if state.failed:
                break
        return trace

    def recognize(self, tokens: Iterable[Any]) -> bool:
        """True when the token sequence is in the grammar's language."""
        return self.start().feed_all(tokens).accepts()

    def parse_forest(self, tokens: Sequence[Any]) -> ForestNode:
        """Parse and return the shared parse forest (with ambiguity nodes)."""
        state = self.start().feed_all(tokens)
        if state.failed or not self.nullability.nullable(state.language):
            raise self._failure_error(tokens)
        return self.parse_null(state.language)

    def _failure_error(self, tokens: Sequence[Any]) -> ParseError:
        """Build a :class:`ParseError` that points at the earliest bad token.

        Deriving by a token may leave a grammar that is structurally non-empty
        but denotes the empty language (compaction cannot always collapse it,
        especially around cycles), so the position at which the language
        finally collapses to the ``∅`` node can lag the token that actually
        killed it.  On the error path — and only there — the input is
        re-derived with a productivity check after each token so the error
        message reports the position where the language semantically died
        (matching what chart parsers like Earley report).  The re-derivation
        hits the warm memo, so the diagnosis costs one cached pass.
        """
        diagnoser = ProductivityAnalyzer(self.nullability)
        language = self.root
        for position, tok in enumerate(tokens):
            language = self.deriver.derive(language, tok, position)
            if (
                language is EMPTY
                or isinstance(language, Empty)
                or not diagnoser.productive(language)
            ):
                return ParseError(
                    "unexpected token", position=position, token=tok, tokens=tokens
                )
        return ParseError(
            "unexpected end of input", position=len(tokens), token=None, tokens=tokens
        )

    def parse(self, tokens: Sequence[Any]) -> Any:
        """Parse and return a single parse tree (raises on ambiguity-free failure).

        For ambiguous grammars this returns an arbitrary (but deterministic)
        member of the forest; use :meth:`parse_forest` /
        :func:`repro.core.forest.iter_trees` to inspect every parse.
        """
        forest = self.parse_forest(tokens)
        try:
            return first_tree(forest)
        except ValueError:
            raise ParseError(
                "input recognized but no finite parse tree could be extracted",
                position=len(tokens),
                tokens=tokens,
            ) from None

    def parse_trees(
        self,
        tokens: Sequence[Any],
        limit: Optional[int] = None,
        ranking: Optional[Any] = None,
    ) -> List[Any]:
        """Parse and return up to ``limit`` distinct parse trees.

        With ``ranking`` (a :class:`repro.core.forest_query.Ranking` or a
        registered ranking name such as ``"size"``/``"depth"``) trees come
        back best-first via lazy top-k extraction: memory stays bounded by
        ``limit`` even when the forest holds astronomically many parses.
        Without a ranking, trees come in plain enumeration order.
        """
        forest = self.parse_forest(tokens)
        if ranking is None:
            return list(iter_trees(forest, limit=limit))
        from .forest_query import iter_trees_ranked

        return list(iter_trees_ranked(forest, ranking, limit))

    def sample_parses(self, tokens: Sequence[Any], rng: Any, n: int = 1) -> List[Any]:
        """Parse and draw ``n`` uniform samples over the forest's derivations.

        ``rng`` is an explicit ``random.Random`` instance or an ``int`` seed
        (this repo audits against global-RNG use).  Sampling descends the
        shared forest with exact count-proportional choices — no
        enumeration, so it is cheap even at 10^21 parses.
        """
        forest = self.parse_forest(tokens)
        from .forest_query import sample_trees

        try:
            return sample_trees(forest, rng, n)
        except EmptyForestError:
            raise ParseError(
                "input recognized but no finite parse tree could be extracted",
                position=len(tokens),
                tokens=tokens,
            ) from None

    # ----------------------------------------------------------- parse-null
    def parse_null(self, node: Language) -> ForestNode:
        """Extract the forest of empty-word parses of ``node`` (``parse-null``).

        The result shares structure and uses ambiguity nodes; grammars with
        ε-cycles produce cyclic forests (infinitely many parses), which the
        forest utilities handle explicitly.

        The extraction is iterative and runs in two phases over an explicit
        stack: a discovery pass allocates one (possibly cyclic) forest
        skeleton per reachable nullable grammar node and caches it on the
        node under a globally fresh epoch, then a wiring pass links every
        skeleton to its children's results.  Cycles in the grammar therefore
        become cycles in the forest graph directly, with no placeholder
        juggling and no recursion.
        """
        return self._parse_null(node, next(_NULL_PARSE_EPOCHS))

    def _parse_null(self, root: Language, epoch: int) -> ForestNode:
        nullable = self.nullability.nullable
        metrics = self.metrics

        # Phase 1: allocate a result skeleton for every node that needs one.
        pending: List[Language] = []
        stack: List[Language] = [root]
        while stack:
            node = stack.pop()
            if node.null_parse_epoch == epoch and node.null_parse_result is not None:
                continue
            metrics.parse_null_calls += 1

            if isinstance(node, (Empty, Token)):
                node.null_parse_epoch = epoch
                node.null_parse_result = FOREST_EMPTY
                continue
            if isinstance(node, Epsilon):
                node.null_parse_epoch = epoch
                node.null_parse_result = ForestLeaf(node.trees)
                continue
            # Nodes that cannot produce the empty word contribute nothing;
            # pruning here keeps forests small and avoids chasing useless
            # cycles.
            if not nullable(node):
                node.null_parse_epoch = epoch
                node.null_parse_result = FOREST_EMPTY
                continue

            if isinstance(node, Alt):
                skeleton: ForestNode = ForestAmb([])
                children = (node.right, node.left)
            elif isinstance(node, Cat):
                skeleton = ForestPair(FOREST_EMPTY, FOREST_EMPTY)
                children = (node.right, node.left)
            elif isinstance(node, Reduce):
                skeleton = ForestMap(node.fn, FOREST_EMPTY)
                children = (node.lang,)
            elif isinstance(node, Delta):
                skeleton = ForestRef()
                children = (node.lang,)
            elif isinstance(node, Ref):
                skeleton = ForestRef()
                children = (node.target,)
            else:  # pragma: no cover - defensive
                raise GrammarError(
                    "cannot parse-null unknown node type: {!r}".format(node)
                )
            node.null_parse_epoch = epoch
            node.null_parse_result = skeleton
            pending.append(node)
            stack.extend(children)

        # Phase 2: wire each skeleton to its children's (now cached) results.
        for node in pending:
            skeleton = node.null_parse_result
            if isinstance(node, Alt):
                skeleton.alternatives.append(node.left.null_parse_result)
                skeleton.alternatives.append(node.right.null_parse_result)
            elif isinstance(node, Cat):
                skeleton.left = node.left.null_parse_result
                skeleton.right = node.right.null_parse_result
            elif isinstance(node, Reduce):
                skeleton.child = node.lang.null_parse_result
            elif isinstance(node, Delta):
                skeleton.target = node.lang.null_parse_result
            else:  # Ref
                skeleton.target = node.target.null_parse_result

        return root.null_parse_result


def recognize(
    grammar: Union[Language, Any],
    tokens: Iterable[Any],
    engine: str = "derivative",
    **kwargs: Any,
) -> bool:
    """Convenience wrapper: build a parser and recognize.

    ``engine`` selects the execution strategy: ``"derivative"`` (the
    interpreted parser, default) or ``"compiled"`` (the shared derivative
    automaton of :mod:`repro.compile` — fastest when the same grammar is
    queried repeatedly, since its transition table is grammar-owned and
    persists across calls).  The interpreted knobs (``memo``,
    ``compaction``, …) do not apply to the compiled engine; passing one
    raises a clear :class:`TypeError` rather than crashing inside the
    constructor.  Note that ``max_states`` forfeits the cross-call
    sharing: capped tables are always private (see
    :func:`repro.compile.compile_grammar`), so a capped wrapper call
    compiles cold every time — hold a :class:`CompiledParser` instead when
    you need both a cap and warmth.
    """
    return _make_parser(grammar, engine, kwargs).recognize(tokens)


def parse(
    grammar: Union[Language, Any],
    tokens: Sequence[Any],
    engine: str = "derivative",
    **kwargs: Any,
) -> Any:
    """Convenience wrapper: build a parser and parse (see :func:`recognize`)."""
    return _make_parser(grammar, engine, kwargs).parse(tokens)


#: Keyword arguments CompiledParser accepts; everything else is an
#: interpreted-engine knob that has no compiled equivalent.
_COMPILED_KWARGS = frozenset({"table", "max_states"})


def _make_parser(grammar: Any, engine: str, kwargs: dict) -> Any:
    """Shared engine dispatch for the :func:`recognize`/:func:`parse` wrappers."""
    if engine == "compiled":
        unsupported = sorted(set(kwargs) - _COMPILED_KWARGS)
        if unsupported:
            raise TypeError(
                "option(s) {} are not supported by engine='compiled'; the "
                "compiled automaton accepts only {}".format(
                    ", ".join(map(repr, unsupported)), sorted(_COMPILED_KWARGS)
                )
            )
        from ..compile import CompiledParser

        return CompiledParser(grammar, **kwargs)
    if engine != "derivative":
        raise ValueError(
            "unknown engine {!r}; expected 'derivative' or 'compiled'".format(engine)
        )
    return DerivativeParser(grammar, **kwargs)
