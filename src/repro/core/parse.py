"""The outer parsing loop and the public :class:`DerivativeParser` API.

Parsing with derivatives is the composition of three pieces (Section 3 of the
paper calls them ``derive``, ``nullable?`` and ``parse-null``):

1. successively derive the grammar by each input token,
2. ask whether the final grammar is nullable (recognition), and
3. extract the parse forest of the final grammar's empty-word parses
   (``parse-null``), which are exactly the parses of the original input.

:class:`DerivativeParser` wires together the pluggable pieces — memoization
strategy, compaction configuration, nullability analyzer and the optional
naming instrumentation — and exposes ``recognize``, ``parse``,
``parse_forest`` and a few inspection helpers used by the benchmarks.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable, List, Optional, Sequence, Union

from .compaction import CompactionConfig, Compactor, optimize_initial_grammar
from .derivative import Deriver
from .errors import GrammarError, ParseError
from .forest import (
    FOREST_EMPTY,
    ForestAmb,
    ForestLeaf,
    ForestMap,
    ForestNode,
    ForestPair,
    ForestRef,
    first_tree,
    iter_trees,
)
from .languages import (
    EMPTY,
    Alt,
    Cat,
    Delta,
    Empty,
    Epsilon,
    Language,
    Reduce,
    Ref,
    Token,
    graph_size,
    reachable_nodes,
)
from .memo import DeriveMemo, make_memo
from .metrics import Metrics
from .naming import NamingScheme
from .nullability import NullabilityAnalyzer
from .productivity import ProductivityAnalyzer
from .prune import live_nodes, prune_empty

__all__ = [
    "DerivativeParser",
    "parse",
    "recognize",
    "validate_grammar",
    "DEFAULT_RECURSION_LIMIT",
]


#: Derivative computations recurse over grammar graphs whose depth grows with
#: the input, so the interpreter recursion limit is raised to this value by
#: default (CPython ≥ 3.11 keeps pure-Python recursion on the heap, so a large
#: limit is safe).
DEFAULT_RECURSION_LIMIT = 200_000


def validate_grammar(root: Language) -> None:
    """Check that a grammar graph is fully constructed.

    Raises :class:`GrammarError` when a non-terminal reference was never
    resolved or a binary node is missing a child.  Called by the parser
    constructor so that malformed grammars fail fast with a clear message
    rather than deep inside a derivative.
    """
    for node in reachable_nodes(root):
        if isinstance(node, Ref) and node.target is None:
            raise GrammarError(
                "non-terminal <{}> was never resolved (call .set(...) on the Ref)".format(
                    node.ref_name
                )
            )
        if isinstance(node, (Alt, Cat)) and (node.left is None or node.right is None):
            raise GrammarError("node {!r} is missing a child".format(node))
        if isinstance(node, (Reduce, Delta)) and node.lang is None:
            raise GrammarError("node {!r} is missing its language".format(node))


class DerivativeParser:
    """A parser for an arbitrary context-free grammar given as a language graph.

    Parameters
    ----------
    grammar:
        The root :class:`~repro.core.languages.Language` node.  Objects with a
        ``to_language()`` method (e.g. :class:`repro.cfg.grammar.Grammar`) are
        converted automatically.
    memo:
        Memoization strategy for ``derive``: ``"single"`` (the paper's
        improved single-entry strategy, default), ``"dict"`` (full per-node
        hash tables) or ``"nested"`` (the original global nested tables).
        A pre-built :class:`~repro.core.memo.DeriveMemo` may also be passed.
    compaction:
        A :class:`~repro.core.compaction.CompactionConfig`, or True/False for
        the full/disabled configurations.
    optimize_grammar:
        Whether to run the initial-grammar-only compaction rules of
        Section 4.3.1 before parsing (default True).
    naming:
        Enable the Definition 5 naming instrumentation (default False).
    prune:
        Periodically replace provably-empty sub-grammars with ``∅`` so that
        structural compaction can collapse them (see :mod:`repro.core.prune`).
        On by default; disable to measure the structural-rules-only behaviour.
    metrics:
        An optional shared :class:`~repro.core.metrics.Metrics` instance.
    recursion_limit:
        Raise ``sys.setrecursionlimit`` to at least this value.
    """

    def __init__(
        self,
        grammar: Union[Language, Any],
        memo: Union[str, DeriveMemo] = "single",
        compaction: Union[CompactionConfig, bool, None] = None,
        optimize_grammar: bool = True,
        naming: bool = False,
        prune: bool = True,
        metrics: Optional[Metrics] = None,
        recursion_limit: int = DEFAULT_RECURSION_LIMIT,
    ) -> None:
        if hasattr(grammar, "to_language"):
            grammar = grammar.to_language()
        if not isinstance(grammar, Language):
            raise GrammarError(
                "expected a Language node or an object with to_language(); got {!r}".format(
                    type(grammar)
                )
            )
        validate_grammar(grammar)

        if recursion_limit and sys.getrecursionlimit() < recursion_limit:
            sys.setrecursionlimit(recursion_limit)

        self.metrics = metrics if metrics is not None else Metrics()

        if compaction is None or compaction is True:
            compaction_config = CompactionConfig.full()
        elif compaction is False:
            compaction_config = CompactionConfig.disabled()
        else:
            compaction_config = compaction
        self.compaction_config = compaction_config
        self.compactor = Compactor(compaction_config, self.metrics)

        if isinstance(memo, DeriveMemo):
            self.memo = memo
            self.memo.metrics = self.metrics
        else:
            self.memo = make_memo(memo, self.metrics)

        self.nullability = NullabilityAnalyzer(self.metrics)
        self.naming = NamingScheme() if naming else None

        if optimize_grammar and compaction_config.enabled:
            grammar = optimize_initial_grammar(grammar, self.compactor)
        self.root = grammar

        if self.naming is not None:
            self.naming.assign_initial(self.root)

        self.deriver = Deriver(
            memo=self.memo,
            compactor=self.compactor,
            nullability=self.nullability,
            metrics=self.metrics,
            naming=self.naming,
        )
        self._null_parse_epoch = 0

        # Adaptive pruning of semantically-empty branches (repro.core.prune):
        # a prune pass runs whenever the uncached derive work since the last
        # pass exceeds a small multiple of the live grammar size, keeping the
        # amortized overhead constant.
        self.prune_enabled = prune and compaction_config.enabled
        self._initial_size = graph_size(self.root)
        self._prune_interval = max(4 * self._initial_size, 64)
        self._prune_marker = self.metrics.derive_uncached
        self.prune_passes = 0

    # ------------------------------------------------------------------ API
    def reset(self) -> None:
        """Clear memo tables (the paper clears them before each timed parse)."""
        self.memo.clear()

    def grammar_size(self) -> int:
        """``G`` — the number of nodes in the (optimized) initial grammar."""
        return graph_size(self.root)

    def _derive_step(self, language: Language, tok: Any, position: int) -> Language:
        """Derive by one token and run the adaptive empty-branch prune."""
        language = self.deriver.derive(language, tok, position)
        self.metrics.tokens_consumed += 1
        if (
            self.prune_enabled
            and not isinstance(language, Empty)
            and self.metrics.derive_uncached - self._prune_marker > self._prune_interval
        ):
            language, live_size = prune_empty(language, self.nullability, self.metrics)
            self.prune_passes += 1
            self._prune_marker = self.metrics.derive_uncached
            self._prune_interval = max(4 * self._initial_size, 2 * live_size, 64)
        return language

    def derive_all(self, tokens: Iterable[Any]) -> Language:
        """Derive the grammar by every token and return the final language."""
        language = self.root
        for position, tok in enumerate(tokens):
            language = self._derive_step(language, tok, position)
            if language is EMPTY or isinstance(language, Empty):
                return EMPTY
        return language

    def derivative_trace(self, tokens: Sequence[Any]) -> List[Language]:
        """Return the list of intermediate grammars ``[L, Dc1 L, Dc2 Dc1 L, ...]``."""
        language = self.root
        trace = [language]
        for position, tok in enumerate(tokens):
            language = self._derive_step(language, tok, position)
            trace.append(language)
            if language is EMPTY or isinstance(language, Empty):
                break
        return trace

    def recognize(self, tokens: Iterable[Any]) -> bool:
        """True when the token sequence is in the grammar's language."""
        final = self.derive_all(tokens)
        if final is EMPTY or isinstance(final, Empty):
            return False
        return self.nullability.nullable(final)

    def parse_forest(self, tokens: Sequence[Any]) -> ForestNode:
        """Parse and return the shared parse forest (with ambiguity nodes)."""
        language = self.root
        for position, tok in enumerate(tokens):
            language = self._derive_step(language, tok, position)
            if language is EMPTY or isinstance(language, Empty):
                raise ParseError(
                    "unexpected token", position=position, token=tok, tokens=tokens
                )
        if not self.nullability.nullable(language):
            raise self._failure_error(tokens)
        return self.parse_null(language)

    def _failure_error(self, tokens: Sequence[Any]) -> ParseError:
        """Build a :class:`ParseError` that points at the earliest bad token.

        Deriving by a token may leave a grammar that is structurally non-empty
        but denotes the empty language (compaction cannot always collapse it,
        especially around cycles).  On the error path — and only there — the
        input is re-derived with a productivity check after each token so the
        error message reports the position where the language actually died.
        """
        diagnoser = ProductivityAnalyzer(self.nullability)
        language = self.root
        for position, tok in enumerate(tokens):
            language = self.deriver.derive(language, tok, position)
            if (
                language is EMPTY
                or isinstance(language, Empty)
                or not diagnoser.productive(language)
            ):
                return ParseError(
                    "unexpected token", position=position, token=tok, tokens=tokens
                )
        return ParseError(
            "unexpected end of input", position=len(tokens), token=None, tokens=tokens
        )

    def parse(self, tokens: Sequence[Any]) -> Any:
        """Parse and return a single parse tree (raises on ambiguity-free failure).

        For ambiguous grammars this returns an arbitrary (but deterministic)
        member of the forest; use :meth:`parse_forest` /
        :func:`repro.core.forest.iter_trees` to inspect every parse.
        """
        forest = self.parse_forest(tokens)
        try:
            return first_tree(forest)
        except ValueError:
            raise ParseError(
                "input recognized but no finite parse tree could be extracted",
                position=len(tokens),
                tokens=tokens,
            ) from None

    def parse_trees(self, tokens: Sequence[Any], limit: Optional[int] = None) -> List[Any]:
        """Parse and return up to ``limit`` distinct parse trees."""
        forest = self.parse_forest(tokens)
        return list(iter_trees(forest, limit=limit))

    # ----------------------------------------------------------- parse-null
    def parse_null(self, node: Language) -> ForestNode:
        """Extract the forest of empty-word parses of ``node`` (``parse-null``).

        The result shares structure and uses ambiguity nodes; grammars with
        ε-cycles produce cyclic forests (infinitely many parses), which the
        forest utilities handle explicitly.
        """
        self._null_parse_epoch += 1
        return self._parse_null(node, self._null_parse_epoch)

    def _parse_null(self, node: Language, epoch: int) -> ForestNode:
        if node.null_parse_epoch == epoch and node.null_parse_result is not None:
            return node.null_parse_result
        self.metrics.parse_null_calls += 1

        if isinstance(node, (Empty, Token)):
            node.null_parse_epoch = epoch
            node.null_parse_result = FOREST_EMPTY
            return FOREST_EMPTY
        if isinstance(node, Epsilon):
            result: ForestNode = ForestLeaf(node.trees)
            node.null_parse_epoch = epoch
            node.null_parse_result = result
            return result

        # Nodes that cannot produce the empty word contribute nothing; pruning
        # here keeps forests small and avoids chasing useless cycles.
        if not self.nullability.nullable(node):
            node.null_parse_epoch = epoch
            node.null_parse_result = FOREST_EMPTY
            return FOREST_EMPTY

        placeholder = ForestRef()
        node.null_parse_epoch = epoch
        node.null_parse_result = placeholder

        if isinstance(node, Alt):
            result = ForestAmb(
                [self._parse_null(node.left, epoch), self._parse_null(node.right, epoch)]
            )
        elif isinstance(node, Cat):
            result = ForestPair(
                self._parse_null(node.left, epoch), self._parse_null(node.right, epoch)
            )
        elif isinstance(node, Reduce):
            result = ForestMap(node.fn, self._parse_null(node.lang, epoch))
        elif isinstance(node, Delta):
            result = self._parse_null(node.lang, epoch)
        elif isinstance(node, Ref):
            result = self._parse_null(node.target, epoch)
        else:  # pragma: no cover - defensive
            raise GrammarError("cannot parse-null unknown node type: {!r}".format(node))

        placeholder.target = result
        node.null_parse_result = result
        return result


def recognize(grammar: Union[Language, Any], tokens: Iterable[Any], **kwargs: Any) -> bool:
    """Convenience wrapper: build a :class:`DerivativeParser` and recognize."""
    return DerivativeParser(grammar, **kwargs).recognize(tokens)


def parse(grammar: Union[Language, Any], tokens: Sequence[Any], **kwargs: Any) -> Any:
    """Convenience wrapper: build a :class:`DerivativeParser` and parse."""
    return DerivativeParser(grammar, **kwargs).parse(tokens)
