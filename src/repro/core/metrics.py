"""Instrumentation counters for the derivative parser.

The paper's evaluation (Section 4) is largely about *counting things*:

* Figure 7 counts calls to ``nullable?`` in the improved parser relative to
  the original implementation,
* Figure 10 counts how many grammar nodes ever receive more than one
  ``derive`` memoization entry,
* Figure 11 counts uncached calls to ``derive`` under the single-entry
  memoization strategy versus full hash tables,
* Section 3 bounds the run time by the number of grammar nodes constructed.

:class:`Metrics` is a plain counter bag that the parser components update as
they run.  It is intentionally lightweight — a handful of integer attributes —
so that enabling instrumentation does not meaningfully perturb the timings
used for Figures 6 and 12.

**Concurrency contract.**  Counter bumps are plain ``+=`` on integer
attributes — a read-modify-write that can lose updates when two threads hit
one instance unsynchronized, so a shared :class:`Metrics` must only be
advanced under a lock the writers agree on.  The two multi-threaded users
in the tree both do exactly that, each in one of the two sanctioned
patterns: the compiled :class:`~repro.compile.automaton.GrammarTable`
advances its metrics only on paths serialized by the table lock (warm,
lock-free walks never touch metrics), and :class:`repro.serve.ParseService`
gives each worker its own private instance and folds them into an aggregate
with :meth:`Metrics.merge` under the service's metrics lock.  Everything
else — one parser, one thread — needs no synchronization at all.

This module is the *count* domain of the tree's observability: how many
times the engines did what.  The *time* domain — request latency
histograms, per-stage span traces, quantiles — lives in :mod:`repro.obs`,
whose :class:`~repro.obs.Histogram` shards and folds exactly like
:meth:`Metrics.merge` but over log-bucketed durations instead of integer
counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

__all__ = ["Metrics", "MetricsSnapshot"]


@dataclass
class MetricsSnapshot:
    """An immutable copy of the counter values at a point in time."""

    values: Dict[str, int] = field(default_factory=dict)

    def __getitem__(self, key: str) -> int:
        return self.values.get(key, 0)

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Return the per-counter difference ``self - earlier``."""
        keys = set(self.values) | set(earlier.values)
        return MetricsSnapshot(
            {key: self.values.get(key, 0) - earlier.values.get(key, 0) for key in keys}
        )


@dataclass
class Metrics:
    """Counters shared by the derivative, nullability and memoization layers.

    Attributes
    ----------
    nodes_created:
        Total grammar nodes constructed, including placeholder nodes that are
        later discarded by compaction (``g`` in Section 3 counts constructed
        nodes, so discarded placeholders are included and also reported
        separately as ``placeholders_discarded``).
    derive_calls:
        Every invocation of ``derive`` (cached or not).
    derive_cache_hits / derive_uncached:
        Split of ``derive_calls`` into memo hits and real computations.
    memo_evictions:
        Number of single-entry memo evictions (Section 4.4's "forgetful"
        memoization replacing an old token entry with a new one).
    nullable_calls:
        Number of node visits performed by the nullability computation; this
        is the quantity plotted in Figure 7.
    nullable_fixed_points:
        Number of times a cyclic dependency forced a full fixed-point
        computation rather than a direct recursive evaluation.
    fixpoint_node_evaluations:
        Transfer-function evaluations performed by the unified fixed-point
        kernel (:mod:`repro.core.fixpoint`) across *every* analysis sharing
        this Metrics instance — nullability, productivity/emptiness, the
        classical CFG analyses and regex nullability all count here.
    fixpoint_solves:
        Completed fixed points run by the kernel (each one promotes its
        tentative values to final).
    hash_cons_hits / hash_cons_misses:
        Hash-consing outcomes in the compaction smart constructors: a hit
        returns an existing canonical node instead of allocating a
        structurally identical duplicate, a miss interns a fresh node.
    compaction_rewrites:
        Number of times a smart constructor applied a reduction rule.
    parse_null_calls:
        Non-cached invocations of ``parse_null``.
    edits_applied / edit_tokens_refed / edit_splices:
        Incremental-reparse activity (:mod:`repro.incremental`): edits
        applied to documents, tokens actually re-derived while replaying
        the suffix after an edit, and edits that re-converged with the old
        parse and spliced its checkpoint trail instead of re-feeding to
        the end.
    dense_hits / dense_fallbacks:
        Warm-recognition routing on the compiled engine's int-indexed
        :class:`~repro.compile.automaton.DenseCore`: tokens resolved by a
        dense transition row vs. tokens that fell back to the object
        layer's ``step_slow`` (cold edge, never-seen kind, or a transient
        cursor).  The executor counts locally per run and folds the totals
        in under the table lock.
    """

    nodes_created: int = 0
    placeholders_created: int = 0
    placeholders_discarded: int = 0
    derive_calls: int = 0
    derive_cache_hits: int = 0
    derive_uncached: int = 0
    memo_evictions: int = 0
    memo_single_entry_nodes: int = 0
    memo_multi_entry_nodes: int = 0
    nullable_calls: int = 0
    nullable_cache_hits: int = 0
    nullable_fixed_points: int = 0
    fixpoint_node_evaluations: int = 0
    fixpoint_solves: int = 0
    hash_cons_hits: int = 0
    hash_cons_misses: int = 0
    compaction_rewrites: int = 0
    parse_null_calls: int = 0
    tokens_consumed: int = 0
    edits_applied: int = 0
    edit_tokens_refed: int = 0
    edit_splices: int = 0
    dense_hits: int = 0
    dense_fallbacks: int = 0

    def snapshot(self) -> MetricsSnapshot:
        """Capture the current counter values."""
        return MetricsSnapshot({f.name: getattr(self, f.name) for f in fields(self)})

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def merge(self, other: "Metrics") -> None:
        """Add ``other``'s counters into this instance (aggregation primitive).

        The contention-safe way to meter parallel work: give each worker a
        private :class:`Metrics`, then fold the workers' bags into one
        aggregate under a lock the aggregator owns (``merge`` itself does
        not synchronize — the caller's lock is the contract, see the module
        docstring).
        """
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __str__(self) -> str:
        parts = ["{}={}".format(key, value) for key, value in self.as_dict().items() if value]
        return "Metrics({})".format(", ".join(parts))
