"""Weighted queries over shared parse forests: exact counts, top-k, sampling.

The cubic bound of parsing with derivatives holds because ambiguous
parses stay a *shared graph* (:mod:`repro.core.forest`) — but that bound
is only useful if consumers never have to flatten the graph back into a
list of trees.  This module is the single place where forests are
consumed *as graphs*:

``ForestQuery``
    One iterative bottom-up pass over the forest computes, per node, the
    **exact** ``int`` number of derivations (``math.inf`` strictly for
    cyclic forests) and — when a :class:`Ranking` is supplied — the
    1-best derivation score.  Every operation below reads from that pass.

``iter_trees_ranked(forest, ranking, k)``
    Lazy best-first top-k extraction (Huang & Chiang style): each
    ambiguity node materializes at most one new candidate per tree
    emitted, so extracting ``k`` trees from a forest with ``10^21``
    derivations touches ``O(k)`` candidates per node, never the forest's
    tree count.

``sample_trees(forest, rng, n)``
    Exact uniform sampling over derivations by descending the graph with
    count-proportional choices — integer arithmetic throughout (no float
    rounding above 2^53), no rejection, no enumeration.

``count_trees`` in :mod:`repro.core.forest` is rebuilt on the same pass
via :func:`exact_count`.

Rankings score *derivations* compositionally (leaf / pair / map), so the
algebra is semiring-like: counts use (+, x), scores use (min, combine).
``ForestMap`` is score-preserving by default — a ranking may override
:meth:`Ranking.map` when the mapped tree should be re-weighted.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from .errors import EmptyForestError
from .forest import (
    ForestAmb,
    ForestEmpty,
    ForestLeaf,
    ForestMap,
    ForestNode,
    ForestPair,
    ForestRef,
    tree_fingerprint,
    trees_equal,
)

__all__ = [
    "Ranking",
    "TreeSizeRanking",
    "TreeDepthRanking",
    "RANKINGS",
    "ranking_by_name",
    "ForestQuery",
    "exact_count",
    "iter_trees_ranked",
    "sample_trees",
]


# ---------------------------------------------------------------------------
# Rankings: pluggable derivation scores (lower is better).
# ---------------------------------------------------------------------------


def _tree_size(tree: Any) -> int:
    """Number of nodes in a tree, iteratively (trees nest input-deep)."""
    size = 0
    stack = [tree]
    while stack:
        node = stack.pop()
        size += 1
        if type(node) is tuple:
            stack.extend(node)
    return size


def _tree_depth(tree: Any) -> int:
    """Height of a tree, iteratively (trees nest input-deep)."""
    depth = 0
    stack = [(tree, 1)]
    while stack:
        node, level = stack.pop()
        if level > depth:
            depth = level
        if type(node) is tuple:
            for child in node:
                stack.append((child, level + 1))
    return depth


class Ranking:
    """Compositional score over derivations; smaller scores rank first.

    ``pair`` must be monotone in both arguments and ``map`` monotone in
    its score argument — that is what makes lazy best-first extraction
    sound (a candidate built from worse children can never beat one built
    from better children).  Scores must be totally ordered among
    themselves; ties are broken deterministically by discovery order.
    """

    #: Registry name (wire-safe identity for pooled dispatch).
    name = "ranking"

    def leaf(self, tree: Any) -> Any:
        """Score of a tree taken directly from a ``ForestLeaf``."""
        raise NotImplementedError

    def pair(self, left_score: Any, right_score: Any) -> Any:
        """Score of the tree combining a left and a right derivation."""
        raise NotImplementedError

    def map(self, fn: Any, score: Any) -> Any:
        """Score after a ``ForestMap`` reduction (default: preserved)."""
        return score


class TreeSizeRanking(Ranking):
    """Rank by node count — smallest (least material) trees first."""

    name = "size"

    def leaf(self, tree: Any) -> int:
        """Node count of a leaf-level tree."""
        return _tree_size(tree)

    def pair(self, left_score: int, right_score: int) -> int:
        """Sum of the children's node counts plus the joining node."""
        return left_score + right_score + 1


class TreeDepthRanking(Ranking):
    """Rank by height — shallowest (most balanced) trees first."""

    name = "depth"

    def leaf(self, tree: Any) -> int:
        """Height of a leaf-level tree."""
        return _tree_depth(tree)

    def pair(self, left_score: int, right_score: int) -> int:
        """Height of the deeper child plus the joining node."""
        return max(left_score, right_score) + 1


#: Named rankings — the wire protocol ships names, never closures.
RANKINGS: Dict[str, Ranking] = {
    TreeSizeRanking.name: TreeSizeRanking(),
    TreeDepthRanking.name: TreeDepthRanking(),
}


def ranking_by_name(name: Union[str, Ranking, None]) -> Optional[Ranking]:
    """Resolve a ranking given by registry name (pass-through otherwise)."""
    if name is None or isinstance(name, Ranking):
        return name
    try:
        return RANKINGS[name]
    except KeyError:
        raise ValueError(
            "unknown ranking {!r}; registered: {}".format(
                name, ", ".join(sorted(RANKINGS))
            )
        ) from None


# ---------------------------------------------------------------------------
# The bottom-up pass: per-node exact counts (+ 1-best scores).
# ---------------------------------------------------------------------------

# Opcodes for the iterative pass (post-order with a pair short-circuit).
_ENTER, _EXIT, _PAIR_RIGHT = range(3)


class _RankedState:
    """Lazy k-best bookkeeping for one forest node (Huang & Chiang)."""

    __slots__ = ("extracted", "heap", "pending", "pushed", "initialized", "exhausted", "seen")

    def __init__(self) -> None:
        self.extracted: List[Tuple[Any, Any]] = []  # (score, tree), best first
        self.heap: List[Tuple[Any, int, Any, Any]] = []  # (score, seq, tree, spec)
        self.pending: List[Any] = []  # derivation specs awaiting child ranks
        self.pushed: set = set()  # pair (i, j) specs ever pended (dedup)
        self.initialized = False
        self.exhausted = False
        self.seen: Optional[Dict[Optional[int], List[Any]]] = None  # amb dedup


class ForestQuery:
    """Weighted queries over one forest: count / best-k / uniform sample.

    Construction runs a single iterative post-order pass over the graph
    (three-color DFS; a back edge to a grey node marks the derivation
    space infinite) computing per-node exact ``int`` counts — cached, so
    every subsequent operation is incremental.  Supplying ``ranking``
    additionally computes per-node 1-best scores in the same pass and
    enables :meth:`iter_ranked`.
    """

    def __init__(self, forest: ForestNode, ranking: Union[str, Ranking, None] = None) -> None:
        self.forest = forest
        self.ranking = ranking_by_name(ranking)
        self._counts: Dict[int, Union[int, float]] = {}
        self._best: Dict[int, Any] = {}
        self._nodes: Dict[int, ForestNode] = {}  # keeps ids stable / nodes alive
        self._acyclic = True
        self._ranked_states: Dict[int, _RankedState] = {}
        self._seq = itertools.count()
        self._root_count = self._pass(forest)

    # ------------------------------------------------------------------
    # The counting (+ 1-best) pass.
    # ------------------------------------------------------------------

    def _pass(self, root: ForestNode) -> Union[int, float]:
        """Post-order walk from ``root``: exact counts (+ 1-best scores).

        A back edge to a node on the current walk path contributes
        ``math.inf`` — but inf values are **not** cached: a node inside a
        zero-guarded cycle can evaluate inf in one context yet have a
        finite true count (the old ``count_trees`` pinned this), so only
        context-free (non-inf) values persist.  Every node the sampler or
        the ranked extractor can reach ends up cached: a finite non-zero
        parent forces finite (hence cached) children.
        """
        ranking = self.ranking
        counts = self._counts
        bests = self._best
        nodes = self._nodes
        inf = math.inf
        on_path: set = set()
        stack: List[Tuple[int, Any]] = [(_ENTER, root)]
        values: List[Union[int, float]] = []
        best_values: List[Any] = []  # parallel to ``values``

        while stack:
            op, node = stack.pop()

            if op == _ENTER:
                key = id(node)
                if key in counts:
                    values.append(counts[key])
                    best_values.append(bests.get(key))
                    continue
                if key in on_path:
                    # Back edge: derivations through here never terminate.
                    self._acyclic = False
                    values.append(inf)
                    best_values.append(None)
                    continue
                nodes[key] = node
                if isinstance(node, ForestEmpty):
                    counts[key] = 0
                    values.append(0)
                    best_values.append(None)
                    continue
                if isinstance(node, ForestLeaf):
                    counts[key] = len(node.trees)
                    best = None
                    if ranking is not None and node.trees:
                        best = min(ranking.leaf(tree) for tree in node.trees)
                        bests[key] = best
                    values.append(len(node.trees))
                    best_values.append(best)
                    continue
                if isinstance(node, ForestRef) and node.target is None:
                    counts[key] = 0
                    values.append(0)
                    best_values.append(None)
                    continue
                on_path.add(key)
                if isinstance(node, (ForestRef, ForestMap)):
                    stack.append((_EXIT, node))
                    child = node.target if isinstance(node, ForestRef) else node.child
                    stack.append((_ENTER, child))
                elif isinstance(node, ForestAmb):
                    stack.append((_EXIT, node))
                    for alternative in reversed(node.alternatives):
                        stack.append((_ENTER, alternative))
                elif isinstance(node, ForestPair):
                    # Left side first; the right side is visited only when
                    # the left count is non-zero (mirrors the 0-guard).
                    stack.append((_PAIR_RIGHT, node))
                    stack.append((_ENTER, node.left))
                else:
                    raise TypeError("unknown forest node: {!r}".format(node))

            elif op == _PAIR_RIGHT:
                left_count = values.pop()
                left_best = best_values.pop()
                if left_count == 0:
                    on_path.discard(id(node))
                    counts[id(node)] = 0
                    values.append(0)
                    best_values.append(None)
                else:
                    stack.append((_EXIT, (node, left_count, left_best)))
                    stack.append((_ENTER, node.right))

            else:  # _EXIT
                best = None
                if isinstance(node, tuple):  # a pair with its left results
                    node, left_count, left_best = node
                    right_count = values.pop()
                    right_best = best_values.pop()
                    if right_count == 0:
                        result: Union[int, float] = 0
                    elif left_count == inf or right_count == inf:
                        result = inf  # explicit: inf * big-int overflows float
                    else:
                        result = left_count * right_count
                    if (
                        ranking is not None
                        and result != 0
                        and left_best is not None
                        and right_best is not None
                    ):
                        best = ranking.pair(left_best, right_best)
                elif isinstance(node, (ForestRef, ForestMap)):
                    result = values.pop()
                    child_best = best_values.pop()
                    if ranking is not None and child_best is not None:
                        if isinstance(node, ForestMap):
                            best = ranking.map(node.fn, child_best)
                        else:
                            best = child_best
                else:  # ForestAmb
                    total = 0
                    saw_inf = False
                    for _ in node.alternatives:
                        alt_count = values.pop()
                        alt_best = best_values.pop()
                        if alt_count == inf:
                            saw_inf = True
                        else:
                            total += alt_count
                        if alt_best is not None and (best is None or alt_best < best):
                            best = alt_best
                    result = inf if saw_inf else total
                key = id(node)
                on_path.discard(key)
                # Only cache values computed without hitting the current
                # path; a value involving a back edge is context-dependent.
                if result != inf:
                    counts[key] = result
                    if best is not None:
                        bests[key] = best
                values.append(result)
                best_values.append(best)

        return values[-1] if values else 0

    # ------------------------------------------------------------------
    # Counts.
    # ------------------------------------------------------------------

    @property
    def count(self) -> Union[int, float]:
        """Exact number of derivations of the whole forest (``int``), or
        ``math.inf`` when the forest is cyclic."""
        return self._root_count

    def count_at(self, node: ForestNode) -> Union[int, float]:
        """Exact derivation count of ``node`` (recomputed on demand for
        nodes the root pass short-circuited past)."""
        key = id(node)
        if key in self._counts:
            return self._counts[key]
        if node is self.forest:
            return self._root_count
        return self._pass(node)

    @property
    def best(self) -> Any:
        """1-best derivation score of the forest (``None`` if treeless)."""
        return self.best_at(self.forest)

    def best_at(self, node: ForestNode) -> Any:
        """1-best derivation score of ``node`` under the query's ranking."""
        if self.ranking is None:
            raise ValueError("this ForestQuery was built without a ranking")
        if id(node) not in self._counts and node is not self.forest:
            self._pass(node)
        if not self._acyclic:
            # On a cyclic graph the bottom-up 1-best may miss finite
            # derivations that revisit an ancestor; refuse rather than lie.
            raise ValueError("best scores require an acyclic forest")
        return self._best.get(id(node))

    # ------------------------------------------------------------------
    # Lazy best-first top-k extraction.
    # ------------------------------------------------------------------

    def iter_ranked(self, k: Optional[int] = None) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(score, tree)`` best-first; at most ``k`` when given.

        Lazy: asking for the next tree advances each touched node by at
        most one extraction, so memory is ``O(k)`` per ambiguity node no
        matter how many derivations the forest holds.  Requires a finite
        forest (``ValueError`` on cyclic ones) and a ranking.
        """
        if self.ranking is None:
            raise ValueError("iter_ranked requires a ranking")
        if self.count == math.inf:
            raise ValueError(
                "cannot rank a cyclic forest: infinitely many derivations"
            )
        if k is not None and k < 0:
            raise ValueError("k must be non-negative")
        return self._iter_ranked(k)

    def _iter_ranked(self, k: Optional[int]) -> Iterator[Tuple[Any, Any]]:
        root = self.forest
        rank = 0
        while k is None or rank < k:
            self._ensure_ranked(root, rank + 1)
            state = self._ranked_states[id(root)]
            if len(state.extracted) <= rank:
                return
            yield state.extracted[rank]
            rank += 1

    def _ranked_state(self, node: ForestNode) -> _RankedState:
        key = id(node)
        state = self._ranked_states.get(key)
        if state is None:
            state = _RankedState()
            if self._counts.get(key, 0) == 0:
                # Treeless subgraphs (including cycle-cut ones) are never
                # descended into — this is what keeps the machine acyclic.
                state.initialized = True
                state.exhausted = True
            self._ranked_states[key] = state
        return state

    def _ensure_ranked(self, node: ForestNode, want: int) -> None:
        """Drive ``node`` to ``want`` extractions (or exhaustion), iteratively."""
        stack: List[Tuple[ForestNode, int]] = [(node, want)]
        while stack:
            current, need = stack[-1]
            state = self._ranked_state(current)
            if state.exhausted or len(state.extracted) >= need:
                stack.pop()
                continue
            if not state.initialized:
                self._init_ranked(current, state)
            needs = self._flush_pending(current, state)
            if needs:
                stack.extend(needs)
                continue
            if not state.heap:
                state.exhausted = True
                continue
            score, _seq, tree, spec = heapq.heappop(state.heap)
            self._push_successors(current, state, spec)
            if state.seen is not None and self._amb_duplicate(state, tree):
                continue  # same tree via another alternative: skip, keep going
            state.extracted.append((score, tree))

    def _init_ranked(self, node: ForestNode, state: _RankedState) -> None:
        ranking = self.ranking
        if isinstance(node, ForestLeaf):
            for tree in node.trees:
                heapq.heappush(
                    state.heap, (ranking.leaf(tree), next(self._seq), tree, None)
                )
        elif isinstance(node, (ForestMap, ForestRef)):
            state.pending.append(0)
        elif isinstance(node, ForestAmb):
            state.seen = {}
            state.pending.extend(
                (index, 0) for index in range(len(node.alternatives))
            )
        elif isinstance(node, ForestPair):
            state.pending.append((0, 0))
            state.pushed.add((0, 0))
        state.initialized = True

    def _flush_pending(
        self, node: ForestNode, state: _RankedState
    ) -> List[Tuple[ForestNode, int]]:
        """Materialize ready candidate specs; return unmet child requests."""
        needs: List[Tuple[ForestNode, int]] = []
        remaining: List[Any] = []
        for spec in state.pending:
            ready = True
            dead = False
            for child, rank in self._spec_requirements(node, spec):
                child_state = self._ranked_states.get(id(child))
                if child_state is not None and len(child_state.extracted) > rank:
                    continue
                if child_state is not None and child_state.exhausted:
                    dead = True
                    break
                ready = False
                needs.append((child, rank + 1))
            if dead:
                continue
            if ready:
                self._materialize(node, state, spec)
            else:
                remaining.append(spec)
        state.pending = remaining
        return needs

    def _spec_requirements(
        self, node: ForestNode, spec: Any
    ) -> Tuple[Tuple[ForestNode, int], ...]:
        if isinstance(node, ForestPair):
            i, j = spec
            return ((node.left, i), (node.right, j))
        if isinstance(node, ForestAmb):
            index, rank = spec
            return ((node.alternatives[index], rank),)
        if isinstance(node, ForestMap):
            return ((node.child, spec),)
        # ForestRef — a None target never reaches here (count 0 → exhausted).
        return ((node.target, spec),)

    def _materialize(self, node: ForestNode, state: _RankedState, spec: Any) -> None:
        ranking = self.ranking
        if isinstance(node, ForestPair):
            i, j = spec
            left_score, left_tree = self._ranked_states[id(node.left)].extracted[i]
            right_score, right_tree = self._ranked_states[id(node.right)].extracted[j]
            entry = (
                ranking.pair(left_score, right_score),
                next(self._seq),
                (left_tree, right_tree),
                spec,
            )
        elif isinstance(node, ForestAmb):
            index, rank = spec
            score, tree = self._ranked_states[id(node.alternatives[index])].extracted[rank]
            entry = (score, next(self._seq), tree, spec)
        elif isinstance(node, ForestMap):
            score, tree = self._ranked_states[id(node.child)].extracted[spec]
            entry = (ranking.map(node.fn, score), next(self._seq), node.fn(tree), spec)
        else:  # ForestRef
            score, tree = self._ranked_states[id(node.target)].extracted[spec]
            entry = (score, next(self._seq), tree, spec)
        heapq.heappush(state.heap, entry)

    def _push_successors(self, node: ForestNode, state: _RankedState, spec: Any) -> None:
        if spec is None:  # leaf candidates have no successors
            return
        if isinstance(node, ForestPair):
            i, j = spec
            for successor in ((i + 1, j), (i, j + 1)):
                if successor not in state.pushed:
                    state.pushed.add(successor)
                    state.pending.append(successor)
        elif isinstance(node, ForestAmb):
            index, rank = spec
            state.pending.append((index, rank + 1))
        else:  # ForestMap / ForestRef
            state.pending.append(spec + 1)

    def _amb_duplicate(self, state: _RankedState, tree: Any) -> bool:
        """Enumeration-grade dedup: same tree via several alternatives."""
        fingerprint = tree_fingerprint(tree)
        bucket = state.seen.get(fingerprint)
        if bucket is None:
            state.seen[fingerprint] = [tree]
            return False
        if any(trees_equal(tree, prior) for prior in bucket):
            return True
        bucket.append(tree)
        return False

    # ------------------------------------------------------------------
    # Exact uniform sampling.
    # ------------------------------------------------------------------

    def sample(self, rng: Union[random.Random, int]) -> Any:
        """One tree drawn uniformly over the forest's derivations.

        Descends the graph making count-proportional choices with exact
        integer arithmetic — no rejection, no enumeration, no float
        rounding.  Raises :class:`EmptyForestError` on a treeless forest
        and ``ValueError`` on a cyclic one.
        """
        count = self.count
        if count == math.inf:
            raise ValueError(
                "cannot sample uniformly from a cyclic forest: "
                "infinitely many derivations"
            )
        if count == 0:
            raise EmptyForestError(
                "the parse forest contains no finite trees; input recognized "
                "but no finite parse tree could be extracted"
            )
        rng = _coerce_rng(rng)
        counts = self._counts
        ops: List[Tuple[Any, ...]] = [("visit", self.forest)]
        values: List[Any] = []
        while ops:
            op = ops.pop()
            kind = op[0]
            if kind == "visit":
                node = op[1]
                if isinstance(node, ForestLeaf):
                    trees = node.trees
                    index = rng.randrange(len(trees)) if len(trees) > 1 else 0
                    values.append(trees[index])
                elif isinstance(node, ForestRef):
                    ops.append(("visit", node.target))
                elif isinstance(node, ForestMap):
                    ops.append(("map", node.fn))
                    ops.append(("visit", node.child))
                elif isinstance(node, ForestPair):
                    # Combine runs after both sides; left draws first.
                    ops.append(("pair",))
                    ops.append(("visit", node.right))
                    ops.append(("visit", node.left))
                else:  # ForestAmb (Empty is unreachable: its count is 0)
                    target = rng.randrange(counts[id(node)])
                    for alt in node.alternatives:
                        alt_count = counts[id(alt)]
                        if target < alt_count:
                            ops.append(("visit", alt))
                            break
                        target -= alt_count
                    else:  # pragma: no cover - counts pass guarantees a hit
                        raise RuntimeError(
                            "sampling descent desynchronized from counts"
                        )
            elif kind == "pair":
                right_tree = values.pop()
                left_tree = values.pop()
                values.append((left_tree, right_tree))
            else:  # "map"
                values.append(op[1](values.pop()))
        return values[0]

    def sample_n(self, rng: Union[random.Random, int], n: int) -> List[Any]:
        """``n`` independent uniform samples from one RNG stream."""
        if n < 0:
            raise ValueError("n must be non-negative")
        rng = _coerce_rng(rng)
        return [self.sample(rng) for _ in range(n)]


def _coerce_rng(rng: Union[random.Random, int]) -> random.Random:
    """Explicit RNG only (the repo audits against global-RNG use)."""
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, int) and not isinstance(rng, bool):
        return random.Random(rng)
    raise TypeError(
        "rng must be a random.Random instance or an int seed; "
        "implicit global randomness is not accepted"
    )


# ---------------------------------------------------------------------------
# Module-level conveniences (what the engines call).
# ---------------------------------------------------------------------------


def exact_count(forest: ForestNode) -> Union[int, float]:
    """Exact ``int`` derivation count; ``math.inf`` strictly for cycles."""
    return ForestQuery(forest).count


def iter_trees_ranked(
    forest: ForestNode,
    ranking: Union[str, Ranking] = "size",
    k: Optional[int] = None,
) -> Iterator[Any]:
    """Trees of ``forest`` best-first under ``ranking``; at most ``k``."""
    query = ForestQuery(forest, ranking)
    return (tree for _score, tree in query.iter_ranked(k))


def sample_trees(
    forest: ForestNode,
    rng: Union[random.Random, int],
    n: int = 1,
) -> List[Any]:
    """``n`` uniform samples over the derivations of ``forest``."""
    return ForestQuery(forest).sample_n(rng, n)
