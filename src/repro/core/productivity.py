"""Productivity (non-emptiness) analysis of language nodes.

A language node is *productive* when it generates at least one word.  The
derivative parser uses this as a diagnostic: after a parse fails, re-deriving
the input and checking productivity after each token pinpoints the earliest
token at which the remaining language became empty, which is the position a
user wants to see in a syntax-error message.

Productivity is a least fixed point over the boolean lattice, exactly dual to
nullability (Section 2.4):

* ``∅`` is not productive, ``ε`` and tokens are productive,
* ``L1 ∪ L2`` is productive when either child is,
* ``L1 ◦ L2`` is productive when both children are,
* ``L ↪→ f``, ``δ(L)`` and references follow their child.

(The ``δ(L)`` case uses nullability rather than productivity of ``L`` —
``δ(L)`` is non-empty exactly when ``L`` is nullable — but treating it as
"follows the child" is a sound over-approximation for diagnostics and keeps
the solver independent; we use the precise rule.)

Unlike nullability, productivity is only consulted on error paths, so results
are cached in a dictionary owned by the analyzer rather than in node fields.
The discovery sweep and the fixed point both run on explicit worklists, so
arbitrarily deep derived grammars are diagnosed without recursion.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from .languages import (
    Alt,
    Cat,
    Delta,
    Empty,
    Epsilon,
    Language,
    Reduce,
    Ref,
    Token,
)
from .nullability import NullabilityAnalyzer

__all__ = ["ProductivityAnalyzer"]


class ProductivityAnalyzer:
    """Decide whether a language node generates at least one word."""

    def __init__(self, nullability: Optional[NullabilityAnalyzer] = None) -> None:
        self.nullability = nullability if nullability is not None else NullabilityAnalyzer()
        # Keyed by the node object (identity-hashed); an id()-keyed table could
        # collide when a previously-queried temporary node has been collected.
        self._cache: Dict[Language, bool] = {}

    def productive(self, node: Language) -> bool:
        """True when the language of ``node`` is non-empty."""
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        return self._solve(node)

    def is_empty(self, node: Language) -> bool:
        """True when the language of ``node`` contains no words at all."""
        return not self.productive(node)

    # ----------------------------------------------------------- fixed point
    def _solve(self, root: Language) -> bool:
        pending: List[Language] = []
        dependents: Dict[int, List[Language]] = {}
        discovered: set[int] = set()
        stack: List[Language] = [root]
        while stack:
            node = stack.pop()
            if id(node) in discovered:
                continue
            discovered.add(id(node))
            if node in self._cache:
                continue
            pending.append(node)
            for child in self._relevant_children(node):
                dependents.setdefault(id(child), []).append(node)
                if id(child) not in discovered and child not in self._cache:
                    stack.append(child)

        value: Dict[int, bool] = {id(node): False for node in pending}
        worklist = deque(pending)
        in_worklist = {id(node) for node in pending}
        while worklist:
            node = worklist.popleft()
            in_worklist.discard(id(node))
            if self._evaluate(node, value) and not value[id(node)]:
                value[id(node)] = True
                for parent in dependents.get(id(node), ()):
                    if id(parent) not in in_worklist and id(parent) in value:
                        worklist.append(parent)
                        in_worklist.add(id(parent))

        for node in pending:
            self._cache[node] = value[id(node)]
        return self._cache[root]

    @staticmethod
    def _relevant_children(node: Language) -> tuple:
        if isinstance(node, (Alt, Cat)):
            return tuple(child for child in (node.left, node.right) if child is not None)
        if isinstance(node, Reduce):
            return (node.lang,) if node.lang is not None else ()
        if isinstance(node, Ref):
            return (node.target,) if node.target is not None else ()
        # Delta's productivity is decided by nullability, not by recursion here.
        return ()

    def _evaluate(self, node: Language, value: Dict[int, bool]) -> bool:
        if isinstance(node, (Epsilon, Token)):
            return True
        if isinstance(node, Empty):
            return False
        if isinstance(node, Delta):
            return node.lang is not None and self.nullability.nullable(node.lang)
        if isinstance(node, Alt):
            return self._value_of(node.left, value) or self._value_of(node.right, value)
        if isinstance(node, Cat):
            return self._value_of(node.left, value) and self._value_of(node.right, value)
        if isinstance(node, Reduce):
            return self._value_of(node.lang, value)
        if isinstance(node, Ref):
            return self._value_of(node.target, value)
        raise TypeError("unknown language node type: {!r}".format(node))

    def _value_of(self, child: Optional[Language], value: Dict[int, bool]) -> bool:
        if child is None:
            return False
        cached = self._cache.get(child)
        if cached is not None:
            return cached
        return value.get(id(child), False)
