"""Productivity (non-emptiness) analysis of language nodes.

A language node is *productive* when it generates at least one word.  The
derivative parser uses this in two places: as the error-path diagnostic that
pinpoints the earliest token at which the remaining language became empty,
and — through :mod:`repro.core.prune` and the compiled automaton's
dead-state routing — as the *emptiness analysis* that lets provably-dead
sub-grammars be collapsed to ``∅``.

Productivity is a least fixed point over the boolean lattice, exactly dual to
nullability (Section 2.4):

* ``∅`` is not productive, ``ε`` and tokens are productive,
* ``L1 ∪ L2`` is productive when either child is,
* ``L1 ◦ L2`` is productive when both children are,
* ``L ↪→ f`` and references follow their child,
* ``δ(L)`` is productive exactly when ``L`` is nullable (decided by the
  nullability analysis, not by recursing into ``L`` here).

Like nullability, the computation is a :class:`~repro.core.fixpoint`
declaration: :class:`ProductivityAnalysis` states the lattice and transfer
function, and the shared kernel supplies dependency tracking, tentative
values and final promotion.  Two final-value policies are used:

* :class:`ProductivityAnalyzer` owns a persistent dictionary cache.  This is
  sound for graphs mutated only by derivation and pruning, because both are
  semantics-preserving on already-constructed nodes: ``derive`` never changes
  the children of a finished node, and :func:`repro.core.prune.prune_empty`
  only rewrites a child to ``∅`` when the child already denoted the empty
  language.
* :func:`repro.core.prune.prune_empty` runs one-shot solves with a throwaway
  cache, recomputing from scratch each pass (the historical, assumption-free
  behaviour for in-place graph surgery).

The cache is keyed by the node object (identity-hashed); an id()-keyed table
could collide when a previously-queried temporary node has been collected.
"""

from __future__ import annotations

from typing import Dict, Optional

from .fixpoint import NOT_FINAL, FixpointAnalysis, FixpointSolver
from .languages import (
    Alt,
    Cat,
    Delta,
    Empty,
    Epsilon,
    Language,
    Reduce,
    Ref,
    Token,
)
from .metrics import Metrics
from .nullability import NullabilityAnalyzer

__all__ = ["ProductivityAnalysis", "ProductivityAnalyzer"]


class ProductivityAnalysis(FixpointAnalysis):
    """Non-emptiness as a lattice declaration for the fixed-point kernel.

    Parameters
    ----------
    cache:
        The final-value store (node → bool).  Pass a long-lived dictionary
        for incremental analyzers, a throwaway one for one-shot passes.
    nullability:
        Decides the ``δ(L)`` case (``δ(L)`` is non-empty iff ``L`` is
        nullable).
    strict:
        When True (the analyzer default), unknown node types raise
        ``TypeError``; when False (the prune pass), they are conservatively
        treated as productive so in-place surgery never deletes what it does
        not understand.
    """

    def __init__(
        self,
        cache: Dict[Language, bool],
        nullability: NullabilityAnalyzer,
        strict: bool = True,
    ) -> None:
        self.cache = cache
        self.nullability = nullability
        self.strict = strict

    # ------------------------------------------------------------- the lattice
    def bottom(self, node: Language) -> bool:
        """Start every node at the lattice bottom: not (yet) productive."""
        return False

    def dependencies(self, node: Language) -> tuple:
        """The children whose productivity this node's transfer reads."""
        if isinstance(node, (Alt, Cat)):
            return tuple(child for child in (node.left, node.right) if child is not None)
        if isinstance(node, Reduce):
            return (node.lang,) if node.lang is not None else ()
        if isinstance(node, Ref):
            return (node.target,) if node.target is not None else ()
        # Delta's productivity is decided by nullability, not by its child's
        # productivity, so it contributes no dependency edge.
        return ()

    def transfer(self, node: Language, get) -> bool:
        """One monotone productivity step for ``node``."""
        if isinstance(node, (Epsilon, Token)):
            return True
        if isinstance(node, Empty):
            return False
        if isinstance(node, Delta):
            return node.lang is not None and self.nullability.nullable(node.lang)
        if isinstance(node, Alt):
            return self._child(node.left, get) or self._child(node.right, get)
        if isinstance(node, Cat):
            return self._child(node.left, get) and self._child(node.right, get)
        if isinstance(node, Reduce):
            return self._child(node.lang, get)
        if isinstance(node, Ref):
            return self._child(node.target, get)
        if self.strict:
            raise TypeError("unknown language node type: {!r}".format(node))
        return True  # unknown node types are conservatively kept

    @staticmethod
    def _child(child: Optional[Language], get) -> bool:
        if child is None:
            return False
        return get(child)

    # --------------------------------------------------------- final promotion
    def final(self, node: Language):
        """Read the cached final productivity of ``node``, if promoted."""
        return self.cache.get(node, NOT_FINAL)

    def finalize(self, node: Language, value: bool) -> None:
        """Cache ``value`` as ``node``'s final productivity."""
        self.cache[node] = value


class ProductivityAnalyzer:
    """Decide whether a language node generates at least one word."""

    def __init__(
        self,
        nullability: Optional[NullabilityAnalyzer] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.nullability = nullability if nullability is not None else NullabilityAnalyzer()
        self.metrics = metrics if metrics is not None else self.nullability.metrics
        self._cache: Dict[Language, bool] = {}
        self._solver = FixpointSolver(
            ProductivityAnalysis(self._cache, self.nullability), self.metrics
        )

    def productive(self, node: Language) -> bool:
        """True when the language of ``node`` is non-empty."""
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        return self._solver.value(node)

    def is_empty(self, node: Language) -> bool:
        """True when the language of ``node`` contains no words at all."""
        return not self.productive(node)
