"""Named reduction functions used by compaction.

The compaction rules of Section 4.3 insert reduction nodes (``↪→``) whose
functions reshape parse trees: pairing a tree with a constant, re-associating
nested pairs, mapping a function over one component of a pair, or composing
two reductions into one.  Using small named callable classes (instead of
anonymous lambdas) keeps the resulting grammars debuggable and makes the
reduction functions comparable and picklable, which the tests rely on.

All functions operate on a *single* parse tree; ambiguity is represented
structurally in the parse forest (ambiguity nodes), so the set-comprehension
notation of the paper (``{(f {t1}, t2) | ...}``) corresponds here to mapping
the function over each alternative of the forest.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = [
    "Identity",
    "Compose",
    "PairLeft",
    "PairRight",
    "MapFirst",
    "MapSecond",
    "ReassocToLeft",
    "Constant",
    "compose",
    "IDENTITY",
]


class ReductionFunction:
    """Base class for named, comparable reduction functions."""

    def __call__(self, tree: Any) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def _key(self) -> tuple:
        return ()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:
        args = ", ".join(repr(part) for part in self._key())
        return "{}({})".format(type(self).__name__, args)


class Identity(ReductionFunction):
    """``t ↦ t``."""

    def __call__(self, tree: Any) -> Any:
        return tree


#: Shared identity reduction.
IDENTITY = Identity()


class Constant(ReductionFunction):
    """``t ↦ value`` — discard the tree and return a constant."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def __call__(self, tree: Any) -> Any:
        return self.value

    def _key(self) -> tuple:
        return (self.value,)


class Compose(ReductionFunction):
    """``t ↦ outer(inner(t))`` — the rule ``(p ↪→ f) ↪→ g ⇒ p ↪→ (g ∘ f)``.

    Reduction fusion can pile up composition chains as long as the input
    (every token of a deep sequence contributes one function), so two
    engineering constraints apply: building a composition must be O(1) —
    fusion happens on the parsing hot path — and *applying* one must not
    consume a Python stack frame per link.  The chain is therefore kept as
    an ``(outer, inner)`` pair but evaluated with an explicit stack that
    unfolds nested compositions in either position iteratively.
    """

    def __init__(self, outer: Callable[[Any], Any], inner: Callable[[Any], Any]) -> None:
        self.outer = outer
        self.inner = inner

    def __call__(self, tree: Any) -> Any:
        pending = [self.outer]
        fn: Callable[[Any], Any] = self.inner
        while True:
            if type(fn) is Compose:
                pending.append(fn.outer)
                fn = fn.inner
                continue
            tree = fn(tree)
            if not pending:
                return tree
            fn = pending.pop()

    def _key(self) -> tuple:
        return (self.outer, self.inner)


class PairLeft(ReductionFunction):
    """``u ↦ (s, u)`` — from the rule ``ε_s ◦ p ⇒ p ↪→ λu.(s, u)``."""

    def __init__(self, left: Any) -> None:
        self.left = left

    def __call__(self, tree: Any) -> Any:
        return (self.left, tree)

    def _key(self) -> tuple:
        return (self.left,)


class PairRight(ReductionFunction):
    """``u ↦ (u, s)`` — from the rule ``p ◦ ε_s ⇒ p ↪→ λu.(u, s)``."""

    def __init__(self, right: Any) -> None:
        self.right = right

    def __call__(self, tree: Any) -> Any:
        return (tree, self.right)

    def _key(self) -> tuple:
        return (self.right,)


class MapFirst(ReductionFunction):
    """``(t1, t2) ↦ (f(t1), t2)`` — floating a reduction out of a left child."""

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def __call__(self, tree: Any) -> Any:
        first, second = tree
        return (self.fn(first), second)

    def _key(self) -> tuple:
        return (self.fn,)


class MapSecond(ReductionFunction):
    """``(t1, t2) ↦ (t1, f(t2))`` — floating a reduction out of a right child."""

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def __call__(self, tree: Any) -> Any:
        first, second = tree
        return (first, self.fn(second))

    def _key(self) -> tuple:
        return (self.fn,)


class ReassocToLeft(ReductionFunction):
    """``(t1, (t2, t3)) ↦ ((t1, t2), t3)``.

    Used by the sequence-canonicalization rule of Section 4.3.2, which turns a
    left-associated chain ``(p1 ◦ p2) ◦ p3`` into a right-associated chain and
    restores the original tree shape with this function.
    """

    def __call__(self, tree: Any) -> Any:
        first, rest = tree
        second, third = rest
        return ((first, second), third)


def compose(outer: Callable[[Any], Any], inner: Callable[[Any], Any]) -> Callable[[Any], Any]:
    """Compose two reduction functions, simplifying identities away."""
    if isinstance(outer, Identity):
        return inner
    if isinstance(inner, Identity):
        return outer
    return Compose(outer, inner)
