"""Memoization strategies for the ``derive`` function.

Section 4.4 of the paper observes that the original implementation's nested
hash tables (node → token → result) dominate the cost of memoization, and
that the vast majority of grammar nodes only ever receive a *single* memo
entry (Figure 10).  The improved implementation therefore stores the memo for
each node in two fields on the node itself — a key and a value — evicting the
old entry when a second token arrives.  The eviction makes the memo
"forgetful", causing a small number of extra uncached ``derive`` calls
(Figure 11, ~4.2 % on average) in exchange for a ~2× speedup (Figure 12).

Three interchangeable strategies are provided so the benchmarks can compare
them directly:

* :class:`SingleEntryMemo` — the paper's improved strategy (node fields).
* :class:`PerNodeDictMemo` — a full hash table stored per node (the "inner
  hash table in a node field" variant discussed in Section 4.4).
* :class:`NestedDictMemo` — the original strategy: a global table of tables.

All strategies implement the same tiny interface: :meth:`get`, :meth:`put`
and :meth:`clear`, plus :meth:`entry_distribution` used by the Figure 10
benchmark.

**Concurrency contract.**  Memo entries live in fields *on the grammar
nodes*.  The owner/epoch tagging isolates parsers that share a graph
*sequentially* (parser B never reads parser A's entries), but it does not
make interleaved writes from concurrent threads safe: a single-entry put is
three separate field assignments, and a dict-memo put may race on the
owner-table creation.  The rule, enforced by :mod:`repro.serve`, is
therefore per-*graph*, not per-parser: all derivation over one grammar
graph must be confined to one thread or serialized by one lock.  The
compiled :class:`~repro.compile.automaton.GrammarTable` serializes its
grammar-lifetime :class:`PersistentDictMemo` under the table lock;
interpreted parsers stay thread-confined together with their graphs
(workers parse private :func:`~repro.core.languages.clone_graph` copies).
"""

from __future__ import annotations

import itertools
import weakref
from typing import Any, Dict, List, Optional

from .languages import Language
from .metrics import Metrics

__all__ = [
    "MISS",
    "DeriveMemo",
    "SingleEntryMemo",
    "PerNodeDictMemo",
    "PersistentDictMemo",
    "NestedDictMemo",
    "make_memo",
    "MEMO_STRATEGIES",
]


class _Miss:
    """Sentinel distinguishing 'no memo entry' from a memoized ``None``."""

    _instance: Optional["_Miss"] = None

    def __new__(cls) -> "_Miss":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<MISS>"


#: Returned by :meth:`DeriveMemo.get` when no entry exists.
MISS = _Miss()


class DeriveMemo:
    """Abstract interface shared by every memoization strategy."""

    name = "abstract"

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self.metrics = metrics if metrics is not None else Metrics()

    def get(self, node: Language, token: Any) -> Any:
        """Return the memoized derivative of ``node`` by ``token`` or MISS."""
        raise NotImplementedError

    def put(self, node: Language, token: Any, result: Language) -> None:
        """Record ``result`` as the derivative of ``node`` by ``token``."""
        raise NotImplementedError

    def clear(self) -> None:
        """Forget every memo entry (the paper clears tables between parses)."""
        raise NotImplementedError

    def entry_distribution(self) -> Dict[int, int]:
        """Map ``number of entries per node`` → ``number of nodes``.

        Only meaningful for table-based strategies; the single-entry strategy
        reports eviction counts through :class:`Metrics` instead.
        """
        return {}


class SingleEntryMemo(DeriveMemo):
    """The improved, forgetful single-entry memo of Section 4.4.

    Each node stores at most one ``(token, result)`` pair directly in its
    ``memo_token`` / ``memo_result`` fields.  An ``epoch`` counter implements
    ``clear`` in O(1): entries written under an older epoch are ignored.

    Because the entries live on the grammar nodes themselves — which may be
    shared by several parsers — epochs are drawn from a **class-level
    monotonic counter**: every instance (and every ``clear``) gets an epoch
    no other instance has ever used, so a second parser built over the same
    grammar graph can never read derivatives memoized by the first.
    """

    name = "single"

    #: Class-level epoch source.  Node fields default to epoch -1, so the
    #: counter starts at 1 and only ever moves forward.
    _epochs = itertools.count(1)

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        super().__init__(metrics)
        self.epoch = next(SingleEntryMemo._epochs)

    def get(self, node: Language, token: Any) -> Any:
        """Return the node-resident entry when epoch and token match, else MISS."""
        if node.memo_epoch == self.epoch and node.memo_token == token:
            return node.memo_result
        return MISS

    def put(self, node: Language, token: Any, result: Language) -> None:
        """Write the node's single entry, evicting any other token's result."""
        if node.memo_epoch == self.epoch and node.memo_token != token:
            self.metrics.memo_evictions += 1
        node.memo_epoch = self.epoch
        node.memo_token = token
        node.memo_result = result

    def clear(self) -> None:
        """Forget every entry in O(1) by advancing to a fresh epoch."""
        self.epoch = next(SingleEntryMemo._epochs)


class PerNodeDictMemo(DeriveMemo):
    """A full hash table per node, stored in the node's ``memo_table`` field.

    This is the strategy the paper compares the single-entry memo against in
    Figures 11 and 12: it never recomputes a derivative but pays a dictionary
    lookup and insertion per call.

    The per-node storage is **owner-keyed**: ``memo_table`` holds a small
    mapping from an owner token — unique to each memo instance since its
    last ``clear`` — to that owner's private token→result table.  A node's
    entries are only ever read by the memo that wrote them, so when two
    dict-memo parsers share one grammar graph each sees only its own
    derivatives, neither evicts the other's tables on interleaved use, and
    clearing one memo can neither drop nor resurrect entries belonging to
    the other.

    The hot path uses only plain dictionaries — no weak containers — but the
    owner indirection does add one small-dict lookup per get/put compared to
    the pre-isolation layout (node field → token table directly).  That is a
    deliberate trade: collapsing the indirection either re-introduces
    whole-table eviction when two dict-memo parsers interleave on one
    grammar (single owner slot per node) or moves the tables into the memo
    keyed by node — which is structurally the :class:`NestedDictMemo`
    "global table of tables" layout and would erase the node-field-vs-global
    distinction Section 4.4 compares.  Readers of the Figure 11/12 numbers
    should know the dict strategy carries this one extra lookup.

    Leak safety comes from a ``weakref.finalize`` registered per owner
    generation: grammar nodes are long-lived and shared, so a parser dropped
    without calling ``clear`` must not pin its derivative tables — and
    through them its entire derived grammar — on the shared nodes forever.
    When the memo dies, the finalizer sweeps its entries off every node it
    touched.
    """

    name = "dict"

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        super().__init__(metrics)
        self._owner: object = object()
        self._touched: List[Language] = []
        self._finalizer = weakref.finalize(
            self, PerNodeDictMemo._sweep, self._owner, self._touched
        )

    @staticmethod
    def _sweep(owner: object, touched: List[Language]) -> None:
        """Remove one owner generation's tables from every touched node."""
        for node in touched:
            tables = node.memo_table
            if tables is not None:
                tables.pop(owner, None)
                if not tables:
                    node.memo_table = None
        touched.clear()

    def get(self, node: Language, token: Any) -> Any:
        """Return this owner's entry for ``(node, token)``, or MISS."""
        tables = node.memo_table
        if tables is None:
            return MISS
        table = tables.get(self._owner)
        if table is None:
            return MISS
        return table.get(token, MISS)

    def put(self, node: Language, token: Any, result: Language) -> None:
        """Record ``result`` in this owner's private table on ``node``."""
        tables = node.memo_table
        if tables is None:
            tables = {}
            node.memo_table = tables
        table = tables.get(self._owner)
        if table is None:
            # First write to this node since construction/clear: one
            # _touched entry per (node, owner generation), no duplicates.
            table = {}
            tables[self._owner] = table
            self._touched.append(node)
        table[token] = result

    def clear(self) -> None:
        """Drop only this memo's tables; co-owners of a node are untouched."""
        # Drop only this memo's tables; co-owners of a node are untouched.
        self._finalizer.detach()
        PerNodeDictMemo._sweep(self._owner, self._touched)
        self._touched = []
        # A fresh owner token guarantees any table that escaped the sweep can
        # never be read (or silently extended) by this memo again; its
        # finalizer releases them when this memo (or the next clear) retires.
        self._owner = object()
        self._finalizer = weakref.finalize(
            self, PerNodeDictMemo._sweep, self._owner, self._touched
        )

    def entry_distribution(self) -> Dict[int, int]:
        """Entries-per-node histogram for this owner's tables (Figure 10)."""
        distribution: Dict[int, int] = {}
        for node in self._touched:
            tables = node.memo_table
            table = tables.get(self._owner) if tables is not None else None
            if not table:
                continue
            size = len(table)
            distribution[size] = distribution.get(size, 0) + 1
        return distribution


class PersistentDictMemo(PerNodeDictMemo):
    """A grammar-lifetime variant of :class:`PerNodeDictMemo`.

    The paper's strategies are *per-parse* caches: :meth:`DeriveMemo.clear`
    is called between timed parses, and :meth:`DerivativeParser.reset`
    forwards to it.  A compiled grammar table (:mod:`repro.compile`) has the
    opposite contract — its derivative memo **is** the transition cache, and
    must survive every parse, every ``reset`` and every parser instance that
    shares the grammar.  This subclass therefore turns :meth:`clear` into a
    no-op; dropping the entries means dropping the memo (with its table).

    Ownership isolation and leak safety are inherited unchanged: entries are
    owner-keyed on the shared nodes, and the ``weakref.finalize`` sweep still
    releases every table the moment the memo itself is garbage collected —
    unless the memo is :meth:`bind_to_graph`-bound, in which case entries
    and nodes die together as one cycle.
    """

    name = "persistent"

    def clear(self) -> None:
        """No-op: persistent memos survive per-parse cache clears."""

    def bind_to_graph(self) -> None:
        """Declare that this memo lives exactly as long as its grammar graph.

        Disables the death-sweep finalizer: the sweep exists so a memo dying
        *before* the long-lived shared nodes does not pin its entries (and
        through them whole derived grammars) on those nodes forever.  When
        the graph instead holds a strong reference back to the memo's owner
        — the grammar-anchored compiled table stores itself on the root
        node — the finalizer's strong hold on the touched nodes would make
        graph, owner and memo collectively immortal (``weakref.finalize``
        keeps its arguments alive in a global registry until it fires).
        Bound memos drop the sweep; their entries die with the nodes, as
        one garbage-collected cycle.
        """
        self._finalizer.detach()

    def entry_count(self) -> int:
        """Total number of memoized derivatives currently held."""
        total = 0
        for node in self._touched:
            tables = node.memo_table
            table = tables.get(self._owner) if tables is not None else None
            if table:
                total += len(table)
        return total


class NestedDictMemo(DeriveMemo):
    """The original nested-hash-table strategy of Might et al. (2011).

    A global dictionary maps each node to an inner dictionary keyed by token.
    This is the slowest strategy and exists mainly so the reproduction can
    measure how much of the original implementation's cost it accounts for.
    """

    name = "nested"

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        super().__init__(metrics)
        self._tables: Dict[Language, Dict[Any, Language]] = {}

    def get(self, node: Language, token: Any) -> Any:
        """Return the global table's entry for ``(node, token)``, or MISS."""
        inner = self._tables.get(node)
        if inner is None:
            return MISS
        return inner.get(token, MISS)

    def put(self, node: Language, token: Any, result: Language) -> None:
        """Record ``result`` in the global node → token → result table."""
        inner = self._tables.get(node)
        if inner is None:
            inner = {}
            self._tables[node] = inner
        inner[token] = result

    def clear(self) -> None:
        """Drop the whole global table of tables."""
        self._tables = {}

    def entry_distribution(self) -> Dict[int, int]:
        """Entries-per-node histogram over the global tables (Figure 10)."""
        distribution: Dict[int, int] = {}
        for inner in self._tables.values():
            if not inner:
                continue
            size = len(inner)
            distribution[size] = distribution.get(size, 0) + 1
        return distribution


MEMO_STRATEGIES: Dict[str, type] = {
    SingleEntryMemo.name: SingleEntryMemo,
    PerNodeDictMemo.name: PerNodeDictMemo,
    PersistentDictMemo.name: PersistentDictMemo,
    NestedDictMemo.name: NestedDictMemo,
}


def make_memo(strategy: str, metrics: Optional[Metrics] = None) -> DeriveMemo:
    """Construct a memo strategy by name (``single``, ``dict``, ``persistent`` or ``nested``)."""
    try:
        cls = MEMO_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            "unknown memo strategy {!r}; expected one of {}".format(
                strategy, sorted(MEMO_STRATEGIES)
            )
        ) from None
    return cls(metrics)


def single_entry_fraction(distribution: Dict[int, int]) -> float:
    """Fraction of memo tables holding exactly one entry (Figure 10's y-axis)."""
    total = sum(distribution.values())
    if total == 0:
        return 1.0
    return distribution.get(1, 0) / total
