"""Compaction: smart constructors that simplify grammars as they are built.

Section 4.3 of the paper improves the *compaction* process of Might et al.
(2011) in three ways, all of which are implemented here:

1. The original reduction rules are kept, two overlooked rules are added
   (``∅ ↪→ f ⇒ ∅`` and ``ε_s1 ∪ ε_s2 ⇒ ε_{s1 ∪ s2}``), and one redundant
   rule is dropped.
2. Rules that inspect the *right*-hand child of a sequence node are applied
   only to the initial grammar (Section 4.3.1, Theorem 10), because
   derivatives never change the right child of a sequence.
3. Chains of sequence nodes are canonicalized to be right-associated and
   reduction nodes are floated above sequences (Section 4.3.2) so that
   ``derive`` traverses O(1) nodes per sequence chain instead of O(length).
4. Compaction happens *inline*, at node-construction time, instead of as a
   separate pass between derivatives (Section 4.3.3).  When the structure of
   a child is not yet known — the child is a partially-constructed node that
   is part of a cycle — the smart constructor simply punts and builds the
   uncompacted form.

The :class:`Compactor` exposes one ``make_*`` method per grammar form; every
rule can be switched off individually through :class:`CompactionConfig` so
the ablation benchmarks can measure the contribution of each group of rules.

On top of the paper's rules, the compactor **hash-conses** its results
(``hash_consing`` in :class:`CompactionConfig`, on by default): after the
rewrite rules have fired, a surviving ``∪``/``◦``/``↪→``/``δ`` construction
is interned in a per-compactor table keyed by form + child *identity*, so
structurally identical acyclic results are one canonical node.  Repeated
derivations that would previously have rebuilt isomorphic sub-graphs now
return the existing node, which shrinks derivative graphs, collapses
compiled-automaton states that were distinct-but-isomorphic, and reduces
derive-memo entries (the Figure 10 quantity).  Child-identity keys hold
strong references, so the table's lifetime follows its owner — the parser
for the interpreted engine (cleared by ``DerivativeParser.reset``), the
grammar itself for the compiled engine (alongside its
:class:`~repro.core.memo.PersistentDictMemo`).

Cycle participants never reach the table.  Merging two structurally
identical nodes is *not* always invisible: tree enumeration cuts off when
it re-enters a node already on the current extraction path, so fusing an
off-cycle occurrence with an on-cycle one moves the cut-off point and
changes which finite trees of an infinite forest are produced (the
differential interning suite exercises exactly this).  The smart
constructors therefore skip interning — both lookup and insert — whenever a
child is a cycle participant: an under-construction placeholder, an
``observed`` placeholder (the deriver's cycle path fills those in place,
bypassing the smart constructors), or a node flagged ``reaches_cycle``
(initial-grammar recursion, marked by ``optimize_initial_grammar``; the
flag then propagates child→parent through the constructors).  Acyclic
regions — ε leaves, reductions over them, and everything built purely from
them — keep the full hash-consing benefit.

Interning is otherwise sound under this repository's mutation discipline:
after construction, a node's children change only through
:func:`repro.core.prune.prune_empty`, which is semantics-preserving, so an
interned node always still denotes the language its key describes.
Reduction functions are keyed by *identity* (structural hashing of fused
``Compose`` chains would recurse as deep as the chain), wrapped so the key
pins the function object against garbage collection and id reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from .languages import (
    EMPTY,
    Alt,
    Cat,
    Delta,
    Empty,
    Epsilon,
    Language,
    Reduce,
    Ref,
    reachable_nodes,
)
from .forest import trees_equal
from .metrics import Metrics
from .reductions import (
    Identity,
    MapFirst,
    MapSecond,
    PairLeft,
    PairRight,
    ReassocToLeft,
    compose,
)

__all__ = ["CompactionConfig", "Compactor", "optimize_initial_grammar"]


@dataclass
class CompactionConfig:
    """Feature switches for the compaction rules.

    Attributes
    ----------
    enabled:
        Master switch.  When False the smart constructors degenerate to the
        plain node constructors (the paper's "without compaction" setting,
        reported in Section 2.6 to be ~90× slower).
    null_rules:
        ``∅ ∪ p ⇒ p``, ``p ∪ ∅ ⇒ p`` and ``∅ ◦ p ⇒ ∅`` (original rules).
    epsilon_rules:
        ``ε_s ◦ p ⇒ p ↪→ λu.(s,u)`` and ``ε_s ↪→ f ⇒ ε_{f(s)}`` (original).
    reduction_fusion:
        ``(p ↪→ f) ↪→ g ⇒ p ↪→ (g ∘ f)`` (original rule).
    new_rules:
        The two rules added by this paper: ``∅ ↪→ f ⇒ ∅`` and
        ``ε_s1 ∪ ε_s2 ⇒ ε_{s1∪s2}``.
    canonicalize_sequences:
        The Section 4.3.2 associativity rule ``(p1 ◦ p2) ◦ p3 ⇒ ...``.
    float_reductions:
        The Section 4.3.2 rule ``(p1 ↪→ f) ◦ p2 ⇒ (p1 ◦ p2) ↪→ ...``.
    hash_consing:
        Intern acyclic smart-constructor results in a per-compactor table
        keyed by form + child identity, so structurally identical nodes are
        shared (this repository's addition; see the module docstring).
    """

    enabled: bool = True
    null_rules: bool = True
    epsilon_rules: bool = True
    reduction_fusion: bool = True
    new_rules: bool = True
    canonicalize_sequences: bool = True
    float_reductions: bool = True
    hash_consing: bool = True

    @classmethod
    def disabled(cls) -> "CompactionConfig":
        """Compaction completely off (original parser without compaction)."""
        return cls(
            enabled=False,
            null_rules=False,
            epsilon_rules=False,
            reduction_fusion=False,
            new_rules=False,
            canonicalize_sequences=False,
            float_reductions=False,
            hash_consing=False,
        )

    @classmethod
    def original_2011(cls) -> "CompactionConfig":
        """Only the rules present in Might et al. (2011)."""
        return cls(
            enabled=True,
            null_rules=True,
            epsilon_rules=True,
            reduction_fusion=True,
            new_rules=False,
            canonicalize_sequences=False,
            float_reductions=False,
            hash_consing=False,
        )

    @classmethod
    def full(cls) -> "CompactionConfig":
        """Every rule described in Section 4.3 (the improved parser default)."""
        return cls()


def _structure_known(node: Optional[Language]) -> bool:
    """True when a node's children may safely be inspected by a rule.

    Partially-constructed placeholder nodes (created by ``derive`` before
    recurring, to break cycles) advertise ``under_construction``; inspecting
    them "would result in a cycle" in the paper's words, so rules punt.
    """
    return node is not None and not node.under_construction


def _cycle_participant(node: Language) -> bool:
    """True when ``node`` may lie on a graph cycle (module docstring).

    Such a node must not appear in a hash-consing key: merging two parents
    over it could fuse an off-cycle occurrence into the cycle and move the
    tree-enumeration cut-off point.
    """
    return node.under_construction or node.observed or node.reaches_cycle


#: Payload types whose hash is depth-free, safe for ε interning keys.
_SCALARS = (str, bytes, int, float, bool, type(None))


def _shallow_payload(value: Any, depth: int = 3) -> bool:
    """True when hashing ``value`` cannot recurse deeply.

    ε nodes carry parse-tree payloads that can be nested pair tuples as deep
    as the input consumed so far; hashing those would recurse on the C stack
    with no interpreter guard.  Interning therefore only considers payloads
    that are provably shallow: scalars, token-like objects (a ``kind`` plus
    a scalar ``value`` — the shape of :class:`repro.lexer.tokens.Tok`, whose
    hash covers exactly those two fields), and small tuples of these up to a
    fixed depth.  Everything else simply skips interning — sound, just
    unshared.
    """
    if isinstance(value, _SCALARS):
        return True
    if isinstance(value, tuple):
        return depth > 0 and len(value) <= 4 and all(
            _shallow_payload(part, depth - 1) for part in value
        )
    kind = getattr(value, "kind", None)
    if kind is not None:
        return isinstance(kind, _SCALARS) and isinstance(
            getattr(value, "value", None), _SCALARS
        )
    return False


def _epsilon_intern_key(trees: tuple) -> Optional[tuple]:
    """The hash-consing key for an ε node, or None when not internable.

    Keyed by *payload equality* (not identity): two ε nodes with equal tree
    tuples denote the same language with the same parses, so sharing them is
    what lets the identity-keyed composite interning above them cascade —
    token-match ε leaves are where most duplication in derivative graphs
    starts.
    """
    if len(trees) != 1 or not _shallow_payload(trees[0]):
        return None
    return ("ε", trees[0])


class _FnKey:
    """Identity key for a reduction function in the hash-consing table.

    Reduction functions compare structurally, but hashing a fused
    ``Compose`` chain recurses as deep as the chain (one link per input
    token), so the identity fallback holds the function strongly — a
    collected function's id can never be reused by a different one while
    the key is live.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def __hash__(self) -> int:
        return object.__hash__(self.fn)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _FnKey) and self.fn is other.fn


def _fn_intern_key(fn: Callable[[Any], Any]) -> Any:
    """The hash-consing key for a reduction function.

    The compaction rules allocate their reducers fresh on every rewrite, so
    keying by identity alone would make ``↪`` entries unmatchable.  The
    shapes whose equality is cheap and depth-free get structural keys —
    the stateless :class:`ReassocToLeft` and the pairing reducers carrying
    shallow payloads (the common ``ε_s ◦ p`` case, where ``s`` is a token
    value) — and everything else (``Compose`` chains, ``MapFirst`` over
    arbitrary inner functions) falls back to identity via :class:`_FnKey`.
    """
    if isinstance(fn, ReassocToLeft):
        return "reassoc"
    if isinstance(fn, PairLeft) and _shallow_payload(fn.left):
        return ("pairL", fn.left)
    if isinstance(fn, PairRight) and _shallow_payload(fn.right):
        return ("pairR", fn.right)
    return _FnKey(fn)


class Compactor:
    """Smart constructors implementing the reduction rules of Section 4.3,
    plus grammar-scoped hash-consing of their results (module docstring)."""

    def __init__(
        self,
        config: Optional[CompactionConfig] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.config = config if config is not None else CompactionConfig.full()
        self.metrics = metrics if metrics is not None else Metrics()
        #: The hash-consing table: (form, children identity...) -> canonical
        #: node.  Strong references throughout; the owner decides the
        #: lifetime (see reset_interning).
        self._intern: dict = {}

    # ----------------------------------------------------------- primitives
    def _count_node(self) -> None:
        self.metrics.nodes_created += 1

    def _count_rewrite(self) -> None:
        self.metrics.compaction_rewrites += 1

    # ---------------------------------------------------------- hash-consing
    @property
    def interning(self) -> bool:
        """Whether the smart constructors hash-cons their results."""
        return self.config.enabled and self.config.hash_consing

    def interned_count(self) -> int:
        """Number of canonical nodes currently held by the interning table."""
        return len(self._intern)

    def reset_interning(self) -> None:
        """Drop every interned node (called by ``DerivativeParser.reset``).

        Canonical nodes are strongly held by their keys, so a per-parse
        engine that clears its derive memo must clear the interning table
        too or derived nodes would accumulate across parses.  Grammar-owned
        compactors (the compiled engine's) deliberately never call this —
        their table *is* the cross-parse cache.
        """
        self._intern.clear()

    def _intern_node(self, key: tuple, build: Callable[[], Language]) -> Language:
        node = self._intern.get(key)
        if node is not None:
            self.metrics.hash_cons_hits += 1
            return node
        self.metrics.hash_cons_misses += 1
        self._count_node()
        node = build()
        self._intern[key] = node
        return node

    def make_epsilon(self, trees: Iterable[Any]) -> Epsilon:
        """Construct an ``ε`` node carrying ``trees`` (interned when shallow)."""
        trees = tuple(trees)
        if self.config.enabled and self.config.hash_consing:
            key = _epsilon_intern_key(trees)
            if key is not None:
                return self._intern_node(key, lambda: Epsilon(trees))
        self._count_node()
        return Epsilon(trees)

    # ------------------------------------------------------------------ alt
    def make_alt(self, left: Language, right: Language) -> Language:
        """Construct ``left ∪ right``, applying the union reduction rules."""
        cfg = self.config
        if cfg.enabled:
            if cfg.null_rules:
                if left is EMPTY or isinstance(left, Empty):
                    self._count_rewrite()
                    return right
                if right is EMPTY or isinstance(right, Empty):
                    self._count_rewrite()
                    return left
            if (
                cfg.new_rules
                and isinstance(left, Epsilon)
                and isinstance(right, Epsilon)
                and _structure_known(left)
                and _structure_known(right)
            ):
                # ε_s1 ∪ ε_s2 ⇒ ε_{s1 ∪ s2} (one of the paper's added rules)
                self._count_rewrite()
                return self.make_epsilon(_merge_trees(left.trees, right.trees))
        tainted = _cycle_participant(left) or _cycle_participant(right)
        if cfg.enabled and cfg.hash_consing and not tainted:
            return self._intern_node(("∪", left, right), lambda: Alt(left, right))
        self._count_node()
        node = Alt(left, right)
        node.reaches_cycle = tainted
        return node

    # ------------------------------------------------------------------ cat
    def make_cat(self, left: Language, right: Language) -> Language:
        """Construct ``left ◦ right``, applying the sequence reduction rules.

        Only rules that inspect the *left* child are applied here; the
        right-child rules are restricted to the initial grammar
        (:func:`optimize_initial_grammar`), per Section 4.3.1.
        """
        cfg = self.config
        if cfg.enabled:
            if cfg.null_rules and (left is EMPTY or isinstance(left, Empty)):
                # ∅ ◦ p ⇒ ∅
                self._count_rewrite()
                return EMPTY
            if cfg.epsilon_rules and isinstance(left, Epsilon) and _structure_known(left):
                # ε_s ◦ p ⇒ p ↪→ λu.(s, u)
                if len(left.trees) == 1:
                    self._count_rewrite()
                    return self.make_reduce(right, PairLeft(left.trees[0]))
            if (
                cfg.float_reductions
                and isinstance(left, Reduce)
                and _structure_known(left)
                and left.lang is not None
            ):
                # (p1 ↪→ f) ◦ p2 ⇒ (p1 ◦ p2) ↪→ λ(t1,t2).(f(t1), t2)
                self._count_rewrite()
                return self.make_reduce(self.make_cat(left.lang, right), MapFirst(left.fn))
            if (
                cfg.canonicalize_sequences
                and isinstance(left, Cat)
                and _structure_known(left)
                and left.left is not None
                and left.right is not None
            ):
                # (p1 ◦ p2) ◦ p3 ⇒ (p1 ◦ (p2 ◦ p3)) ↪→ reassociate
                self._count_rewrite()
                inner = self.make_cat(left.right, right)
                return self.make_reduce(self.make_cat(left.left, inner), ReassocToLeft())
        tainted = _cycle_participant(left) or _cycle_participant(right)
        if cfg.enabled and cfg.hash_consing and not tainted:
            return self._intern_node(("◦", left, right), lambda: Cat(left, right))
        self._count_node()
        node = Cat(left, right)
        node.reaches_cycle = tainted
        return node

    # --------------------------------------------------------------- reduce
    def make_reduce(self, lang: Language, fn: Callable[[Any], Any]) -> Language:
        """Construct ``lang ↪→ fn``, applying the reduction-node rules."""
        cfg = self.config
        if cfg.enabled:
            if cfg.new_rules and (lang is EMPTY or isinstance(lang, Empty)):
                # ∅ ↪→ f ⇒ ∅ (one of the paper's added rules)
                self._count_rewrite()
                return EMPTY
            if cfg.epsilon_rules and isinstance(lang, Epsilon) and _structure_known(lang):
                # ε_s ↪→ f ⇒ ε_{f(s)}
                self._count_rewrite()
                return self.make_epsilon(tuple(fn(tree) for tree in lang.trees))
            if (
                cfg.reduction_fusion
                and isinstance(lang, Reduce)
                and _structure_known(lang)
                and lang.lang is not None
            ):
                # (p ↪→ f) ↪→ g ⇒ p ↪→ (g ∘ f)
                self._count_rewrite()
                return self.make_reduce(lang.lang, compose(fn, lang.fn))
            if isinstance(fn, Identity):
                return lang
        tainted = _cycle_participant(lang)
        if cfg.enabled and cfg.hash_consing and not tainted:
            return self._intern_node(("↪", lang, _fn_intern_key(fn)), lambda: Reduce(lang, fn))
        self._count_node()
        node = Reduce(lang, fn)
        node.reaches_cycle = tainted
        return node

    # ---------------------------------------------------------------- delta
    def make_delta(self, lang: Language) -> Language:
        """Construct ``δ(lang)`` — the null-parse projection of ``lang``.

        When the null parses of ``lang`` are already syntactically evident —
        ``lang`` is an ``ε`` node, or itself a ``δ`` node — the existing node
        is reused instead of wrapping it again.
        """
        cfg = self.config
        if cfg.enabled:
            if isinstance(lang, Epsilon) and _structure_known(lang):
                self._count_rewrite()
                return lang
            if isinstance(lang, Delta) and _structure_known(lang):
                self._count_rewrite()
                return lang
            if cfg.null_rules and (lang is EMPTY or isinstance(lang, Empty)):
                self._count_rewrite()
                return EMPTY
        tainted = _cycle_participant(lang)
        if cfg.enabled and cfg.hash_consing and not tainted:
            return self._intern_node(("δ", lang), lambda: Delta(lang))
        self._count_node()
        node = Delta(lang)
        node.reaches_cycle = tainted
        return node

    # ---------------------------------------------------------- raw builders
    def raw_alt(self) -> Alt:
        """Construct an empty (placeholder) ``∪`` node without compaction."""
        self._count_node()
        self.metrics.placeholders_created += 1
        return Alt(None, None)

    def raw_cat(self) -> Cat:
        """Construct an empty (placeholder) ``◦`` node without compaction."""
        self._count_node()
        self.metrics.placeholders_created += 1
        return Cat(None, None)

    def raw_reduce(self, fn: Callable[[Any], Any]) -> Reduce:
        """Construct a placeholder ``↪→`` node without compaction."""
        self._count_node()
        self.metrics.placeholders_created += 1
        return Reduce(None, fn)

    def raw_ref(self, ref_name: str) -> Ref:
        """Construct a placeholder non-terminal reference without compaction."""
        self._count_node()
        self.metrics.placeholders_created += 1
        return Ref(ref_name, None)


def _merge_trees(left: tuple, right: tuple) -> tuple:
    """Union two tree tuples, preserving order and dropping duplicates.

    Uses depth-safe structural equality: the merged trees come from parses
    of arbitrarily long inputs, so ``==`` on them could blow the C stack.
    """
    merged = list(left)
    for tree in right:
        if not any(trees_equal(tree, existing) for existing in merged):
            merged.append(tree)
    return tuple(merged)


def _node_children(node: Language) -> tuple:
    """The child edges the cycle-marking DFS must follow (including Ref→target)."""
    if isinstance(node, (Alt, Cat)):
        return (node.left, node.right)
    if isinstance(node, (Reduce, Delta)):
        return (node.lang,)
    if isinstance(node, Ref):
        return (node.target,)
    return ()


def _mark_grammar_cycles(root: Language) -> None:
    """Set ``reaches_cycle`` on every node that lies on a cycle under ``root``.

    Grammar recursion (``Ref`` loops) puts whole regions of the graph on
    cycles before any derivative is taken; the smart constructors must know
    about those nodes so they never merge two parents built over them
    (module docstring).  Iterative DFS: a back edge to a node still on the
    current path marks the entire path segment from that node down.  The
    flag is monotone, so re-marking a shared or already-derived graph is
    sound and idempotent.
    """
    gray, black = 1, 2
    color: dict = {id(root): gray}
    path: list = [root]
    path_index: dict = {id(root): 0}
    stack: list = [(root, iter(_node_children(root)))]
    while stack:
        node, children = stack[-1]
        advanced = False
        for child in children:
            if child is None:
                continue
            state = color.get(id(child))
            if state is None:
                color[id(child)] = gray
                path_index[id(child)] = len(path)
                path.append(child)
                stack.append((child, iter(_node_children(child))))
                advanced = True
                break
            if state == gray:
                # Back edge: the path from ``child`` to ``node`` is a cycle.
                for member in path[path_index[id(child)]:]:
                    member.reaches_cycle = True
        if not advanced:
            stack.pop()
            popped = path.pop()
            del path_index[id(popped)]
            color[id(popped)] = black


def optimize_initial_grammar(
    root: Language,
    compactor: Optional[Compactor] = None,
    max_passes: int = 25,
) -> Language:
    """Apply every compaction rule — including right-child rules — to a grammar.

    Section 4.3.1 proves (Theorem 10) that the forms ``p ◦ ε`` and ``p ◦ ∅``
    cannot arise during parsing unless the initial grammar contains them, so
    the rules rewriting them (and the right-hand reduction-floating rule of
    Section 4.3.2) are applied once, here, before parsing starts.  This frees
    ``derive`` from ever inspecting the right child of a sequence node.

    The grammar graph may be cyclic, so the rewrite runs as a small fixpoint:
    each pass examines every reachable node and replaces children whose local
    structure matches a rule; passes repeat until nothing changes (or
    ``max_passes`` is hit, which only happens for adversarial inputs).
    """
    compactor = compactor if compactor is not None else Compactor()
    _mark_grammar_cycles(root)
    for _ in range(max_passes):
        changed = False
        cache: dict[int, Language] = {}
        new_root = _rewrite_initial(root, compactor, cache)
        if new_root is not root:
            root = new_root
            changed = True
        for node in reachable_nodes(root):
            if isinstance(node, (Alt, Cat)):
                if node.left is not None:
                    new_left = _rewrite_initial(node.left, compactor, cache)
                    if new_left is not node.left:
                        node.left = new_left
                        changed = True
                if node.right is not None:
                    new_right = _rewrite_initial(node.right, compactor, cache)
                    if new_right is not node.right:
                        node.right = new_right
                        changed = True
            elif isinstance(node, Reduce):
                if node.lang is not None:
                    new_lang = _rewrite_initial(node.lang, compactor, cache)
                    if new_lang is not node.lang:
                        node.lang = new_lang
                        changed = True
            elif isinstance(node, Ref):
                if node.target is not None:
                    new_target = _rewrite_initial(node.target, compactor, cache)
                    if new_target is not node.target:
                        node.target = new_target
                        changed = True
        if not changed:
            break
    return root


def _rewrite_initial(node: Language, compactor: Compactor, cache: dict[int, Language]) -> Language:
    """Rewrite a single node using the full (initial-grammar) rule set.

    Shared children are rewritten once per pass (``cache`` preserves sharing).
    The function only constructs new nodes when a rule actually applies.
    """
    cached = cache.get(id(node))
    if cached is not None:
        return cached
    result = _rewrite_initial_uncached(node, compactor, cache)
    cache[id(node)] = result
    return result


def _rewrite_initial_uncached(
    node: Language, compactor: Compactor, cache: dict[int, Language]
) -> Language:
    cfg = compactor.config
    if not cfg.enabled:
        return node

    if isinstance(node, Alt) and node.left is not None and node.right is not None:
        left, right = node.left, node.right
        if cfg.null_rules and isinstance(left, Empty):
            compactor._count_rewrite()
            return right
        if cfg.null_rules and isinstance(right, Empty):
            compactor._count_rewrite()
            return left
        if cfg.new_rules and isinstance(left, Epsilon) and isinstance(right, Epsilon):
            compactor._count_rewrite()
            return compactor.make_epsilon(_merge_trees(left.trees, right.trees))
        return node

    if isinstance(node, Reduce) and node.lang is not None:
        lang = node.lang
        if cfg.new_rules and isinstance(lang, Empty):
            compactor._count_rewrite()
            return EMPTY
        if cfg.epsilon_rules and isinstance(lang, Epsilon):
            compactor._count_rewrite()
            return compactor.make_epsilon(tuple(node.fn(tree) for tree in lang.trees))
        if cfg.reduction_fusion and isinstance(lang, Reduce) and lang.lang is not None:
            compactor._count_rewrite()
            return compactor.make_reduce(lang.lang, compose(node.fn, lang.fn))
        return node

    if isinstance(node, Cat) and node.left is not None and node.right is not None:
        left, right = node.left, node.right
        # Left-child rules (also applied during parsing).
        if cfg.null_rules and isinstance(left, Empty):
            compactor._count_rewrite()
            return EMPTY
        if cfg.epsilon_rules and isinstance(left, Epsilon) and len(left.trees) == 1:
            compactor._count_rewrite()
            return compactor.make_reduce(right, PairLeft(left.trees[0]))
        # Right-child rules (initial grammar only, Section 4.3.1).
        if cfg.null_rules and isinstance(right, Empty):
            compactor._count_rewrite()
            return EMPTY
        if cfg.epsilon_rules and isinstance(right, Epsilon) and len(right.trees) == 1:
            compactor._count_rewrite()
            return compactor.make_reduce(left, PairRight(right.trees[0]))
        if cfg.float_reductions and isinstance(left, Reduce) and left.lang is not None:
            compactor._count_rewrite()
            return compactor.make_reduce(compactor.make_cat(left.lang, right), MapFirst(left.fn))
        if cfg.float_reductions and isinstance(right, Reduce) and right.lang is not None:
            compactor._count_rewrite()
            return compactor.make_reduce(
                compactor.make_cat(left, right.lang), MapSecond(right.fn)
            )
        if cfg.canonicalize_sequences and isinstance(left, Cat) and left.left is not None:
            compactor._count_rewrite()
            inner = compactor.make_cat(left.right, right)
            return compactor.make_reduce(compactor.make_cat(left.left, inner), ReassocToLeft())
        return node

    return node
