"""Exception types used throughout the reproduction."""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = ["ReproError", "GrammarError", "ParseError", "EmptyForestError", "LexError"]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class GrammarError(ReproError):
    """A grammar is malformed (unresolved reference, pure-Ref cycle, ...)."""


class ParseError(ReproError):
    """The input is not in the language of the grammar.

    Attributes
    ----------
    position:
        Index of the token at which the parse failed (the first token whose
        derivative produced the empty language), or the input length when the
        whole input was consumed but the final language was not nullable.
    token:
        The offending token, if any.
    """

    def __init__(
        self,
        message: str,
        position: Optional[int] = None,
        token: Any = None,
        tokens: Optional[Sequence[Any]] = None,
    ) -> None:
        super().__init__(message)
        self.position = position
        self.token = token
        self.tokens = list(tokens) if tokens is not None else None

    def __str__(self) -> str:
        base = super().__str__()
        if self.position is not None:
            return "{} (at token index {}: {!r})".format(base, self.position, self.token)
        return base


class EmptyForestError(ParseError, ValueError):
    """A parse forest holds zero finite trees.

    Raised by tree extraction (``first_tree``, ranked enumeration, uniform
    sampling) when every alternative of the forest was cut by the cycle
    guard, so the input is *recognized* but no finite tree exists.  Inherits
    ``ValueError`` so long-standing ``except ValueError`` call sites keep
    working, while carrying ``ParseError`` diagnostics (position/tokens).
    """


class LexError(ReproError):
    """The lexer could not tokenize the input."""

    def __init__(self, message: str, position: Optional[int] = None) -> None:
        super().__init__(message)
        self.position = position
