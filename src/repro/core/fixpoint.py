"""The unified fixed-point analysis kernel (Section 4.2, engine-agnostic).

Every acceleration in the paper's Section 4.2 — and every grammar analysis in
this repository — is an instance of one algorithm: a *least fixed point over a
join-semilattice, solved with a dependency-tracked worklist, whose results are
tentative while the fixed point is running and promoted to final when it
completes*.  Before this module existed the repository implemented that
algorithm four separate times (nullability, productivity, the classical
nullable/FIRST/FOLLOW computations, and the regex recognizer's nullability);
now each of those is a :class:`FixpointAnalysis` declaration — a lattice
bottom, a dependency function and a transfer function, typically ~30 lines —
executed by the one :class:`FixpointSolver` below.

The solver's contract, in the paper's vocabulary:

* **Dependency tracking (Kildall).**  A discovery sweep records, for every
  node whose value is not yet final, which other nodes read it.  During the
  fixed point only the *dependents* of a node whose value grew are revisited,
  so the work is proportional to the number of actual value changes rather
  than to (nodes × passes) as in naive iterate-to-convergence.

* **Tentative → final promotion.**  While a solve is running, values are
  *assumed* (tentative, stored in a per-solve table).  The moment the
  worklist drains, the least fixed point over the discovered region is
  complete, so every tentative value is in fact exact; the solver hands each
  one to :meth:`FixpointAnalysis.finalize`, which typically caches it
  somewhere O(1)-reachable (a node field, an analyzer dictionary).  Later
  queries — e.g. the nullability probes issued by every subsequent
  ``derive`` — never re-enter the solver for a finalized node.

* **Generation labels.**  Each solve run carries a fresh generation number
  (``self.generation``), the device Section 4.2 uses to distinguish "assumed
  during the current fixed point" from "final".  The built-in analyses keep
  their tentative values in the solver's per-run table, so none of them
  needs to read the label; it is exposed (and kept fresh per solve) for
  analyses that instead tag per-node scratch state and must invalidate it
  wholesale between runs.

The solver itself is **iterative** (explicit stacks and deques throughout):
analyses routinely run over derivative graphs whose depth is proportional to
the input length, far beyond the interpreter recursion limit.

Writing a new analysis
----------------------

Subclass :class:`FixpointAnalysis` and declare the lattice::

    class Reachability(FixpointAnalysis):
        '''Which token kinds can begin a word of each node's language.'''

        def bottom(self, node):
            return frozenset()

        def dependencies(self, node):
            return node.children()

        def transfer(self, node, get):
            if isinstance(node, Token):
                return frozenset([node.kind])
            ...  # join the children's values via get(child)

    solver = FixpointSolver(Reachability())
    solver.value(root)

``transfer`` must be *monotone* in its inputs (values only ever grow along
the lattice order) and values must support ``!=``; under those two conditions
the worklist terminates at the unique least fixed point.  Override
:meth:`FixpointAnalysis.final`/:meth:`~FixpointAnalysis.finalize` to persist
results, :meth:`~FixpointAnalysis.key` when nodes are not cheaply hashable
(e.g. structurally-hashed regex nodes key by ``id``), and
:meth:`~FixpointAnalysis.on_evaluate` to feed instrumentation counters.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

from .metrics import Metrics

__all__ = ["NOT_FINAL", "FixpointAnalysis", "FixpointSolver"]


class _NotFinal:
    """Sentinel: the analysis holds no final value for a node."""

    _instance: Optional["_NotFinal"] = None

    def __new__(cls) -> "_NotFinal":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<NOT_FINAL>"


#: Returned by :meth:`FixpointAnalysis.final` when no final value is cached.
NOT_FINAL = _NotFinal()


class FixpointAnalysis:
    """One least-fixed-point analysis, declared as lattice + transfer function.

    Subclasses override the methods below; the defaults give a non-caching
    analysis over identity-hashable nodes.  See the module docstring for a
    worked example.
    """

    # ------------------------------------------------------------- the lattice
    def bottom(self, node: Any) -> Any:
        """The least lattice value, used to seed every discovered node."""
        raise NotImplementedError

    def dependencies(self, node: Any) -> Iterable[Any]:
        """The nodes whose values :meth:`transfer` reads for ``node``.

        Must be consistent with ``transfer``: every node whose value the
        transfer function consults has to appear here, or a change in it
        will not re-trigger the node's evaluation.
        """
        raise NotImplementedError

    def transfer(self, node: Any, get: Any) -> Any:
        """Recompute ``node``'s value, reading other nodes through ``get``.

        ``get(other)`` returns ``other``'s final value when one exists, its
        tentative value while the solve is running, and ``bottom(other)``
        otherwise.  The result must be monotone in those inputs.
        """
        raise NotImplementedError

    # --------------------------------------------------------- final promotion
    def final(self, node: Any) -> Any:
        """The cached final value of ``node``, or :data:`NOT_FINAL`.

        Nodes with final values terminate the discovery sweep: the solver
        neither revisits them nor descends into their dependencies.
        """
        return NOT_FINAL

    def finalize(self, node: Any, value: Any) -> None:
        """Promote a tentative value to final (the fixed point completed)."""

    # ------------------------------------------------------------------ hooks
    def key(self, node: Any) -> Any:
        """The dictionary key identifying ``node`` during a solve.

        Defaults to the node itself (fine for identity-hashed
        :class:`~repro.core.languages.Language` nodes and for plain strings).
        Analyses over structurally-hashed nodes whose hash recurses — deep
        regex ASTs — override this with ``id``; the solver holds strong
        references to every discovered node, so ids are stable for the
        duration of a solve.
        """
        return node

    def on_evaluate(self, node: Any) -> None:
        """Called once per transfer-function evaluation (metrics hook)."""


class FixpointSolver:
    """Dependency-tracked worklist solver executing a :class:`FixpointAnalysis`.

    One solver may be queried repeatedly; each :meth:`solve`/:meth:`value`
    call runs at most one fixed point over the not-yet-final region reachable
    from the queried roots, and promotes everything it computed to final via
    the analysis' :meth:`~FixpointAnalysis.finalize` hook.

    ``metrics.fixpoint_node_evaluations`` counts transfer-function
    evaluations and ``metrics.fixpoint_solves`` counts completed fixed
    points, across every analysis sharing the :class:`Metrics` instance.
    """

    #: Class-level generation source shared by every solver, so generation
    #: labels are unique process-wide (the Section 4.2 labeling device).
    _generations = itertools.count(1)

    def __init__(self, analysis: FixpointAnalysis, metrics: Optional[Metrics] = None) -> None:
        self.analysis = analysis
        self.metrics = metrics if metrics is not None else Metrics()
        #: Generation label of the most recent solve (fresh per run).
        self.generation = 0

    # ------------------------------------------------------------------ API
    def value(self, root: Any) -> Any:
        """Solve (if needed) and return the final value of ``root``."""
        analysis = self.analysis
        cached = analysis.final(root)
        if cached is not NOT_FINAL:
            return cached
        return self.solve([root])[analysis.key(root)]

    def solve(self, roots: Iterable[Any]) -> Dict[Any, Any]:
        """Run one fixed point over the unknown region reachable from ``roots``.

        Returns the value table for every node the solve covered (keyed by
        :meth:`FixpointAnalysis.key`), including roots that were already
        final.  The table is a fresh dictionary owned by the caller.
        """
        analysis = self.analysis
        metrics = self.metrics
        key_of = analysis.key
        final_of = analysis.final
        self.generation = next(FixpointSolver._generations)

        # Discovery sweep: every reachable node without a final value,
        # recording reverse dependencies (child -> dependents) along the way.
        # ``pending`` holds strong references, which is what makes id-based
        # keys (see FixpointAnalysis.key) stable for the run.
        pending: List[Any] = []
        dependents: Dict[Any, List[Any]] = {}
        discovered: set = set()
        values: Dict[Any, Any] = {}
        stack: List[Any] = []
        for root in roots:
            if final_of(root) is not NOT_FINAL:
                values[key_of(root)] = final_of(root)
                continue
            stack.append(root)
        while stack:
            node = stack.pop()
            node_key = key_of(node)
            if node_key in discovered:
                continue
            discovered.add(node_key)
            if final_of(node) is not NOT_FINAL:
                continue
            pending.append(node)
            for child in analysis.dependencies(node):
                child_key = key_of(child)
                dependents.setdefault(child_key, []).append(node)
                if child_key not in discovered and final_of(child) is NOT_FINAL:
                    stack.append(child)

        if not pending:
            return values

        # Tentative phase: seed every unknown node at lattice bottom and
        # propagate monotonically until the worklist drains.
        for node in pending:
            values[key_of(node)] = analysis.bottom(node)

        def get(other: Any) -> Any:
            cached = final_of(other)
            if cached is not NOT_FINAL:
                return cached
            other_key = key_of(other)
            if other_key in values:
                return values[other_key]
            return analysis.bottom(other)

        worklist = deque(pending)
        in_worklist = {key_of(node) for node in pending}
        while worklist:
            node = worklist.popleft()
            node_key = key_of(node)
            in_worklist.discard(node_key)
            metrics.fixpoint_node_evaluations += 1
            analysis.on_evaluate(node)
            new_value = analysis.transfer(node, get)
            if new_value != values[node_key]:
                values[node_key] = new_value
                for parent in dependents.get(node_key, ()):
                    parent_key = key_of(parent)
                    if parent_key not in in_worklist and parent_key in values:
                        worklist.append(parent)
                        in_worklist.add(parent_key)

        # Promotion phase: the worklist drained, so the fixed point over the
        # discovered region is complete and every tentative value is exact.
        for node in pending:
            analysis.finalize(node, values[key_of(node)])
        metrics.fixpoint_solves += 1
        return values
