"""The node-naming scheme of Definition 5 and its audits (Lemmas 6 and 7).

The heart of the paper's complexity argument (Section 3.2) is a naming scheme
for grammar nodes created during parsing:

* **Rule 5a** — every node in the initial grammar gets a unique symbol.
* **Rule 5b** — when ``derive`` is applied to a ``◦`` node whose left child is
  nullable, the resulting ``∪`` node is named ``w•c`` (parent name, a special
  ``•`` marker, the token).
* **Rule 5c** — every other node created by ``derive`` is named ``wc``.

Because the memoization of ``derive`` guarantees two nodes with the same name
are the same node, the number of nodes created during parsing is bounded by
the number of possible names.  Lemma 6 shows the token part of a name is a
contiguous substring of the input (O(n²) possibilities), Lemma 7 shows a name
contains at most one ``•`` (O(n) positions), and Theorem 8 multiplies these by
the initial grammar size ``G`` to obtain the O(G·n³) bound.

This module implements the naming scheme as *optional instrumentation* on the
derivative (it is off by default; it exists to make the proof's invariants
executable) together with audit helpers used by the property tests and by the
``bench_naming_audit`` benchmark.

A caveat the paper itself notes (Section 4.4): the counting argument assumes
every input token is unique.  When tokens repeat, memoization reuses the
derivative computed at an earlier position, so a node named at position *i*
can acquire children whose names skip to a later position; the Lemma 6
contiguity audit is therefore only meaningful on inputs with pairwise-distinct
tokens (repetition only ever *reduces* the number of nodes created, so the
Theorem 8 bound is unaffected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .languages import Language, Reduce, Ref, reachable_nodes

__all__ = ["NodeName", "NamingScheme", "NamingAuditResult", "grammar_label"]


@dataclass(frozen=True)
class NodeName:
    """A node name ``N t1 t2 … [• inserted before index bullet] … tk``.

    Attributes
    ----------
    base:
        The unique symbol of the originating initial-grammar node (Rule 5a).
    positions:
        The input positions of the tokens appended by successive derivatives.
        Storing positions (rather than token texts) makes the Lemma 6 audit —
        "the token part is a contiguous substring of the input" — a direct
        check that the positions are consecutive.
    bullet:
        ``None`` when the name contains no ``•``; otherwise the index into
        ``positions`` *before* which the ``•`` sits (Rule 5b places the ``•``
        immediately before the token that triggered it).
    """

    base: str
    positions: tuple = ()
    bullet: Optional[int] = None

    def extend(self, position: int, with_bullet: bool) -> "NodeName":
        """Append one derivative step (Rule 5b when ``with_bullet`` else 5c)."""
        new_bullet = self.bullet
        if with_bullet:
            new_bullet = len(self.positions)
        return NodeName(self.base, self.positions + (position,), new_bullet)

    @property
    def bullet_count(self) -> int:
        """Number of ``•`` symbols in the name (Lemma 7 says this is ≤ 1)."""
        return 0 if self.bullet is None else 1

    def token_part_is_contiguous(self) -> bool:
        """Lemma 6: positions in a name form a consecutive run of the input."""
        return all(
            later == earlier + 1
            for earlier, later in zip(self.positions, self.positions[1:])
        )

    def render(self, tokens: Optional[Sequence[object]] = None) -> str:
        """Format the name the way the paper does (e.g. ``Mc1•c2c3``)."""
        parts: List[str] = [self.base]
        for index, position in enumerate(self.positions):
            if self.bullet is not None and index == self.bullet:
                parts.append("•")
            if tokens is not None and 0 <= position < len(tokens):
                parts.append(str(tokens[position]))
            else:
                parts.append("c{}".format(position + 1))
        if self.bullet is not None and self.bullet == len(self.positions):
            parts.append("•")
        return "".join(parts)

    def __str__(self) -> str:
        return self.render()


@dataclass
class NamingAuditResult:
    """Summary of the Definition 5 invariants over one parse."""

    total_names: int
    distinct_names: int
    max_bullets_in_a_name: int
    all_token_parts_contiguous: bool
    initial_symbols: int
    input_length: int

    @property
    def lemma7_holds(self) -> bool:
        """Every name contains at most one ``•``."""
        return self.max_bullets_in_a_name <= 1

    @property
    def lemma6_holds(self) -> bool:
        """Every name's token part is a contiguous substring of the input."""
        return self.all_token_parts_contiguous

    @property
    def theorem8_bound(self) -> int:
        """The O(G·n³) bound instantiated for this parse: G·(n+1)²·(n+2)."""
        g = max(self.initial_symbols, 1)
        n = self.input_length
        return g * (n + 1) * (n + 1) * (n + 2)

    @property
    def within_theorem8_bound(self) -> bool:
        """Whether the number of distinct names respects the cubic bound."""
        return self.distinct_names <= self.theorem8_bound


class NamingScheme:
    """Assign Definition 5 names to nodes and collect them for auditing."""

    def __init__(self) -> None:
        self._counter = 0
        self.assigned: List[NodeName] = []
        self.initial_symbols = 0

    # ------------------------------------------------------------- Rule 5a
    def assign_initial(self, root: Language) -> None:
        """Give every node in the initial grammar a unique single-symbol name."""
        for node in reachable_nodes(root):
            if node.name is None:
                node.name = self._fresh_initial_name()
                self.assigned.append(node.name)

    def _fresh_initial_name(self) -> NodeName:
        symbol = _spreadsheet_symbol(self._counter)
        self._counter += 1
        self.initial_symbols += 1
        return NodeName(base=symbol)

    # -------------------------------------------------------- Rules 5b / 5c
    def name_derivative(
        self,
        parent: Language,
        child: Language,
        position: int,
        with_bullet: bool,
    ) -> None:
        """Name a node created by ``derive`` from ``parent`` at input ``position``.

        ``with_bullet`` selects Rule 5b (the ``∪`` node created for a sequence
        node with a nullable left child) over Rule 5c.  Nodes that already
        carry a name — for example pre-existing nodes returned by a compaction
        rule — are left untouched, since the naming argument only needs names
        for *newly constructed* nodes.
        """
        if child.name is not None:
            return
        parent_name = parent.name
        if parent_name is None:
            # The parent was itself unnamed (e.g. created by compaction);
            # treat it as a fresh initial symbol so audits remain conservative.
            parent_name = self._fresh_initial_name()
            parent.name = parent_name
            self.assigned.append(parent_name)
        child.name = parent_name.extend(position, with_bullet)
        self.assigned.append(child.name)

    # ---------------------------------------------------------------- audit
    def audit(self, input_length: int) -> NamingAuditResult:
        """Check the Lemma 6 / Lemma 7 / Theorem 8 invariants over all names."""
        distinct = set(self.assigned)
        max_bullets = max((name.bullet_count for name in self.assigned), default=0)
        contiguous = all(name.token_part_is_contiguous() for name in self.assigned)
        return NamingAuditResult(
            total_names=len(self.assigned),
            distinct_names=len(distinct),
            max_bullets_in_a_name=max_bullets,
            all_token_parts_contiguous=contiguous,
            initial_symbols=self.initial_symbols,
            input_length=input_length,
        )


def grammar_label(root: Language) -> str:
    """A short human-readable label identifying a grammar by its root node.

    Used by ``repr``/diagnostics (e.g. :class:`repro.core.parse.ParserState`)
    to say *which* grammar a state belongs to.  Preference order: the root's
    Definition 5 :class:`NodeName` when the naming instrumentation assigned
    one, the non-terminal name when the root is (or trivially wraps) a
    :class:`~repro.core.languages.Ref` — the shape every
    :meth:`repro.cfg.grammar.Grammar.to_language` conversion produces — and
    otherwise the node's own ``describe()`` rendering.
    """
    node = root
    for _ in range(3):
        if node.name is not None:
            return str(node.name)
        if isinstance(node, Ref):
            return node.ref_name
        if isinstance(node, Reduce) and node.lang is not None:
            node = node.lang
            continue
        break
    return root.describe()


def _spreadsheet_symbol(index: int) -> str:
    """0 → 'A', 1 → 'B', …, 25 → 'Z', 26 → 'AA', … (unique readable symbols)."""
    letters = []
    index += 1
    while index > 0:
        index, remainder = divmod(index - 1, 26)
        letters.append(chr(ord("A") + remainder))
    return "".join(reversed(letters))
