"""Parsing-expression language nodes.

This module defines the grammar representation of Sections 2.2 and 2.5 of
Adams, Hollenbeck & Might (PLDI 2016): a small family of parsing-expression
forms whose instances are linked into a *graph* (cycles encode recursive
non-terminals, exactly as in Figure 4 of the paper).

The forms are:

=============  =====================  ==========================================
Paper form     Class                  Meaning
=============  =====================  ==========================================
``∅``          :class:`Empty`         the empty language (no words)
``ε_s``        :class:`Epsilon`       the empty word, annotated with parse trees
``c``          :class:`Token`         a single terminal token
``L1 ◦ L2``    :class:`Cat`           concatenation
``L1 ∪ L2``    :class:`Alt`           alternation
``L ↪→ f``     :class:`Reduce`        semantic-action / reduction node
``N = ...``    :class:`Ref`           a named non-terminal reference
=============  =====================  ==========================================

Nodes are *mutable in a restricted way*: the children of :class:`Alt`,
:class:`Cat`, :class:`Reduce` and the target of :class:`Ref` may be assigned
after construction.  This is how cyclic grammars are tied together and how the
derivative function installs partially-constructed results in its memo table
before recurring (Section 2.5.2 of the paper).
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Any, Callable, Iterable, Iterator, Optional

__all__ = [
    "Language",
    "Empty",
    "Epsilon",
    "Token",
    "Alt",
    "Cat",
    "Reduce",
    "Delta",
    "Ref",
    "EMPTY",
    "epsilon",
    "token",
    "any_token",
    "reachable_nodes",
    "graph_size",
    "iter_children",
    "terminal_nodes",
    "structural_fingerprint",
    "clone_graph",
]


_NODE_IDS = itertools.count()


class Language:
    """Base class for all parsing-expression nodes.

    Every node carries:

    * ``node_id`` — a monotonically increasing identifier (used for stable
      ordering, debugging and as a hash key),
    * ``name`` — an optional :class:`repro.core.naming.NodeName` assigned by
      the naming instrumentation of Definition 5,
    * private slots used by the nullability analysis and the single-entry
      memoization of ``derive`` (Section 4.4 stores memo results in node
      fields rather than hash tables; those fields live here).
    """

    __slots__ = (
        "node_id",
        "name",
        "under_construction",
        "observed",
        # True when this node may lie on (or be rebuilt onto) a cycle of the
        # grammar/derivative graph.  Hash-consing consults it: merging two
        # structurally identical nodes is observable when one occurrence is
        # on a cycle (tree enumeration cuts off on cycle re-entry, so the
        # merge changes *which* finite trees are reachable), so cycle
        # participants are never interned.  Set by the cycle-marking pass of
        # ``optimize_initial_grammar``, by the deriver when it fills an
        # observed placeholder, and propagated child→parent by the smart
        # constructors.  Monotone: only ever flipped to True.
        "reaches_cycle",
        # the compiled-automaton table (repro.compile), anchored on the
        # grammar root in the node-resident idiom of the memo fields below:
        # the grammar owns its table, every parser built over this root
        # shares it, and grammar + table + cached derivatives are freed
        # together as one garbage-collected cycle (the anchored table's
        # memo disables its death-sweep finalizer so no global registry
        # pins the cycle)
        "compiled_table",
        # single-entry derive memo (Section 4.4)
        "memo_epoch",
        "memo_token",
        "memo_result",
        # per-node dict memo (the "full hash table" strategy of Section 4.4);
        # holds an owner→table dict so memo instances sharing the graph keep
        # disjoint entries and never evict each other
        "memo_table",
        # nullability cache (Section 4.2)
        "null_state",
        "null_generation",
        # parse-null memo
        "null_parse_epoch",
        "null_parse_result",
    )

    def __init__(self) -> None:
        self.node_id = next(_NODE_IDS)
        self.name = None
        self.under_construction = False
        self.observed = False
        self.reaches_cycle = False
        self.compiled_table = None
        self.memo_epoch = -1
        self.memo_token = None
        self.memo_result = None
        self.memo_table = None
        self.null_state = None
        self.null_generation = -1
        self.null_parse_epoch = -1
        self.null_parse_result = None

    # -- structure ---------------------------------------------------------
    def children(self) -> tuple["Language", ...]:
        """Return the direct children of this node (possibly empty)."""
        return ()

    # -- convenience combinators -------------------------------------------
    def __or__(self, other: "Language") -> "Alt":
        return Alt(self, as_language(other))

    def __ror__(self, other: "Language") -> "Alt":
        return Alt(as_language(other), self)

    def __add__(self, other: "Language") -> "Cat":
        return Cat(self, as_language(other))

    def __radd__(self, other: "Language") -> "Cat":
        return Cat(as_language(other), self)

    def map(self, fn: Callable[[Any], Any]) -> "Reduce":
        """Return ``self ↪→ fn`` — apply ``fn`` to every parse tree."""
        return Reduce(self, fn)

    # -- identity-based hashing --------------------------------------------
    def __hash__(self) -> int:
        return self.node_id

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "{}#{}".format(type(self).__name__, self.node_id)

    def describe(self) -> str:
        """A short human-readable description of the node."""
        return repr(self)


class Empty(Language):
    """The empty language ``∅`` — it contains no words at all.

    A single shared instance, :data:`EMPTY`, is used throughout; smart
    constructors and the derivative rely on identity checks against it.
    """

    __slots__ = ()

    def describe(self) -> str:
        """Render the paper's ``∅`` symbol."""
        return "∅"

    def __repr__(self) -> str:
        return "Empty()"


#: The canonical empty-language instance.
EMPTY = Empty()


class Epsilon(Language):
    """The empty-word language ``ε_s``, annotated with its parse trees.

    ``trees`` is a tuple of parse results; it usually holds exactly one tree
    but may hold several when compaction merges ``ε_s1 ∪ ε_s2 ⇒ ε_{s1∪s2}``
    (one of the reduction rules added by the paper in Section 4.3).
    """

    __slots__ = ("trees",)

    def __init__(self, trees: Iterable[Any] = ((),)) -> None:
        super().__init__()
        self.trees = tuple(trees)

    def describe(self) -> str:
        """Render ``ε`` with its parse-tree annotations."""
        return "ε{}".format(list(self.trees))

    def __repr__(self) -> str:
        return "Epsilon(trees={!r})".format(self.trees)


def epsilon(tree: Any = ()) -> Epsilon:
    """Build an ``ε`` node carrying a single parse tree (default: ``()``)."""
    return Epsilon((tree,))


class Token(Language):
    """A single-terminal language ``c``.

    A token node matches an input token if:

    * ``predicate`` is given and returns true for the token, otherwise
    * ``kind`` is given and equals the token's *kind* (see
      :func:`token_kind`), otherwise
    * it matches *any* token (the paper's Figure 5 example uses a ``c`` that
      accepts every token).
    """

    __slots__ = ("kind", "predicate", "label")

    def __init__(
        self,
        kind: Any = None,
        predicate: Optional[Callable[[Any], bool]] = None,
        label: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.kind = kind
        self.predicate = predicate
        self.label = label if label is not None else (str(kind) if kind is not None else "<any>")

    def matches(self, tok: Any) -> bool:
        """Return True when this terminal accepts the input token ``tok``."""
        if self.predicate is not None:
            return bool(self.predicate(tok))
        if self.kind is None:
            return True
        return token_kind(tok) == self.kind

    def describe(self) -> str:
        """Render the terminal as ``tok(label)``."""
        return "tok({})".format(self.label)

    def __repr__(self) -> str:
        return "Token(kind={!r})".format(self.kind)


def token(kind: Any, label: Optional[str] = None) -> Token:
    """Build a terminal node matching tokens whose kind equals ``kind``."""
    return Token(kind=kind, label=label)


def any_token(label: str = "<any>") -> Token:
    """Build a terminal node that matches every token."""
    return Token(kind=None, predicate=None, label=label)


def token_kind(tok: Any) -> Any:
    """Return the *kind* of an input token.

    Input tokens may be:

    * plain hashable values (characters, strings, ints) — the kind is the
      value itself,
    * objects with a ``kind`` attribute (e.g. :class:`repro.lexer.tokens.Tok`),
    * ``(kind, value)`` pairs.
    """
    kind = getattr(tok, "kind", None)
    if kind is not None:
        return kind
    if isinstance(tok, tuple) and len(tok) == 2:
        return tok[0]
    return tok


def token_value(tok: Any) -> Any:
    """Return the semantic value carried by an input token (see token_kind)."""
    value = getattr(tok, "value", None)
    if value is not None:
        return value
    if isinstance(tok, tuple) and len(tok) == 2:
        return tok[1]
    return tok


class Alt(Language):
    """The alternation ``L1 ∪ L2``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Optional[Language] = None, right: Optional[Language] = None) -> None:
        super().__init__()
        self.left = left
        self.right = right

    def children(self) -> tuple[Language, ...]:
        """Return the non-None children (left, right)."""
        out = []
        if self.left is not None:
            out.append(self.left)
        if self.right is not None:
            out.append(self.right)
        return tuple(out)

    def describe(self) -> str:
        """Render the alternation with its children's node ids."""
        return "(∪ #{} #{})".format(
            getattr(self.left, "node_id", "?"), getattr(self.right, "node_id", "?")
        )


class Cat(Language):
    """The concatenation ``L1 ◦ L2``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Optional[Language] = None, right: Optional[Language] = None) -> None:
        super().__init__()
        self.left = left
        self.right = right

    def children(self) -> tuple[Language, ...]:
        """Return the non-None children (left, right)."""
        out = []
        if self.left is not None:
            out.append(self.left)
        if self.right is not None:
            out.append(self.right)
        return tuple(out)

    def describe(self) -> str:
        """Render the concatenation with its children's node ids."""
        return "(◦ #{} #{})".format(
            getattr(self.left, "node_id", "?"), getattr(self.right, "node_id", "?")
        )


class Reduce(Language):
    """The reduction ``L ↪→ f`` — every tree produced by ``L`` is mapped by ``f``."""

    __slots__ = ("lang", "fn")

    def __init__(self, lang: Optional[Language] = None, fn: Callable[[Any], Any] = None) -> None:
        super().__init__()
        self.lang = lang
        self.fn = fn if fn is not None else _identity

    def children(self) -> tuple[Language, ...]:
        """Return the wrapped language, when present."""
        return (self.lang,) if self.lang is not None else ()

    def describe(self) -> str:
        """Render the reduction with its function's name."""
        return "(↪→ #{} {})".format(getattr(self.lang, "node_id", "?"), _fn_name(self.fn))


class Delta(Language):
    """The null-parse projection ``δ(L)`` of a language.

    ``Delta(L)`` accepts exactly the empty word and yields the parse trees of
    ``L``'s empty-word parses.  It is the lazy device (used by Might et al.
    2011) that lets the derivative of a concatenation with a nullable left
    child retain the left child's parse trees::

        Dc(L1 ◦ L2) = (Dc(L1) ◦ L2) ∪ (δ(L1) ◦ Dc(L2))     when ε ∈ ⟦L1⟧

    Figure 2 of the PLDI 2016 paper presents the recognizer form of this rule
    (the ``δ(L1)`` factor carries no recognition information, so it is written
    simply as ``Dc(L2)``); the tree-producing form above is what the
    implementations actually compute.  The derivative of a ``Delta`` node is
    ``∅`` and its nullability equals the nullability of ``L``.
    """

    __slots__ = ("lang",)

    def __init__(self, lang: Optional[Language] = None) -> None:
        super().__init__()
        self.lang = lang

    def children(self) -> tuple[Language, ...]:
        """Return the wrapped language, when present."""
        return (self.lang,) if self.lang is not None else ()

    def describe(self) -> str:
        """Render the null-parse projection ``δ(L)``."""
        return "(δ #{})".format(getattr(self.lang, "node_id", "?"))


class Ref(Language):
    """A named non-terminal reference.

    The paper's representation stores non-terminals as direct pointers; a
    :class:`Ref` is a thin, named indirection that makes grammars convenient
    to build (``expr = Ref("expr"); expr.set(...)``) and keeps non-terminal
    names around for error messages and for the naming instrumentation.
    A Ref behaves exactly like its target language.
    """

    __slots__ = ("ref_name", "target")

    def __init__(self, ref_name: str, target: Optional[Language] = None) -> None:
        super().__init__()
        self.ref_name = ref_name
        self.target = target

    def set(self, target: Language) -> "Ref":
        """Resolve this reference to ``target`` and return ``self``."""
        self.target = as_language(target)
        return self

    def children(self) -> tuple[Language, ...]:
        """Return the resolved target, when present."""
        return (self.target,) if self.target is not None else ()

    def describe(self) -> str:
        """Render the non-terminal as ``<name>``."""
        return "<{}>".format(self.ref_name)

    def __repr__(self) -> str:
        return "Ref({!r})".format(self.ref_name)


def as_language(value: Any) -> Language:
    """Coerce ``value`` into a :class:`Language` node.

    Non-language values are treated as token kinds, so grammars can be written
    compactly: ``Cat('(', expr)`` instead of ``Cat(token('('), expr)``.
    """
    if isinstance(value, Language):
        return value
    return token(value)


def _identity(tree: Any) -> Any:
    return tree


def _fn_name(fn: Callable[..., Any]) -> str:
    return getattr(fn, "__name__", None) or type(fn).__name__


def iter_children(node: Language) -> Iterator[Language]:
    """Iterate over the non-None direct children of ``node``."""
    for child in node.children():
        if child is not None:
            yield child


def reachable_nodes(root: Language) -> list[Language]:
    """Return every node reachable from ``root`` (including ``root``).

    The traversal is iterative — derived grammar graphs can be as deep as
    the input that produced them, far beyond the interpreter recursion
    limit, as well as cyclic — and the result is in a deterministic
    depth-first discovery order.
    """
    seen: set[int] = set()
    order: list[Language] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node is None or id(node) in seen:
            continue
        seen.add(id(node))
        order.append(node)
        # reversed so the left child is visited before the right child
        stack.extend(reversed(list(iter_children(node))))
    return order


def graph_size(root: Language) -> int:
    """Number of nodes reachable from ``root`` — ``G`` in the paper's bounds."""
    return len(reachable_nodes(root))


def _stable_repr(value: Any) -> str:
    """A repr safe to hash across processes.

    Python's default object repr embeds the instance's memory address
    (``<Payload object at 0x7f...>``), which changes every run — hashing it
    would make :func:`structural_fingerprint` reject a grammar's own
    serialized tables in the next process.  Any repr that raises or that
    embeds an address collapses to the value's type name, trading payload
    discrimination for the cross-process stability the fingerprint promises.
    """
    try:
        text = repr(value)
    except Exception:
        return "<unreprable {}>".format(type(value).__name__)
    if " at 0x" in text:
        return "<by-type {}>".format(type(value).__name__)
    return text


def terminal_nodes(root: Language) -> list[Token]:
    """Every :class:`Token` leaf reachable from ``root``, in discovery order.

    The reachable terminals are what decide how a language responds to the
    next input token: deriving by two tokens that satisfy exactly the same
    subset of these leaves produces the same successor graph.  The
    token-class analysis in :mod:`repro.compile` builds on this.
    """
    return [node for node in reachable_nodes(root) if isinstance(node, Token)]


def structural_fingerprint(root: Language) -> str:
    """A stable hex digest of the grammar graph's *structure*.

    Nodes are numbered in deterministic traversal order (node ids are
    process-local counters and therefore useless across runs), and each
    node contributes its type, its structural payload — token kind/label,
    non-terminal name, ε tree shape, reduction key — and the traversal
    indices of its children.  Two graphs built the same way hash the same in
    any process, so serialized compiled tables (:mod:`repro.compile`) can
    verify they are being re-attached to the grammar they were built from.

    The fingerprint is intentionally *not* a semantic equivalence check:
    distinct constructions of the same language hash differently.
    """
    order = reachable_nodes(root)
    index = {id(node): position for position, node in enumerate(order)}
    digest = hashlib.sha256()
    for position, node in enumerate(order):
        children = ",".join(str(index[id(child)]) for child in iter_children(node))
        if isinstance(node, Token):
            payload = "kind={} label={} pred={}".format(
                _stable_repr(node.kind),
                _stable_repr(node.label),
                "yes" if node.predicate is not None else "no",
            )
        elif isinstance(node, Ref):
            payload = "ref={!r}".format(node.ref_name)
        elif isinstance(node, Epsilon):
            payload = "trees={}".format(_stable_repr(node.trees))
        elif isinstance(node, Reduce):
            key = getattr(node.fn, "_key", None)
            try:
                payload = (
                    "fn={}".format(_stable_repr(key()))
                    if callable(key)
                    else "fn={}".format(_fn_name(node.fn))
                )
            except Exception:
                payload = "fn={}".format(_fn_name(node.fn))
        else:
            payload = ""
        digest.update(
            "{}|{}|{}|{}\n".format(position, type(node).__name__, payload, children).encode(
                "utf-8", "backslashreplace"
            )
        )
    return digest.hexdigest()


def clone_graph(root: Language) -> Language:
    """Deep-copy a grammar graph into fresh, cache-free nodes.

    The clone has the same structure and payloads as the original — same
    :func:`structural_fingerprint`, same recognized language, shared token
    predicates, reduction functions and ε-tree payloads — but every node is
    a new object with pristine memo/nullability/parse-null fields and no
    anchored compiled table.  Cycles are preserved.

    This is the isolation primitive behind concurrent serving
    (:mod:`repro.serve`): node-resident caches make a grammar graph
    single-threaded territory, so each worker thread parses its own clone
    while the shared compiled table keeps the one locked graph.  The
    traversal only *reads* the source graph, so any number of threads may
    clone from the same (otherwise idle) graph at once.
    """
    order = reachable_nodes(root)
    clones: dict[int, Language] = {}
    for node in order:
        if node is EMPTY:
            clone: Language = EMPTY
        elif isinstance(node, Empty):
            clone = Empty()
        elif isinstance(node, Epsilon):
            clone = Epsilon(node.trees)
        elif isinstance(node, Token):
            clone = Token(kind=node.kind, predicate=node.predicate, label=node.label)
        elif isinstance(node, Alt):
            clone = Alt()
        elif isinstance(node, Cat):
            clone = Cat()
        elif isinstance(node, Reduce):
            clone = Reduce(None, node.fn)
        elif isinstance(node, Delta):
            clone = Delta()
        elif isinstance(node, Ref):
            clone = Ref(node.ref_name)
        else:
            raise TypeError("cannot clone unknown node type: {!r}".format(node))
        clones[id(node)] = clone
    for node in order:
        clone = clones[id(node)]
        if isinstance(node, (Alt, Cat)):
            clone.left = clones[id(node.left)] if node.left is not None else None
            clone.right = clones[id(node.right)] if node.right is not None else None
        elif isinstance(node, (Reduce, Delta)):
            clone.lang = clones[id(node.lang)] if node.lang is not None else None
        elif isinstance(node, Ref):
            clone.target = clones[id(node.target)] if node.target is not None else None
    return clones[id(root)]
