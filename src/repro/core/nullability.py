"""Nullability (``δ(L)``, Figure 3) as an accelerated least fixed point.

Whether a language accepts the empty word is needed by the derivative of a
concatenation (Figure 2) and by ``parse-null``.  Because grammars are cyclic
graphs, nullability is a least-fixed-point problem over the boolean lattice
(Section 2.4 / 2.5 of the paper).

The original 2011 implementation recomputes nullability by repeatedly
re-traversing every reachable node until nothing changes — quadratic in the
number of nodes (Section 4.2).  The paper's improved algorithm:

* tracks dependencies between nodes Kildall-style, so only the nodes affected
  by a change are revisited, and
* distinguishes *assumed-not-nullable* (still tentative, inside an unfinished
  fixed point) from *definitely-not-nullable* (final), promoting the former to
  the latter once a fixed point completes, so later nullability queries from
  later ``derive`` calls can reuse the answers.

That mechanism — dependency tracking, tentative values, final promotion,
generation labels — is exactly what the unified kernel in
:mod:`repro.core.fixpoint` provides for *every* analysis, so this module is
now a declaration, not an algorithm: :class:`NullabilityAnalysis` states the
boolean lattice (bottom ``False``), the dependency function (a node's
relevant children) and the transfer function (Figure 3's equations), and
stores final values in the ``null_state`` node field so later queries are
O(1).  :class:`NullabilityAnalyzer` wraps a solver over that declaration
behind the same public API as before.  The number of node evaluations is
recorded in ``Metrics.nullable_calls`` — the quantity compared against the
original implementation in Figure 7.
"""

from __future__ import annotations

from typing import Optional

from .fixpoint import NOT_FINAL, FixpointAnalysis, FixpointSolver
from .languages import (
    Alt,
    Cat,
    Delta,
    Empty,
    Epsilon,
    Language,
    Reduce,
    Ref,
    Token,
)
from .metrics import Metrics

__all__ = [
    "NULLABLE",
    "DEFINITELY_NOT_NULLABLE",
    "NullabilityAnalysis",
    "NullabilityAnalyzer",
]


#: Final state: the node's language contains the empty word.
NULLABLE = "nullable"
#: Final state: the node's language definitely does not contain the empty word.
DEFINITELY_NOT_NULLABLE = "not-nullable"

_FINAL_STATES = (NULLABLE, DEFINITELY_NOT_NULLABLE)


class NullabilityAnalysis(FixpointAnalysis):
    """δ as a lattice declaration for the unified fixed-point kernel.

    Boolean lattice, bottom ``False`` (assumed-not-nullable); transfer
    implements Figure 3; final values live in the ``null_state`` field of the
    nodes themselves (the Section 4.2 promotion, expressed as the kernel's
    ``finalize`` hook).
    """

    def __init__(self, metrics: Metrics) -> None:
        self.metrics = metrics

    # ------------------------------------------------------------- the lattice
    def bottom(self, node: Language) -> bool:
        """Start every node at the lattice bottom: not (yet) nullable."""
        return False

    def dependencies(self, node: Language) -> tuple:
        """Children whose nullability the node's own nullability depends on."""
        if isinstance(node, (Alt, Cat)):
            children = []
            if node.left is not None:
                children.append(node.left)
            if node.right is not None:
                children.append(node.right)
            return tuple(children)
        if isinstance(node, (Reduce, Delta)):
            return (node.lang,) if node.lang is not None else ()
        if isinstance(node, Ref):
            return (node.target,) if node.target is not None else ()
        return ()

    def transfer(self, node: Language, get) -> bool:
        """Evaluate δ for ``node`` using current (possibly tentative) values."""
        if isinstance(node, Epsilon):
            return True
        if isinstance(node, (Empty, Token)):
            return False
        if isinstance(node, Alt):
            return self._child(node.left, get) or self._child(node.right, get)
        if isinstance(node, Cat):
            return self._child(node.left, get) and self._child(node.right, get)
        if isinstance(node, (Reduce, Delta)):
            return self._child(node.lang, get)
        if isinstance(node, Ref):
            return self._child(node.target, get)
        raise TypeError("unknown language node type: {!r}".format(node))

    @staticmethod
    def _child(child: Optional[Language], get) -> bool:
        if child is None:
            raise ValueError(
                "nullability queried on a node with an unset child; "
                "the grammar (or a derivative placeholder) is incomplete"
            )
        return get(child)

    # --------------------------------------------------------- final promotion
    def final(self, node: Language):
        """Read a previously promoted per-node result, if any."""
        state = node.null_state
        if state == NULLABLE:
            return True
        if state == DEFINITELY_NOT_NULLABLE:
            return False
        return NOT_FINAL

    def finalize(self, node: Language, value: bool) -> None:
        """Promote a fixed-point value into the node's cache fields."""
        # Nodes still at False are promoted from assumed- to
        # definitely-not-nullable; this is what lets later derive steps
        # answer nullability in O(1).
        node.null_state = NULLABLE if value else DEFINITELY_NOT_NULLABLE

    # ------------------------------------------------------------------ hooks
    def on_evaluate(self, node: Language) -> None:
        """Count one transfer evaluation toward the Figure 7 metric."""
        self.metrics.nullable_calls += 1


class NullabilityAnalyzer:
    """Compute ``δ(L)`` with dependency tracking and final-value caching."""

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self.metrics = metrics if metrics is not None else Metrics()
        self._solver = FixpointSolver(NullabilityAnalysis(self.metrics), self.metrics)

    # ------------------------------------------------------------------ API
    def nullable(self, node: Language) -> bool:
        """Return True when the language of ``node`` contains the empty word."""
        state = node.null_state
        if state == NULLABLE:
            self.metrics.nullable_cache_hits += 1
            return True
        if state == DEFINITELY_NOT_NULLABLE:
            self.metrics.nullable_cache_hits += 1
            return False
        self.metrics.nullable_fixed_points += 1
        return self._solver.value(node)

    def invalidate(self, node: Language) -> None:
        """Drop the cached nullability of a single node (used by tests)."""
        node.null_state = None
