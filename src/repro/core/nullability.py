"""Nullability (``δ(L)``, Figure 3) as an accelerated least fixed point.

Whether a language accepts the empty word is needed by the derivative of a
concatenation (Figure 2) and by ``parse-null``.  Because grammars are cyclic
graphs, nullability is a least-fixed-point problem over the boolean lattice
(Section 2.4 / 2.5 of the paper).

The original 2011 implementation recomputes nullability by repeatedly
re-traversing every reachable node until nothing changes — quadratic in the
number of nodes (Section 4.2).  The paper's improved algorithm:

* tracks dependencies between nodes Kildall-style, so only the nodes affected
  by a change are revisited, and
* distinguishes *assumed-not-nullable* (still tentative, inside an unfinished
  fixed point) from *definitely-not-nullable* (final), promoting the former to
  the latter once a fixed point completes, so later nullability queries from
  later ``derive`` calls can reuse the answers.

:class:`NullabilityAnalyzer` implements the same idea with a worklist solver:
each call solves only the not-yet-final subgraph reachable from the queried
node, and when the fixed point completes every node it covered is marked with
a *final* value (the generation-label trick of Section 4.2 expressed
directly).  The number of node evaluations is recorded in
``Metrics.nullable_calls`` — the quantity compared against the original
implementation in Figure 7.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from .languages import (
    Alt,
    Cat,
    Delta,
    Empty,
    Epsilon,
    Language,
    Reduce,
    Ref,
    Token,
)
from .metrics import Metrics

__all__ = ["NULLABLE", "DEFINITELY_NOT_NULLABLE", "NullabilityAnalyzer"]


#: Final state: the node's language contains the empty word.
NULLABLE = "nullable"
#: Final state: the node's language definitely does not contain the empty word.
DEFINITELY_NOT_NULLABLE = "not-nullable"

_FINAL_STATES = (NULLABLE, DEFINITELY_NOT_NULLABLE)


class NullabilityAnalyzer:
    """Compute ``δ(L)`` with dependency tracking and final-value caching."""

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self.metrics = metrics if metrics is not None else Metrics()

    # ------------------------------------------------------------------ API
    def nullable(self, node: Language) -> bool:
        """Return True when the language of ``node`` contains the empty word."""
        state = node.null_state
        if state == NULLABLE:
            self.metrics.nullable_cache_hits += 1
            return True
        if state == DEFINITELY_NOT_NULLABLE:
            self.metrics.nullable_cache_hits += 1
            return False
        return self._solve(node)

    def invalidate(self, node: Language) -> None:
        """Drop the cached nullability of a single node (used by tests)."""
        node.null_state = None

    # ----------------------------------------------------------- fixed point
    def _solve(self, root: Language) -> bool:
        """Run a worklist fixed point over the unknown subgraph under ``root``."""
        self.metrics.nullable_fixed_points += 1

        # Discover every reachable node whose nullability is not yet final,
        # recording reverse dependencies (child -> parents) along the way.
        pending: List[Language] = []
        dependents: Dict[int, List[Language]] = {}
        discovered: set[int] = set()
        stack: List[Language] = [root]
        while stack:
            node = stack.pop()
            if id(node) in discovered:
                continue
            discovered.add(id(node))
            if node.null_state in _FINAL_STATES:
                continue
            pending.append(node)
            for child in self._relevant_children(node):
                dependents.setdefault(id(child), []).append(node)
                if id(child) not in discovered and child.null_state not in _FINAL_STATES:
                    stack.append(child)

        # Least fixed point over the boolean lattice: start every unknown node
        # at False (assumed-not-nullable) and propagate monotonically upward.
        value: Dict[int, bool] = {id(node): False for node in pending}
        worklist = deque(pending)
        in_worklist = {id(node) for node in pending}
        while worklist:
            node = worklist.popleft()
            in_worklist.discard(id(node))
            self.metrics.nullable_calls += 1
            new_value = self._evaluate(node, value)
            if new_value and not value[id(node)]:
                value[id(node)] = True
                for parent in dependents.get(id(node), ()):
                    if id(parent) not in in_worklist and id(parent) in value:
                        worklist.append(parent)
                        in_worklist.add(id(parent))

        # The fixed point is complete, so every value is final: nodes still at
        # False are promoted from assumed- to definitely-not-nullable.  This is
        # what lets later derive steps answer nullability in O(1).
        for node in pending:
            node.null_state = NULLABLE if value[id(node)] else DEFINITELY_NOT_NULLABLE

        return root.null_state == NULLABLE

    # ------------------------------------------------------------- structure
    @staticmethod
    def _relevant_children(node: Language) -> tuple[Language, ...]:
        """Children whose nullability the node's own nullability depends on."""
        if isinstance(node, (Alt, Cat)):
            children = []
            if node.left is not None:
                children.append(node.left)
            if node.right is not None:
                children.append(node.right)
            return tuple(children)
        if isinstance(node, (Reduce, Delta)):
            return (node.lang,) if node.lang is not None else ()
        if isinstance(node, Ref):
            return (node.target,) if node.target is not None else ()
        return ()

    def _evaluate(self, node: Language, value: Dict[int, bool]) -> bool:
        """Evaluate δ for ``node`` using current (possibly tentative) values."""
        if isinstance(node, Epsilon):
            return True
        if isinstance(node, (Empty, Token)):
            return False
        if isinstance(node, Alt):
            return self._child_value(node.left, value) or self._child_value(node.right, value)
        if isinstance(node, Cat):
            return self._child_value(node.left, value) and self._child_value(node.right, value)
        if isinstance(node, (Reduce, Delta)):
            return self._child_value(node.lang, value)
        if isinstance(node, Ref):
            return self._child_value(node.target, value)
        raise TypeError("unknown language node type: {!r}".format(node))

    @staticmethod
    def _child_value(child: Optional[Language], value: Dict[int, bool]) -> bool:
        if child is None:
            raise ValueError(
                "nullability queried on a node with an unset child; "
                "the grammar (or a derivative placeholder) is incomplete"
            )
        if child.null_state == NULLABLE:
            return True
        if child.null_state == DEFINITELY_NOT_NULLABLE:
            return False
        return value.get(id(child), False)
