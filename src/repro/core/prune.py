"""Pruning of semantically-empty branches from derived grammars.

Structural compaction (Section 4.3) removes a dead alternative only when it is
*literally* the ``∅`` node.  But derivatives of cyclic grammars routinely
produce sub-graphs that denote the empty language without being the ``∅``
node — for example, after a statement has ended, the derivative of a
left-recursive expression non-terminal is a small cyclic core none of whose
token leaves can ever match again.  Such "zombie" cores are re-derived on
every subsequent token and, worse, every failed context leaves one behind, so
the live grammar grows linearly and overall parsing degrades to quadratic.

Racket implementations of parsing with derivatives (including the ``derp``
family this paper builds on) handle this with an *emptiness* fixed point used
during compaction: a child that provably generates no words is replaced by
``∅`` so the ordinary ``∅``-rules can collapse its parents.  This module
implements that as a standalone pass:

* :func:`prune_empty` computes productivity (non-emptiness) for every node
  reachable from the current grammar — treating ``δ(L)`` as a leaf whose
  emptiness is decided by ``L``'s (already cached) nullability — and rewrites
  child pointers of unproductive children to the canonical ``∅`` in place.

The emptiness computation itself is not implemented here: it is one more
one-shot solve of the shared :class:`~repro.core.productivity.
ProductivityAnalysis` declaration on the unified fixed-point kernel
(:mod:`repro.core.fixpoint`), run with a throwaway cache because this pass
performs in-place graph surgery and deliberately assumes nothing between
passes.  ``strict=False`` keeps unknown node types conservatively alive.

:class:`repro.core.parse.DerivativeParser` invokes the pass adaptively (when
the number of uncached ``derive`` calls since the last prune exceeds a small
multiple of the live grammar size), so its amortized cost is a constant factor
on top of derivation.

The reachability sweep (:func:`live_nodes`) and the kernel's solve both run
on explicit worklists — like every other traversal in the core, they must
handle grammars whose depth is proportional to the input length without
leaning on the interpreter call stack.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .fixpoint import FixpointSolver
from .languages import (
    EMPTY,
    Alt,
    Cat,
    Delta,
    Empty,
    Epsilon,
    Language,
    Reduce,
    Ref,
    Token,
)
from .metrics import Metrics
from .nullability import NullabilityAnalyzer
from .productivity import ProductivityAnalysis

__all__ = ["prune_empty", "live_nodes", "AdaptivePruneSchedule"]


class AdaptivePruneSchedule:
    """When to run :func:`prune_empty`: the adaptive cadence both engines share.

    A prune pass is *due* once the uncached ``derive`` work since the last
    pass exceeds a small multiple of the live grammar size, which keeps the
    amortized pruning overhead a constant factor on top of derivation.
    Both :class:`repro.core.parse.DerivativeParser` and the compiled
    :class:`repro.compile.automaton.GrammarTable` drive their pruning off
    this one implementation — the schedule arithmetic has already produced
    one shipped bug (a stale marker surviving ``reset``), so it lives in
    exactly one place.

    The counter consulted is whatever the caller passes (in practice
    ``Metrics.derive_uncached``, which may be shared across engines);
    :meth:`reanchor` must be called whenever the owner's notion of "work
    since" restarts (e.g. ``DerivativeParser.reset``) because the shared
    counter itself never rewinds.
    """

    __slots__ = ("_floor", "interval", "marker")

    def __init__(self, initial_size: int, uncached: int) -> None:
        #: Lower bound on the interval, derived from the initial grammar.
        self._floor = max(4 * initial_size, 64)
        self.interval = self._floor
        self.marker = uncached

    def due(self, uncached: int) -> bool:
        """True when enough uncached derive work has accrued to prune."""
        return uncached - self.marker > self.interval

    def ran(self, uncached: int, live_size: int) -> None:
        """Record a completed pass over a live grammar of ``live_size`` nodes."""
        self.marker = uncached
        self.interval = max(self._floor, 2 * live_size)

    def reanchor(self, uncached: int) -> None:
        """Re-anchor to the *current* counter (the owner's caches restarted)."""
        self.marker = uncached
        self.interval = self._floor


def live_nodes(root: Language) -> List[Language]:
    """Nodes reachable from ``root`` without descending into ``δ`` children.

    ``derive`` never recurses into the language under a ``δ`` node (its
    derivative is ``∅`` outright), so for the purposes of per-token work the
    "live" grammar excludes that history; the parse data it carries is only
    visited once more, by ``parse-null`` at the very end.
    """
    seen: set[int] = set()
    order: List[Language] = []
    stack: List[Language] = [root]
    while stack:
        node = stack.pop()
        if node is None or id(node) in seen:
            continue
        seen.add(id(node))
        order.append(node)
        if isinstance(node, Delta):
            continue
        for child in node.children():
            if child is not None and id(child) not in seen:
                stack.append(child)
    return order


def prune_empty(
    root: Language,
    nullability: Optional[NullabilityAnalyzer] = None,
    metrics: Optional[Metrics] = None,
) -> Tuple[Language, int]:
    """Replace provably-empty children with ``∅`` throughout the live grammar.

    Returns ``(new_root, live_size)`` where ``new_root`` is ``∅`` when the
    whole grammar is empty (the input can no longer be completed) and
    ``live_size`` is the number of live nodes remaining after the rewrite.
    The rewrite mutates child pointers in place, so every memoized reference
    to an existing node stays valid; no new nodes are created.
    """
    nullability = nullability if nullability is not None else NullabilityAnalyzer()
    nodes = live_nodes(root)

    # One-shot emptiness solve on the shared kernel: a throwaway cache (this
    # pass mutates the graph, so nothing is assumed across passes) and
    # strict=False (unknown node types stay conservatively alive).
    solver = FixpointSolver(
        ProductivityAnalysis({}, nullability, strict=False),
        metrics if metrics is not None else nullability.metrics,
    )
    productive = solver.solve([root])

    def is_dead(child: Optional[Language]) -> bool:
        if child is None or isinstance(child, Empty):
            return False  # nothing to rewrite
        if isinstance(child, (Epsilon, Token)):
            return False
        return not productive.get(child, True)

    rewrites = 0
    for node in nodes:
        if isinstance(node, (Alt, Cat)):
            if is_dead(node.left):
                node.left = EMPTY
                rewrites += 1
            if is_dead(node.right):
                node.right = EMPTY
                rewrites += 1
        elif isinstance(node, Reduce):
            if is_dead(node.lang):
                node.lang = EMPTY
                rewrites += 1
        elif isinstance(node, Ref):
            if is_dead(node.target):
                node.target = EMPTY
                rewrites += 1

    if metrics is not None:
        metrics.compaction_rewrites += rewrites

    if not productive.get(root, True):
        return EMPTY, 1
    return root, len(live_nodes(root))
