"""Core parsing-with-derivatives implementation (the paper's contribution).

The public surface re-exported here is what most users need:

* grammar construction: :class:`Ref`, :func:`token`, :func:`any_token`,
  :func:`epsilon`, :data:`EMPTY`, plus the node classes themselves,
* parsing: :class:`DerivativeParser`, :func:`parse`, :func:`recognize`,
* forests: :func:`iter_trees`, :func:`count_trees`, :func:`first_tree`,
* configuration: :class:`CompactionConfig`, memoization strategy names,
* instrumentation: :class:`Metrics`, :class:`NamingScheme`.
"""

from .compaction import CompactionConfig, Compactor, optimize_initial_grammar
from .derivative import Deriver
from .errors import EmptyForestError, GrammarError, LexError, ParseError, ReproError
from .fixpoint import NOT_FINAL, FixpointAnalysis, FixpointSolver
from .forest import (
    FOREST_EMPTY,
    ForestAmb,
    ForestEmpty,
    ForestLeaf,
    ForestMap,
    ForestNode,
    ForestPair,
    ForestRef,
    count_trees,
    first_tree,
    is_empty_forest,
    iter_trees,
    tree_fingerprint,
    trees_equal,
)
from .forest_query import (
    RANKINGS,
    ForestQuery,
    Ranking,
    TreeDepthRanking,
    TreeSizeRanking,
    iter_trees_ranked,
    ranking_by_name,
    sample_trees,
)
from .languages import (
    EMPTY,
    Alt,
    Cat,
    Delta,
    Empty,
    Epsilon,
    Language,
    Reduce,
    Ref,
    Token,
    any_token,
    as_language,
    clone_graph,
    epsilon,
    graph_size,
    reachable_nodes,
    structural_fingerprint,
    terminal_nodes,
    token,
    token_kind,
    token_value,
)
from .memo import (
    MEMO_STRATEGIES,
    DeriveMemo,
    NestedDictMemo,
    PerNodeDictMemo,
    PersistentDictMemo,
    SingleEntryMemo,
    make_memo,
    single_entry_fraction,
)
from .metrics import Metrics, MetricsSnapshot
from .naming import NamingAuditResult, NamingScheme, NodeName
from .nullability import (
    DEFINITELY_NOT_NULLABLE,
    NULLABLE,
    NullabilityAnalysis,
    NullabilityAnalyzer,
)
from .productivity import ProductivityAnalysis, ProductivityAnalyzer
from .parse import (
    DEFAULT_RECURSION_LIMIT,
    DerivativeParser,
    ParserSnapshot,
    ParserState,
    parse,
    recognize,
    validate_grammar,
)
from .reductions import (
    IDENTITY,
    Compose,
    Constant,
    Identity,
    MapFirst,
    MapSecond,
    PairLeft,
    PairRight,
    ReassocToLeft,
    compose,
)

__all__ = [
    # languages
    "Language",
    "Empty",
    "Epsilon",
    "Token",
    "Alt",
    "Cat",
    "Reduce",
    "Delta",
    "Ref",
    "EMPTY",
    "epsilon",
    "token",
    "any_token",
    "as_language",
    "token_kind",
    "token_value",
    "reachable_nodes",
    "graph_size",
    "terminal_nodes",
    "structural_fingerprint",
    "clone_graph",
    # parsing
    "DerivativeParser",
    "ParserState",
    "ParserSnapshot",
    "parse",
    "recognize",
    "validate_grammar",
    "Deriver",
    "DEFAULT_RECURSION_LIMIT",
    # forests
    "ForestNode",
    "ForestEmpty",
    "ForestLeaf",
    "ForestPair",
    "ForestMap",
    "ForestAmb",
    "ForestRef",
    "FOREST_EMPTY",
    "iter_trees",
    "count_trees",
    "first_tree",
    "is_empty_forest",
    "trees_equal",
    "tree_fingerprint",
    # forest queries (count / top-k / sample)
    "ForestQuery",
    "Ranking",
    "TreeSizeRanking",
    "TreeDepthRanking",
    "RANKINGS",
    "ranking_by_name",
    "iter_trees_ranked",
    "sample_trees",
    # configuration
    "CompactionConfig",
    "Compactor",
    "optimize_initial_grammar",
    "DeriveMemo",
    "SingleEntryMemo",
    "PerNodeDictMemo",
    "PersistentDictMemo",
    "NestedDictMemo",
    "make_memo",
    "MEMO_STRATEGIES",
    "single_entry_fraction",
    # the unified analysis kernel
    "FixpointAnalysis",
    "FixpointSolver",
    "NOT_FINAL",
    # nullability
    "NullabilityAnalyzer",
    "NullabilityAnalysis",
    "NULLABLE",
    "DEFINITELY_NOT_NULLABLE",
    "ProductivityAnalyzer",
    "ProductivityAnalysis",
    # instrumentation
    "Metrics",
    "MetricsSnapshot",
    "NamingScheme",
    "NodeName",
    "NamingAuditResult",
    # reductions
    "Identity",
    "IDENTITY",
    "Compose",
    "Constant",
    "PairLeft",
    "PairRight",
    "MapFirst",
    "MapSecond",
    "ReassocToLeft",
    "compose",
    # errors
    "ReproError",
    "GrammarError",
    "ParseError",
    "EmptyForestError",
    "LexError",
]
