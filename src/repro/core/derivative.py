"""The derivative of parsing expressions (Figure 2, Sections 2.3–2.5).

``Deriver.derive(node, token)`` computes the Brzozowski derivative of a
(possibly cyclic) grammar node with respect to one input token, following the
rules of Figure 2:

* ``Dc(∅) = ∅`` and ``Dc(ε) = ∅``
* ``Dc(c') = ε_c`` when the token matches, ``∅`` otherwise
* ``Dc(L1 ∪ L2) = Dc(L1) ∪ Dc(L2)``
* ``Dc(L1 ◦ L2) = Dc(L1) ◦ L2``                      when ``L1`` is not nullable
* ``Dc(L1 ◦ L2) = (Dc(L1) ◦ L2) ∪ Dc(L2)``           when ``L1`` is nullable
* ``Dc(L ↪→ f) = Dc(L) ↪→ f``

Cycles are handled exactly as described in Section 2.5.2: before recurring
into a node's children, ``derive`` installs a *partially constructed* result
node in the memo table; any recursive call caused by a cycle finds and uses
that placeholder.  After the children's derivatives return, either

* the placeholder was **observed** by a recursive call (there really was a
  cycle) — its children are filled in place and no compaction is attempted
  (the "punt on cycle" rule of Section 4.3.3), or
* the placeholder was **not observed** — it is discarded, the result is built
  through the compaction smart constructors (Section 4.3), and the memo entry
  is replaced by the compacted node.

Memoization is pluggable (:mod:`repro.core.memo`); the default single-entry
strategy is the improvement of Section 4.4.
"""

from __future__ import annotations

from typing import Any, Optional

from .compaction import Compactor
from .errors import GrammarError
from .languages import (
    EMPTY,
    Alt,
    Cat,
    Delta,
    Empty,
    Epsilon,
    Language,
    Reduce,
    Ref,
    Token,
    token_value,
)
from .memo import MISS, DeriveMemo, SingleEntryMemo
from .metrics import Metrics
from .naming import NamingScheme
from .nullability import NullabilityAnalyzer

__all__ = ["Deriver"]


class Deriver:
    """Memoized, cycle-aware, compacting derivative computation."""

    def __init__(
        self,
        memo: Optional[DeriveMemo] = None,
        compactor: Optional[Compactor] = None,
        nullability: Optional[NullabilityAnalyzer] = None,
        metrics: Optional[Metrics] = None,
        naming: Optional[NamingScheme] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else Metrics()
        self.memo = memo if memo is not None else SingleEntryMemo(self.metrics)
        self.compactor = compactor if compactor is not None else Compactor(metrics=self.metrics)
        self.nullability = (
            nullability if nullability is not None else NullabilityAnalyzer(self.metrics)
        )
        self.naming = naming

    # ------------------------------------------------------------------ API
    def derive(self, node: Language, token: Any, position: int = 0) -> Language:
        """Return the derivative of ``node`` with respect to ``token``.

        ``position`` is the index of ``token`` in the input; it is used only
        by the optional naming instrumentation (Definition 5) and does not
        affect the computed language.
        """
        self.metrics.derive_calls += 1
        cached = self.memo.get(node, token)
        if cached is not MISS:
            self.metrics.derive_cache_hits += 1
            if isinstance(cached, Language) and cached.under_construction:
                cached.observed = True
            return cached
        self.metrics.derive_uncached += 1

        if isinstance(node, (Empty, Epsilon, Delta)):
            # Dc(∅) = Dc(ε) = Dc(δ(L)) = ∅ — none of these accept a first token.
            result = EMPTY
            self.memo.put(node, token, result)
            return result

        if isinstance(node, Token):
            return self._derive_token(node, token, position)

        if isinstance(node, Alt):
            return self._derive_alt(node, token, position)

        if isinstance(node, Cat):
            return self._derive_cat(node, token, position)

        if isinstance(node, Reduce):
            return self._derive_reduce(node, token, position)

        if isinstance(node, Ref):
            return self._derive_ref(node, token, position)

        raise GrammarError("cannot derive unknown node type: {!r}".format(node))

    # ------------------------------------------------------------ terminals
    def _derive_token(self, node: Token, token: Any, position: int) -> Language:
        if node.matches(token):
            result: Language = self.compactor.make_epsilon((token_value(token),))
            self._name(node, result, position, with_bullet=False)
        else:
            result = EMPTY
        self.memo.put(node, token, result)
        return result

    # ----------------------------------------------------------- alternation
    def _derive_alt(self, node: Alt, token: Any, position: int) -> Language:
        if node.left is None or node.right is None:
            raise GrammarError("derivative of an incomplete ∪ node: {!r}".format(node))
        placeholder = self.compactor.raw_alt()
        placeholder.under_construction = True
        self.memo.put(node, token, placeholder)

        left = self.derive(node.left, token, position)
        right = self.derive(node.right, token, position)

        if placeholder.observed:
            placeholder.left = left
            placeholder.right = right
            placeholder.under_construction = False
            self._name(node, placeholder, position, with_bullet=False)
            return placeholder

        self.metrics.placeholders_discarded += 1
        result = self.compactor.make_alt(left, right)
        self._name(node, result, position, with_bullet=False)
        self.memo.put(node, token, result)
        return result

    # --------------------------------------------------------- concatenation
    def _derive_cat(self, node: Cat, token: Any, position: int) -> Language:
        if node.left is None or node.right is None:
            raise GrammarError("derivative of an incomplete ◦ node: {!r}".format(node))

        if not self.nullability.nullable(node.left):
            # Dc(L1 ◦ L2) = Dc(L1) ◦ L2
            placeholder = self.compactor.raw_cat()
            placeholder.under_construction = True
            placeholder.right = node.right
            self.memo.put(node, token, placeholder)

            left = self.derive(node.left, token, position)

            if placeholder.observed:
                placeholder.left = left
                placeholder.under_construction = False
                self._name(node, placeholder, position, with_bullet=False)
                return placeholder

            self.metrics.placeholders_discarded += 1
            result = self.compactor.make_cat(left, node.right)
            self._name(node, result, position, with_bullet=False)
            self.memo.put(node, token, result)
            return result

        # Dc(L1 ◦ L2) = (Dc(L1) ◦ L2) ∪ (δ(L1) ◦ Dc(L2)) — the duplication case
        # that the naming argument (Rule 5b) tracks with the • symbol.  The
        # δ(L1) factor keeps L1's null-parse trees; Figure 2 of the paper
        # presents the recognizer form, which drops it.
        placeholder = self.compactor.raw_alt()
        placeholder.under_construction = True
        self.memo.put(node, token, placeholder)

        left_derivative = self.derive(node.left, token, position)
        right_derivative = self.derive(node.right, token, position)

        if placeholder.observed:
            cat_node = self.compactor.make_cat(left_derivative, node.right)
            self._name(node, cat_node, position, with_bullet=False)
            null_branch = self._null_branch(node.left, right_derivative)
            placeholder.left = cat_node
            placeholder.right = null_branch
            placeholder.under_construction = False
            self._name(node, placeholder, position, with_bullet=True)
            return placeholder

        self.metrics.placeholders_discarded += 1
        cat_node = self.compactor.make_cat(left_derivative, node.right)
        self._name(node, cat_node, position, with_bullet=False)
        null_branch = self._null_branch(node.left, right_derivative)
        result = self.compactor.make_alt(cat_node, null_branch)
        self._name(node, result, position, with_bullet=True)
        self.memo.put(node, token, result)
        return result

    def _null_branch(self, left: Language, right_derivative: Language) -> Language:
        """Build ``δ(left) ◦ Dc(right)`` for the nullable-left sequence case."""
        if right_derivative is EMPTY or isinstance(right_derivative, Empty):
            # The freshly computed derivative is known to be ∅, so the whole
            # branch contributes nothing (this does not violate the
            # Section 4.3.1 rule about right children: no inspection of a
            # pre-existing grammar node is involved).
            return EMPTY
        return self.compactor.make_cat(self.compactor.make_delta(left), right_derivative)

    # -------------------------------------------------------------- reduction
    def _derive_reduce(self, node: Reduce, token: Any, position: int) -> Language:
        if node.lang is None:
            raise GrammarError("derivative of an incomplete ↪→ node: {!r}".format(node))
        placeholder = self.compactor.raw_reduce(node.fn)
        placeholder.under_construction = True
        self.memo.put(node, token, placeholder)

        child = self.derive(node.lang, token, position)

        if placeholder.observed:
            placeholder.lang = child
            placeholder.under_construction = False
            self._name(node, placeholder, position, with_bullet=False)
            return placeholder

        self.metrics.placeholders_discarded += 1
        result = self.compactor.make_reduce(child, node.fn)
        self._name(node, result, position, with_bullet=False)
        self.memo.put(node, token, result)
        return result

    # ------------------------------------------------------------- reference
    def _derive_ref(self, node: Ref, token: Any, position: int) -> Language:
        if node.target is None:
            raise GrammarError(
                "non-terminal <{}> was never resolved (Ref.set was not called)".format(
                    node.ref_name
                )
            )
        placeholder = self.compactor.raw_ref(node.ref_name)
        placeholder.under_construction = True
        self.memo.put(node, token, placeholder)

        target = self.derive(node.target, token, position)

        if placeholder.observed:
            placeholder.target = target
            placeholder.under_construction = False
            self._name(node, placeholder, position, with_bullet=False)
            return placeholder

        # No cycle went through the reference itself: drop the wrapper and
        # memoize the target's derivative directly.
        self.metrics.placeholders_discarded += 1
        self._name(node, target, position, with_bullet=False)
        self.memo.put(node, token, target)
        return target

    # ----------------------------------------------------------------- naming
    def _name(self, parent: Language, child: Language, position: int, with_bullet: bool) -> None:
        if self.naming is not None:
            self.naming.name_derivative(parent, child, position, with_bullet)
