"""The derivative of parsing expressions (Figure 2, Sections 2.3–2.5).

``Deriver.derive(node, token)`` computes the Brzozowski derivative of a
(possibly cyclic) grammar node with respect to one input token, following the
rules of Figure 2:

* ``Dc(∅) = ∅`` and ``Dc(ε) = ∅``
* ``Dc(c') = ε_c`` when the token matches, ``∅`` otherwise
* ``Dc(L1 ∪ L2) = Dc(L1) ∪ Dc(L2)``
* ``Dc(L1 ◦ L2) = Dc(L1) ◦ L2``                      when ``L1`` is not nullable
* ``Dc(L1 ◦ L2) = (Dc(L1) ◦ L2) ∪ Dc(L2)``           when ``L1`` is nullable
* ``Dc(L ↪→ f) = Dc(L) ↪→ f``

Cycles are handled exactly as described in Section 2.5.2: before descending
into a node's children, ``derive`` installs a *partially constructed* result
node in the memo table; any child lookup caused by a cycle finds and uses
that placeholder.  After the children's derivatives are available, either

* the placeholder was **observed** by a cyclic lookup (there really was a
  cycle) — its children are filled in place and no compaction is attempted
  (the "punt on cycle" rule of Section 4.3.3), or
* the placeholder was **not observed** — it is discarded, the result is built
  through the compaction smart constructors (Section 4.3), and the memo entry
  is replaced by the compacted node.

The traversal itself is **iterative**: grammar graphs derived from long
inputs can be as deep as the input (hundreds of thousands of nodes on a
right-recursive chain), so ``derive`` runs a small virtual machine over an
explicit stack of pending nodes and suspended continuations instead of
recursing on the interpreter stack.  No ``sys.setrecursionlimit`` escape
hatch is needed at any input length.

Memoization is pluggable (:mod:`repro.core.memo`); the default single-entry
strategy is the improvement of Section 4.4.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from .compaction import Compactor
from .errors import GrammarError
from .languages import (
    EMPTY,
    Alt,
    Cat,
    Delta,
    Empty,
    Epsilon,
    Language,
    Reduce,
    Ref,
    Token,
    token_value,
)
from .memo import MISS, DeriveMemo, SingleEntryMemo
from .metrics import Metrics
from .naming import NamingScheme
from .nullability import NullabilityAnalyzer

__all__ = ["Deriver"]


# Opcodes for the explicit-stack derive machine.  A _DERIVE entry asks for the
# derivative of one node (the recursive call); a _FINISH_* entry resumes a
# suspended composite node once its children's derivatives are in its result
# slots (the code after the recursive calls in the textbook presentation).
(
    _DERIVE,
    _FINISH_ALT,
    _FINISH_CAT,
    _FINISH_CAT_NULLABLE,
    _FINISH_REDUCE,
    _FINISH_REF,
) = range(6)


class Deriver:
    """Memoized, cycle-aware, compacting derivative computation."""

    def __init__(
        self,
        memo: Optional[DeriveMemo] = None,
        compactor: Optional[Compactor] = None,
        nullability: Optional[NullabilityAnalyzer] = None,
        metrics: Optional[Metrics] = None,
        naming: Optional[NamingScheme] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else Metrics()
        self.memo = memo if memo is not None else SingleEntryMemo(self.metrics)
        self.compactor = compactor if compactor is not None else Compactor(metrics=self.metrics)
        self.nullability = (
            nullability if nullability is not None else NullabilityAnalyzer(self.metrics)
        )
        self.naming = naming

    # ------------------------------------------------------------------ API
    def derive(self, node: Language, token: Any, position: int = 0) -> Language:
        """Return the derivative of ``node`` with respect to ``token``.

        ``position`` is the index of ``token`` in the input; it is used only
        by the optional naming instrumentation (Definition 5) and does not
        affect the computed language.

        The computation is fully iterative: an explicit stack holds, for each
        suspended composite node, its installed placeholder and the result
        slots its children's derivatives are delivered into.  Left children
        are always expanded to completion before right children, matching the
        order (and therefore the memoization, naming and metrics behaviour)
        of the recursive formulation.
        """
        memo = self.memo
        metrics = self.metrics
        root_slot: List[Optional[Language]] = [None]
        # Each stack entry is (opcode, node, out, slot) for _DERIVE or
        # (opcode, node, placeholder, results, out, slot) for _FINISH_*.
        stack: List[Tuple] = [(_DERIVE, node, root_slot, 0)]

        while stack:
            entry = stack.pop()
            op = entry[0]

            if op == _DERIVE:
                _, current, out, slot = entry
                metrics.derive_calls += 1
                cached = memo.get(current, token)
                if cached is not MISS:
                    metrics.derive_cache_hits += 1
                    if isinstance(cached, Language) and cached.under_construction:
                        # A lookup that finds a partially constructed result
                        # is exactly the cycle case of Section 2.5.2.
                        cached.observed = True
                    out[slot] = cached
                    continue
                metrics.derive_uncached += 1

                if isinstance(current, (Empty, Epsilon, Delta)):
                    # Dc(∅) = Dc(ε) = Dc(δ(L)) = ∅ — no first token accepted.
                    memo.put(current, token, EMPTY)
                    out[slot] = EMPTY
                    continue

                if isinstance(current, Token):
                    if current.matches(token):
                        result: Language = self.compactor.make_epsilon((token_value(token),))
                        self._name(current, result, position, with_bullet=False)
                    else:
                        result = EMPTY
                    memo.put(current, token, result)
                    out[slot] = result
                    continue

                if isinstance(current, Alt):
                    if current.left is None or current.right is None:
                        raise GrammarError(
                            "derivative of an incomplete ∪ node: {!r}".format(current)
                        )
                    placeholder = self.compactor.raw_alt()
                    placeholder.under_construction = True
                    memo.put(current, token, placeholder)
                    results: List[Optional[Language]] = [None, None]
                    stack.append((_FINISH_ALT, current, placeholder, results, out, slot))
                    stack.append((_DERIVE, current.right, results, 1))
                    stack.append((_DERIVE, current.left, results, 0))
                    continue

                if isinstance(current, Cat):
                    if current.left is None or current.right is None:
                        raise GrammarError(
                            "derivative of an incomplete ◦ node: {!r}".format(current)
                        )
                    if not self.nullability.nullable(current.left):
                        # Dc(L1 ◦ L2) = Dc(L1) ◦ L2
                        cat_placeholder = self.compactor.raw_cat()
                        cat_placeholder.under_construction = True
                        cat_placeholder.right = current.right
                        memo.put(current, token, cat_placeholder)
                        results = [None]
                        stack.append(
                            (_FINISH_CAT, current, cat_placeholder, results, out, slot)
                        )
                        stack.append((_DERIVE, current.left, results, 0))
                        continue
                    # Dc(L1 ◦ L2) = (Dc(L1) ◦ L2) ∪ (δ(L1) ◦ Dc(L2)) — the
                    # duplication case tracked by the naming argument (Rule
                    # 5b) with the • symbol.  The δ(L1) factor keeps L1's
                    # null-parse trees; Figure 2 presents the recognizer form,
                    # which drops it.
                    placeholder = self.compactor.raw_alt()
                    placeholder.under_construction = True
                    memo.put(current, token, placeholder)
                    results = [None, None]
                    stack.append(
                        (_FINISH_CAT_NULLABLE, current, placeholder, results, out, slot)
                    )
                    stack.append((_DERIVE, current.right, results, 1))
                    stack.append((_DERIVE, current.left, results, 0))
                    continue

                if isinstance(current, Reduce):
                    if current.lang is None:
                        raise GrammarError(
                            "derivative of an incomplete ↪→ node: {!r}".format(current)
                        )
                    reduce_placeholder = self.compactor.raw_reduce(current.fn)
                    reduce_placeholder.under_construction = True
                    memo.put(current, token, reduce_placeholder)
                    results = [None]
                    stack.append(
                        (_FINISH_REDUCE, current, reduce_placeholder, results, out, slot)
                    )
                    stack.append((_DERIVE, current.lang, results, 0))
                    continue

                if isinstance(current, Ref):
                    if current.target is None:
                        raise GrammarError(
                            "non-terminal <{}> was never resolved (Ref.set was not called)".format(
                                current.ref_name
                            )
                        )
                    ref_placeholder = self.compactor.raw_ref(current.ref_name)
                    ref_placeholder.under_construction = True
                    memo.put(current, token, ref_placeholder)
                    results = [None]
                    stack.append(
                        (_FINISH_REF, current, ref_placeholder, results, out, slot)
                    )
                    stack.append((_DERIVE, current.target, results, 0))
                    continue

                raise GrammarError("cannot derive unknown node type: {!r}".format(current))

            # ---------------------------------------------------- _FINISH_*
            _, current, placeholder, results, out, slot = entry

            if op == _FINISH_ALT:
                left, right = results
                if placeholder.observed:
                    placeholder.left = left
                    placeholder.right = right
                    placeholder.under_construction = False
                    placeholder.reaches_cycle = True
                    self._name(current, placeholder, position, with_bullet=False)
                    out[slot] = placeholder
                    continue
                metrics.placeholders_discarded += 1
                result = self.compactor.make_alt(left, right)
                self._name(current, result, position, with_bullet=False)
                memo.put(current, token, result)
                out[slot] = result
                continue

            if op == _FINISH_CAT:
                left = results[0]
                if placeholder.observed:
                    placeholder.left = left
                    placeholder.under_construction = False
                    placeholder.reaches_cycle = True
                    self._name(current, placeholder, position, with_bullet=False)
                    out[slot] = placeholder
                    continue
                metrics.placeholders_discarded += 1
                result = self.compactor.make_cat(left, current.right)
                self._name(current, result, position, with_bullet=False)
                memo.put(current, token, result)
                out[slot] = result
                continue

            if op == _FINISH_CAT_NULLABLE:
                left_derivative, right_derivative = results
                if placeholder.observed:
                    cat_node = self.compactor.make_cat(left_derivative, current.right)
                    self._name(current, cat_node, position, with_bullet=False)
                    null_branch = self._null_branch(current.left, right_derivative)
                    placeholder.left = cat_node
                    placeholder.right = null_branch
                    placeholder.under_construction = False
                    placeholder.reaches_cycle = True
                    self._name(current, placeholder, position, with_bullet=True)
                    out[slot] = placeholder
                    continue
                metrics.placeholders_discarded += 1
                cat_node = self.compactor.make_cat(left_derivative, current.right)
                self._name(current, cat_node, position, with_bullet=False)
                null_branch = self._null_branch(current.left, right_derivative)
                result = self.compactor.make_alt(cat_node, null_branch)
                self._name(current, result, position, with_bullet=True)
                memo.put(current, token, result)
                out[slot] = result
                continue

            if op == _FINISH_REDUCE:
                child = results[0]
                if placeholder.observed:
                    placeholder.lang = child
                    placeholder.under_construction = False
                    placeholder.reaches_cycle = True
                    self._name(current, placeholder, position, with_bullet=False)
                    out[slot] = placeholder
                    continue
                metrics.placeholders_discarded += 1
                result = self.compactor.make_reduce(child, current.fn)
                self._name(current, result, position, with_bullet=False)
                memo.put(current, token, result)
                out[slot] = result
                continue

            # _FINISH_REF
            target = results[0]
            if placeholder.observed:
                placeholder.target = target
                placeholder.under_construction = False
                placeholder.reaches_cycle = True
                self._name(current, placeholder, position, with_bullet=False)
                out[slot] = placeholder
                continue
            # No cycle went through the reference itself: drop the wrapper
            # and memoize the target's derivative directly.
            metrics.placeholders_discarded += 1
            self._name(current, target, position, with_bullet=False)
            memo.put(current, token, target)
            out[slot] = target

        return root_slot[0]

    def _null_branch(self, left: Language, right_derivative: Language) -> Language:
        """Build ``δ(left) ◦ Dc(right)`` for the nullable-left sequence case."""
        if right_derivative is EMPTY or isinstance(right_derivative, Empty):
            # The freshly computed derivative is known to be ∅, so the whole
            # branch contributes nothing (this does not violate the
            # Section 4.3.1 rule about right children: no inspection of a
            # pre-existing grammar node is involved).
            return EMPTY
        return self.compactor.make_cat(self.compactor.make_delta(left), right_derivative)

    # ----------------------------------------------------------------- naming
    def _name(self, parent: Language, child: Language, position: int, with_bullet: bool) -> None:
        if self.naming is not None:
            self.naming.name_derivative(parent, child, position, with_bullet)
