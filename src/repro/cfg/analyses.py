"""Classical grammar analyses: nullable non-terminals, FIRST and FOLLOW sets.

These are the standard fixed-point computations from compiler textbooks.  They
serve two purposes in the reproduction:

* the SLR(1) table construction in :mod:`repro.glr` needs FOLLOW sets, and
* the tests cross-check the derivative parser's nullability analysis against
  the classical nullable-non-terminal computation on the same grammar.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Sequence, Set

from .grammar import END_OF_INPUT, Grammar, Nonterminal

__all__ = [
    "nullable_nonterminals",
    "first_sets",
    "follow_sets",
    "first_of_sequence",
    "sequence_is_nullable",
]


def nullable_nonterminals(grammar: Grammar) -> Set[str]:
    """The set of non-terminals that can derive the empty string."""
    nullable: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            if production.lhs in nullable:
                continue
            if all(
                isinstance(symbol, Nonterminal) and symbol.name in nullable
                for symbol in production.rhs
            ):
                nullable.add(production.lhs)
                changed = True
    return nullable


def first_sets(grammar: Grammar) -> Dict[str, Set[Any]]:
    """FIRST sets for every non-terminal (terminals that can begin a derivation)."""
    nullable = nullable_nonterminals(grammar)
    first: Dict[str, Set[Any]] = {name: set() for name in grammar.nonterminals}
    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            target = first[production.lhs]
            before = len(target)
            for symbol in production.rhs:
                if isinstance(symbol, Nonterminal):
                    target.update(first[symbol.name])
                    if symbol.name not in nullable:
                        break
                else:
                    target.add(symbol)
                    break
            if len(target) != before:
                changed = True
    return first


def sequence_is_nullable(symbols: Sequence[Any], nullable: Set[str]) -> bool:
    """True when every symbol of ``symbols`` can derive the empty string."""
    return all(
        isinstance(symbol, Nonterminal) and symbol.name in nullable for symbol in symbols
    )


def first_of_sequence(
    symbols: Sequence[Any],
    first: Dict[str, Set[Any]],
    nullable: Set[str],
) -> Set[Any]:
    """FIRST of a sentential-form suffix (used by FOLLOW and by LALR lookaheads)."""
    result: Set[Any] = set()
    for symbol in symbols:
        if isinstance(symbol, Nonterminal):
            result.update(first[symbol.name])
            if symbol.name not in nullable:
                return result
        else:
            result.add(symbol)
            return result
    return result


def follow_sets(grammar: Grammar) -> Dict[str, Set[Any]]:
    """FOLLOW sets for every non-terminal, with ``$end`` after the start symbol."""
    nullable = nullable_nonterminals(grammar)
    first = first_sets(grammar)
    follow: Dict[str, Set[Any]] = {name: set() for name in grammar.nonterminals}
    follow[grammar.start].add(END_OF_INPUT)
    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            for position, symbol in enumerate(production.rhs):
                if not isinstance(symbol, Nonterminal):
                    continue
                target = follow[symbol.name]
                before = len(target)
                suffix = production.rhs[position + 1 :]
                target.update(first_of_sequence(suffix, first, nullable))
                if sequence_is_nullable(suffix, nullable):
                    target.update(follow[production.lhs])
                if len(target) != before:
                    changed = True
    return follow
