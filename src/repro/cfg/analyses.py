"""Classical grammar analyses: nullable non-terminals, FIRST and FOLLOW sets.

These are the standard fixed-point computations from compiler textbooks.  They
serve two purposes in the reproduction:

* the SLR(1) table construction in :mod:`repro.glr` needs FOLLOW sets, and
* the tests cross-check the derivative parser's nullability analysis against
  the classical nullable-non-terminal computation on the same grammar.

All three were originally hand-rolled ``while changed`` sweeps over every
production; they are now declarations on the unified fixed-point kernel
(:mod:`repro.core.fixpoint`), the same solver that powers the derivative
engine's nullability and productivity analyses.  The nodes are non-terminal
*names*, the lattices are the boolean lattice (nullability) and the
subset lattice of terminal symbols (FIRST, FOLLOW), and the dependency
functions are read off the productions once per call — so the solver
revisits a non-terminal only when something it actually reads has grown,
instead of rescanning the whole grammar per pass.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Set

from ..core.fixpoint import FixpointAnalysis, FixpointSolver
from .grammar import END_OF_INPUT, Grammar, Nonterminal

__all__ = [
    "nullable_nonterminals",
    "first_sets",
    "follow_sets",
    "first_of_sequence",
    "sequence_is_nullable",
]


class _GrammarAnalysis(FixpointAnalysis):
    """Shared plumbing for per-non-terminal analyses (nodes are names).

    A production may reference a name with no productions of its own (the
    grammar classes tolerate undeclared non-terminals until validation), so
    lookups use :meth:`rhs_of`, which treats such a name as having no
    alternatives — it derives nothing, matching the historical sweeps'
    behaviour of simply never adding it to any set.
    """

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.productions_of: Dict[str, List[Sequence[Any]]] = {
            name: [] for name in grammar.nonterminals
        }
        for production in grammar.productions:
            self.productions_of.setdefault(production.lhs, []).append(production.rhs)

    def rhs_of(self, name: str) -> List[Sequence[Any]]:
        return self.productions_of.get(name, [])


class _NullableNonterminals(_GrammarAnalysis):
    """Boolean lattice: can the non-terminal derive the empty string?"""

    def bottom(self, name: str) -> bool:
        return False

    def dependencies(self, name: str) -> List[str]:
        # Only all-non-terminal productions can witness nullability, so only
        # their symbols are read by the transfer function.
        deps: List[str] = []
        for rhs in self.rhs_of(name):
            if all(isinstance(symbol, Nonterminal) for symbol in rhs):
                deps.extend(symbol.name for symbol in rhs)
        return deps

    def transfer(self, name: str, get) -> bool:
        for rhs in self.rhs_of(name):
            if all(isinstance(symbol, Nonterminal) and get(symbol.name) for symbol in rhs):
                return True
        return False


def nullable_nonterminals(grammar: Grammar) -> Set[str]:
    """The set of non-terminals that can derive the empty string."""
    analysis = _NullableNonterminals(grammar)
    values = FixpointSolver(analysis).solve(list(grammar.nonterminals))
    return {name for name in grammar.nonterminals if values[name]}


class _FirstSets(_GrammarAnalysis):
    """Subset lattice: terminals that can begin a derivation of the name."""

    def __init__(self, grammar: Grammar, nullable: Set[str]) -> None:
        super().__init__(grammar)
        self.nullable = nullable

    def bottom(self, name: str) -> frozenset:
        return frozenset()

    def dependencies(self, name: str) -> List[str]:
        # The transfer function reads FIRST of every non-terminal in the
        # nullable prefix of each production (plus the first non-nullable
        # one); nullability is already fixed, so this set is static.
        deps: List[str] = []
        for rhs in self.rhs_of(name):
            for symbol in rhs:
                if not isinstance(symbol, Nonterminal):
                    break
                deps.append(symbol.name)
                if symbol.name not in self.nullable:
                    break
        return deps

    def transfer(self, name: str, get) -> frozenset:
        result: Set[Any] = set()
        for rhs in self.rhs_of(name):
            for symbol in rhs:
                if isinstance(symbol, Nonterminal):
                    result.update(get(symbol.name))
                    if symbol.name not in self.nullable:
                        break
                else:
                    result.add(symbol)
                    break
        return frozenset(result)


def first_sets(grammar: Grammar) -> Dict[str, Set[Any]]:
    """FIRST sets for every non-terminal (terminals that can begin a derivation)."""
    nullable = nullable_nonterminals(grammar)
    analysis = _FirstSets(grammar, nullable)
    values = FixpointSolver(analysis).solve(list(grammar.nonterminals))
    return {name: set(values[name]) for name in grammar.nonterminals}


def sequence_is_nullable(symbols: Sequence[Any], nullable: Set[str]) -> bool:
    """True when every symbol of ``symbols`` can derive the empty string."""
    return all(
        isinstance(symbol, Nonterminal) and symbol.name in nullable for symbol in symbols
    )


def first_of_sequence(
    symbols: Sequence[Any],
    first: Dict[str, Set[Any]],
    nullable: Set[str],
) -> Set[Any]:
    """FIRST of a sentential-form suffix (used by FOLLOW and by LALR lookaheads)."""
    result: Set[Any] = set()
    for symbol in symbols:
        if isinstance(symbol, Nonterminal):
            result.update(first[symbol.name])
            if symbol.name not in nullable:
                return result
        else:
            result.add(symbol)
            return result
    return result


class _FollowSets(_GrammarAnalysis):
    """Subset lattice: terminals that can appear immediately after the name.

    The variable part of FOLLOW(B) is the union of FOLLOW(A) over every
    production ``A → α B β`` with ``β`` nullable; everything else —
    FIRST(β) contributions and the ``$end`` marker after the start symbol —
    is constant, precomputed once as the seed.
    """

    def __init__(self, grammar: Grammar, nullable: Set[str], first: Dict[str, Set[Any]]) -> None:
        super().__init__(grammar)
        self.seeds: Dict[str, Set[Any]] = {name: set() for name in grammar.nonterminals}
        self.follow_deps: Dict[str, List[str]] = {name: [] for name in grammar.nonterminals}
        self.seeds[grammar.start].add(END_OF_INPUT)
        for production in grammar.productions:
            for position, symbol in enumerate(production.rhs):
                if not isinstance(symbol, Nonterminal):
                    continue
                suffix = production.rhs[position + 1 :]
                self.seeds[symbol.name].update(first_of_sequence(suffix, first, nullable))
                if sequence_is_nullable(suffix, nullable):
                    self.follow_deps[symbol.name].append(production.lhs)

    def bottom(self, name: str) -> frozenset:
        return frozenset(self.seeds[name])

    def dependencies(self, name: str) -> List[str]:
        return self.follow_deps[name]

    def transfer(self, name: str, get) -> frozenset:
        result: Set[Any] = set(self.seeds[name])
        for lhs in self.follow_deps[name]:
            result.update(get(lhs))
        return frozenset(result)


def follow_sets(grammar: Grammar) -> Dict[str, Set[Any]]:
    """FOLLOW sets for every non-terminal, with ``$end`` after the start symbol."""
    nullable = nullable_nonterminals(grammar)
    first = first_sets(grammar)
    analysis = _FollowSets(grammar, nullable, first)
    values = FixpointSolver(analysis).solve(list(grammar.nonterminals))
    return {name: set(values[name]) for name in grammar.nonterminals}
