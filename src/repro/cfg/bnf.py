"""A small BNF/EBNF front end for writing grammars as text.

The reproduction's evaluation grammars are defined programmatically, but a
text front end makes the library usable the way Bison or ``parser-tools`` is
used: write the grammar down, load it, parse.  The accepted syntax:

.. code-block:: text

    # comments run to end of line
    expr   : expr '+' term | term ;
    term   : term '*' factor | factor ;
    factor : '(' expr ')' | NUMBER ;

* Rules are ``name : alternatives ;`` (``->`` and ``::=`` also accepted, the
  terminating ``;`` is optional at end of line).
* Alternatives are separated by ``|``; an empty alternative (or the keyword
  ``%empty`` / ``ε``) is an epsilon production.
* Quoted symbols (``'+'`` or ``"+"``) are terminals; bare names are
  non-terminals when they appear on some left-hand side and terminal token
  kinds otherwise (the convention used by most parser generators for token
  names such as ``NUMBER``).

The first rule's left-hand side is the start symbol unless ``start`` is given.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

from ..core.errors import GrammarError
from .grammar import Grammar

__all__ = ["parse_bnf", "load_grammar"]


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*|//[^\n]*)
  | (?P<arrow>->|::=|:)
  | (?P<pipe>\|)
  | (?P<semi>;)
  | (?P<empty>%empty|ε)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z_0-9.\-]*)
  | (?P<newline>\n)
  | (?P<space>[ \t\r]+)
  | (?P<error>.)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        value = match.group()
        if kind in ("comment", "space", "newline"):
            continue
        if kind == "error":
            raise GrammarError("unexpected character {!r} in grammar text".format(value))
        tokens.append((kind, value))
    return tokens


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


def parse_bnf(text: str, start: Optional[str] = None) -> Grammar:
    """Parse BNF text into a :class:`~repro.cfg.grammar.Grammar`."""
    tokens = _tokenize(text)
    rules: List[Tuple[str, List[List[Any]]]] = []
    position = 0

    def peek(offset: int = 0) -> Optional[Tuple[str, str]]:
        index = position + offset
        return tokens[index] if index < len(tokens) else None

    while position < len(tokens):
        kind, value = tokens[position]
        if kind != "name":
            raise GrammarError(
                "expected a rule name, found {!r}".format(value)
            )
        lhs = value
        position += 1
        if position >= len(tokens) or tokens[position][0] != "arrow":
            raise GrammarError("expected ':' or '->' after rule name {!r}".format(lhs))
        position += 1

        alternatives: List[List[Any]] = []
        current: List[Any] = []
        saw_empty = False
        trailing_pipe = False
        while position < len(tokens):
            kind, value = tokens[position]
            if kind == "semi":
                position += 1
                break
            if kind == "name" and peek(1) is not None and peek(1)[0] == "arrow":
                # The next rule begins; the current one had no terminating ';'.
                break
            if kind == "pipe":
                alternatives.append(current)
                current = []
                saw_empty = False
                trailing_pipe = True
                position += 1
                continue
            trailing_pipe = False
            if kind == "empty":
                saw_empty = True
                position += 1
                continue
            if kind == "string":
                current.append(_unquote(value))
                position += 1
                continue
            if kind == "name":
                current.append(value)
                position += 1
                continue
            raise GrammarError("unexpected {!r} in rule {!r}".format(value, lhs))
        if current or saw_empty or trailing_pipe or not alternatives:
            alternatives.append(current)
        rules.append((lhs, alternatives))

    if not rules:
        raise GrammarError("the grammar text contains no rules")

    productions: List[Tuple[str, tuple]] = []
    for lhs, alternatives in rules:
        for alternative in alternatives:
            productions.append((lhs, tuple(alternative)))
    return Grammar(start if start is not None else rules[0][0], productions)


def load_grammar(path: str, start: Optional[str] = None) -> Grammar:
    """Read a BNF grammar from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_bnf(handle.read(), start=start)
