"""Context-free grammars as symbol/production data (the classical view).

The paper's evaluation (Section 4.1) modifies its Python grammar "to use
traditional CFG productions instead of the nested parsing expressions
supported by PWD" so that the same grammar can drive the Earley and Bison
baselines.  This module is that common currency: a :class:`Grammar` is a start
symbol plus a list of :class:`Production` rules over

* **non-terminals** — :class:`Nonterminal` instances (or, for convenience,
  names that appear on the left-hand side of some production), and
* **terminals** — any other hashable value, interpreted as a token *kind*.

Grammars can be converted to the derivative parser's parsing-expression graph
(:meth:`Grammar.to_language`), fed to the Earley parser directly, or fed to
the LR-table construction in :mod:`repro.glr`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..core.errors import GrammarError
from ..core.languages import EMPTY, Alt, Cat, Language, Ref, epsilon, token
from ..core.reductions import ReductionFunction

__all__ = [
    "Nonterminal",
    "Production",
    "Grammar",
    "END_OF_INPUT",
    "BuildNode",
    "grammar_from_rules",
]


#: The end-of-input pseudo-terminal used by FOLLOW sets and LR tables.
END_OF_INPUT = "$end"


@dataclass(frozen=True)
class Nonterminal:
    """A named non-terminal symbol."""

    name: str

    def __repr__(self) -> str:
        return "<{}>".format(self.name)


@dataclass(frozen=True)
class Production:
    """A single production ``lhs → rhs``.

    ``rhs`` is a tuple of symbols: :class:`Nonterminal` instances and terminal
    token kinds.  ``index`` is the production's position in the grammar and is
    used by the LR machinery and by parse-tree labels.
    """

    lhs: str
    rhs: Tuple[Any, ...]
    index: int = -1

    def __str__(self) -> str:
        rhs = " ".join(_symbol_str(sym) for sym in self.rhs) if self.rhs else "ε"
        return "{} → {}".format(self.lhs, rhs)

    @property
    def is_epsilon(self) -> bool:
        """True for an empty (ε) production."""
        return len(self.rhs) == 0


def _symbol_str(symbol: Any) -> str:
    if isinstance(symbol, Nonterminal):
        return symbol.name
    return repr(symbol)


class BuildNode(ReductionFunction):
    """Reduction producing the standard CFG parse-tree node ``(lhs, children)``.

    The derivative parser's concatenation trees are nested pairs; this
    reduction flattens a right-nested pair chain of known arity into a tuple
    so that trees from the derivative, Earley and GLR parsers are directly
    comparable.
    """

    def __init__(self, lhs: str, arity: int) -> None:
        self.lhs = lhs
        self.arity = arity

    def __call__(self, tree: Any) -> Any:
        children: List[Any] = []
        remaining = tree
        for _ in range(self.arity - 1):
            first, remaining = remaining
            children.append(first)
        children.append(remaining)
        return (self.lhs, tuple(children))

    def _key(self) -> tuple:
        return (self.lhs, self.arity)


class _BuildEmptyNode(ReductionFunction):
    """Reduction for ε productions: always produce ``(lhs, ())``."""

    def __init__(self, lhs: str) -> None:
        self.lhs = lhs

    def __call__(self, tree: Any) -> Any:
        return (self.lhs, ())

    def _key(self) -> tuple:
        return (self.lhs,)


class Grammar:
    """A context-free grammar: start symbol + productions.

    Parameters
    ----------
    start:
        The start non-terminal's name.
    productions:
        An iterable of ``(lhs, rhs)`` pairs or :class:`Production` objects.
        ``rhs`` entries may use :class:`Nonterminal`, plain strings naming a
        non-terminal defined by some production, or terminal token kinds.
        Strings that match no production's left-hand side are terminals.
    """

    def __init__(self, start: str, productions: Iterable[Any]) -> None:
        self.start = start
        raw: List[Tuple[str, Tuple[Any, ...]]] = []
        for entry in productions:
            if isinstance(entry, Production):
                raw.append((entry.lhs, tuple(entry.rhs)))
            else:
                lhs, rhs = entry
                raw.append((str(lhs), tuple(rhs)))
        lhs_names = {lhs for lhs, _ in raw}
        if start not in lhs_names:
            raise GrammarError(
                "start symbol {!r} has no production".format(start)
            )
        def normalize(symbol: Any) -> Any:
            if isinstance(symbol, Nonterminal):
                return symbol
            if isinstance(symbol, str) and symbol in lhs_names:
                return Nonterminal(symbol)
            return symbol

        self.productions: List[Production] = []
        for index, (lhs, rhs) in enumerate(raw):
            self.productions.append(
                Production(lhs, tuple(normalize(symbol) for symbol in rhs), index)
            )
        self._by_lhs: Dict[str, List[Production]] = {}
        for production in self.productions:
            self._by_lhs.setdefault(production.lhs, []).append(production)
        self._language_cache: Dict[bool, Language] = {}

    # ------------------------------------------------------------ inspection
    @property
    def nonterminals(self) -> List[str]:
        """Every non-terminal name, in first-appearance order."""
        seen: List[str] = []
        for production in self.productions:
            if production.lhs not in seen:
                seen.append(production.lhs)
        return seen

    @property
    def terminals(self) -> List[Any]:
        """Every terminal symbol, in first-appearance order."""
        seen: List[Any] = []
        for production in self.productions:
            for symbol in production.rhs:
                if not isinstance(symbol, Nonterminal) and symbol not in seen:
                    seen.append(symbol)
        return seen

    def productions_for(self, lhs: str) -> List[Production]:
        """All productions with the given left-hand side."""
        return self._by_lhs.get(lhs, [])

    def is_nonterminal(self, symbol: Any) -> bool:
        """True when ``symbol`` is (or names) a non-terminal of this grammar."""
        if isinstance(symbol, Nonterminal):
            return True
        return isinstance(symbol, str) and symbol in self._by_lhs

    def production_count(self) -> int:
        """Number of productions (the paper reports 722 for its Python grammar)."""
        return len(self.productions)

    def validate(self) -> None:
        """Raise :class:`GrammarError` for undefined non-terminals."""
        defined = set(self._by_lhs)
        for production in self.productions:
            for symbol in production.rhs:
                if isinstance(symbol, Nonterminal) and symbol.name not in defined:
                    raise GrammarError(
                        "production {!r} references undefined non-terminal {!r}".format(
                            str(production), symbol.name
                        )
                    )

    def __str__(self) -> str:
        lines = ["start: {}".format(self.start)]
        lines.extend(str(production) for production in self.productions)
        return "\n".join(lines)

    # ------------------------------------------------------------ conversion
    def augmented(self) -> "Grammar":
        """Return a copy with a fresh start symbol ``S' → S`` (for LR tables)."""
        fresh = self.start + "'"
        while fresh in self._by_lhs:
            fresh += "'"
        rules: List[Tuple[str, Tuple[Any, ...]]] = [(fresh, (Nonterminal(self.start),))]
        rules.extend((production.lhs, production.rhs) for production in self.productions)
        return Grammar(fresh, rules)

    def language(self, build_trees: bool = True) -> Language:
        """Cached :meth:`to_language`: one shared graph per ``build_trees`` flag.

        Sharing one graph is what lets grammar-level caches accumulate: the
        compiled-automaton registry (:mod:`repro.compile`) and the per-node
        memo machinery key their state on node identity, so two parsers
        built from two separate :meth:`to_language` conversions can never
        share a transition table.  Parsers over a shared graph are safe to
        interleave — every node-resident cache is epoch- or owner-tagged.
        """
        cached = self._language_cache.get(build_trees)
        if cached is None:
            cached = self.to_language(build_trees=build_trees)
            self._language_cache[build_trees] = cached
        return cached

    def to_language(self, build_trees: bool = True) -> Language:
        """Convert to the derivative parser's parsing-expression graph.

        Each non-terminal becomes a :class:`~repro.core.languages.Ref` whose
        target is the union of its productions, each production a chain of
        concatenations (Section 2.5.1 of the paper).  With ``build_trees``
        (default) every production is wrapped in a reduction producing the
        classical ``(lhs, children)`` node so that trees agree with the
        Earley and GLR parsers.
        """
        self.validate()
        refs: Dict[str, Ref] = {name: Ref(name) for name in self.nonterminals}

        def symbol_language(symbol: Any) -> Language:
            if isinstance(symbol, Nonterminal):
                return refs[symbol.name]
            return token(symbol)

        for name in self.nonterminals:
            alternatives: List[Language] = []
            for production in self.productions_for(name):
                if production.is_epsilon:
                    body: Language = epsilon(())
                    if build_trees:
                        body = body.map(_BuildEmptyNode(name))
                    alternatives.append(body)
                    continue
                parts = [symbol_language(symbol) for symbol in production.rhs]
                body = parts[-1]
                for part in reversed(parts[:-1]):
                    body = Cat(part, body)
                if build_trees:
                    body = body.map(BuildNode(name, len(production.rhs)))
                alternatives.append(body)
            if not alternatives:
                refs[name].set(EMPTY)
                continue
            union = alternatives[0]
            for alternative in alternatives[1:]:
                union = Alt(union, alternative)
            refs[name].set(union)
        return refs[self.start]


def grammar_from_rules(start: str, rules: Dict[str, Sequence[Sequence[Any]]]) -> Grammar:
    """Build a grammar from ``{lhs: [rhs, rhs, ...]}`` with strings as symbols.

    Right-hand-side entries that name a key of ``rules`` become non-terminals;
    everything else is a terminal.  Empty right-hand sides are ε productions.
    """
    productions: List[Tuple[str, Tuple[Any, ...]]] = []
    for lhs, alternatives in rules.items():
        for rhs in alternatives:
            productions.append((lhs, tuple(rhs)))
    return Grammar(start, productions)
