"""Context-free grammar substrate: productions, analyses, BNF front end."""

from .analyses import (
    first_of_sequence,
    first_sets,
    follow_sets,
    nullable_nonterminals,
    sequence_is_nullable,
)
from .bnf import load_grammar, parse_bnf
from .grammar import (
    END_OF_INPUT,
    BuildNode,
    Grammar,
    Nonterminal,
    Production,
    grammar_from_rules,
)

__all__ = [
    "Grammar",
    "Production",
    "Nonterminal",
    "BuildNode",
    "grammar_from_rules",
    "END_OF_INPUT",
    "parse_bnf",
    "load_grammar",
    "nullable_nonterminals",
    "first_sets",
    "follow_sets",
    "first_of_sequence",
    "sequence_is_nullable",
]
