"""Benchmark harness: timing helpers and per-figure runners."""

from .harness import (
    Measurement,
    Series,
    format_table,
    geometric_mean,
    speedup,
    time_call,
)
from .workbench import (
    DEFAULT_SIZES,
    ORIGINAL_SIZES,
    compaction_ablation,
    complexity_node_counts,
    fig06_parser_comparison,
    fig07_nullable_calls,
    fig10_memo_entries,
    fig11_uncached_derive,
    fig12_single_entry_speedup,
    naming_audit_rows,
    nullability_ablation,
    python_workload,
    speedup_summary_table,
    tiny_python_workload,
)

__all__ = [
    "time_call",
    "Measurement",
    "Series",
    "format_table",
    "geometric_mean",
    "speedup",
    "python_workload",
    "tiny_python_workload",
    "fig06_parser_comparison",
    "fig07_nullable_calls",
    "fig10_memo_entries",
    "fig11_uncached_derive",
    "fig12_single_entry_speedup",
    "speedup_summary_table",
    "compaction_ablation",
    "nullability_ablation",
    "complexity_node_counts",
    "naming_audit_rows",
    "DEFAULT_SIZES",
    "ORIGINAL_SIZES",
]
