"""Benchmark runners: one function per figure/table of the paper's evaluation.

Each ``figNN_*`` / ``*_table`` function returns plain data (lists of row
tuples) and is wrapped by a module in ``benchmarks/`` that prints the table
and feeds one representative configuration to ``pytest-benchmark``.  Keeping
the logic here means the figures can also be regenerated programmatically
(e.g. from the examples or from a notebook) without pytest.

Workload sizes are deliberately modest: the reproduction's parsers are pure
Python, and the original 2011 baseline — faithfully quadratic in its
nullability computation — needs minutes per hundred tokens on the Python
grammar, just as the paper reports it needing minutes for 31 lines.  The
sizes below keep the full benchmark suite to a few minutes while still
exhibiting every relative effect the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..baseline import OriginalParser
from ..core import CompactionConfig, DerivativeParser
from ..core.memo import single_entry_fraction
from ..earley import EarleyParser
from ..glr import GLRParser, build_slr_table
from ..grammars import python_grammar, worst_case_language
from ..workloads import generate_program, repeated_token_stream
from .harness import speedup, time_call

__all__ = [
    "python_workload",
    "tiny_python_workload",
    "fig06_parser_comparison",
    "fig07_nullable_calls",
    "fig10_memo_entries",
    "fig10_interning_ablation",
    "fig11_uncached_derive",
    "fig12_single_entry_speedup",
    "speedup_summary_table",
    "compaction_ablation",
    "nullability_ablation",
    "complexity_node_counts",
    "naming_audit_rows",
    "DEFAULT_SIZES",
    "ORIGINAL_SIZES",
]


#: Token counts for the fast parsers (improved PWD, Earley, GLR).
DEFAULT_SIZES: Tuple[int, ...] = (60, 120, 240, 480)
#: Token counts for the original 2011 parser (quadratic nullability makes it
#: hundreds of times slower, exactly as the paper reports; ~1 s/token here).
ORIGINAL_SIZES: Tuple[int, ...] = (6, 12)


def python_workload(tokens: int, seed: int = 7) -> list:
    """A synthetic Python program truncated/grown to roughly ``tokens`` tokens."""
    program = generate_program(tokens, seed=seed)
    return program.tokens


def tiny_python_workload(tokens: int) -> list:
    """A flat sequence of assignment statements of (almost exactly) ``tokens`` tokens.

    The original 2011 parser is so slow on the Python grammar (minutes for a
    few dozen tokens — the paper reports three minutes for 31 lines) that its
    data points need precise, very small token counts; simple ``NAME = NAME +
    NUMBER`` statements give 6 tokens per line and are in the subset grammar.
    """
    from ..lexer.tokens import Tok

    out: list = []
    index = 0
    while len(out) + 6 <= max(tokens, 6):
        out.extend(
            [
                Tok("NAME", "x{}".format(index)),
                Tok("="),
                Tok("NAME", "x{}".format(index)),
                Tok("+"),
                Tok("NUMBER", str(index)),
                Tok("NEWLINE", "\n"),
            ]
        )
        index += 1
    return out


# ---------------------------------------------------------------------------
# Figure 6 — seconds per token for the four parsers
# ---------------------------------------------------------------------------
def fig06_parser_comparison(
    sizes: Sequence[int] = DEFAULT_SIZES,
    original_sizes: Sequence[int] = ORIGINAL_SIZES,
    repeats: int = 1,
) -> List[Tuple[str, int, float, float]]:
    """Rows of (parser, tokens, seconds, seconds/token) — Figure 6's data."""
    grammar = python_grammar()
    table = build_slr_table(grammar)
    rows: List[Tuple[str, int, float, float]] = []

    for size in original_sizes:
        tokens = tiny_python_workload(size)
        seconds = time_call(lambda: OriginalParser(grammar).recognize(tokens), repeats)
        rows.append(("original-pwd", len(tokens), seconds, seconds / len(tokens)))

    for size in sizes:
        tokens = python_workload(size)
        seconds = time_call(lambda: EarleyParser(grammar).recognize(tokens), repeats)
        rows.append(("earley", len(tokens), seconds, seconds / len(tokens)))

    for size in sizes:
        tokens = python_workload(size)
        seconds = time_call(lambda: DerivativeParser(grammar).recognize(tokens), repeats)
        rows.append(("improved-pwd", len(tokens), seconds, seconds / len(tokens)))

    for size in sizes:
        tokens = python_workload(size)
        seconds = time_call(lambda: GLRParser(grammar, table=table).recognize(tokens), repeats)
        rows.append(("glr", len(tokens), seconds, seconds / len(tokens)))

    return rows


# ---------------------------------------------------------------------------
# Figure 7 — nullable? calls, improved relative to original
# ---------------------------------------------------------------------------
def fig07_nullable_calls(
    sizes: Sequence[int] = ORIGINAL_SIZES,
) -> List[Tuple[int, int, int, int, float]]:
    """Rows of (tokens, improved calls, kernel evaluations, original calls, ratio).

    ``kernel evaluations`` is ``Metrics.fixpoint_node_evaluations`` — every
    transfer-function evaluation the unified fixed-point kernel performed
    for the improved parser (nullability plus the emptiness analysis behind
    pruning), so the figure now reads directly off the kernel the analyses
    share.  The nullability-only share is the classic Figure 7 quantity.
    """
    grammar = python_grammar()
    rows: List[Tuple[int, int, int, int, float]] = []
    for size in sizes:
        tokens = tiny_python_workload(size)
        improved = DerivativeParser(grammar)
        improved.recognize(tokens)
        original = OriginalParser(grammar)
        original.recognize(tokens)
        improved_calls = improved.metrics.nullable_calls
        kernel_evals = improved.metrics.fixpoint_node_evaluations
        original_calls = original.metrics.nullable_calls
        ratio = improved_calls / original_calls if original_calls else float("nan")
        rows.append((len(tokens), improved_calls, kernel_evals, original_calls, ratio))
    return rows


# ---------------------------------------------------------------------------
# Figure 10 — fraction of derive memo tables with a single entry
# ---------------------------------------------------------------------------
def fig10_memo_entries(sizes: Sequence[int] = DEFAULT_SIZES) -> List[Tuple[int, int, int, float]]:
    """Rows of (tokens, single-entry nodes, multi-entry nodes, single fraction)."""
    grammar = python_grammar()
    rows: List[Tuple[int, int, int, float]] = []
    for size in sizes:
        tokens = python_workload(size)
        parser = DerivativeParser(grammar, memo="dict")
        parser.recognize(tokens)
        distribution = parser.memo.entry_distribution()
        single = distribution.get(1, 0)
        multi = sum(count for entries, count in distribution.items() if entries > 1)
        rows.append((len(tokens), single, multi, single_entry_fraction(distribution)))
    return rows


# ---------------------------------------------------------------------------
# Figure 10 companion — hash-consing ablation (interning on vs off)
# ---------------------------------------------------------------------------
def fig10_interning_ablation(
    size: int = 240,
) -> List[Tuple[str, int, int, int, int, int, int, int]]:
    """Rows of (workload, tokens, memo entries off, memo entries on,
    live nodes off, live nodes on, nodes created on, hash-cons hits).

    Measures the hash-consing layer of :class:`~repro.core.compaction.
    Compactor` on the Figure 10 configuration (full per-node hash tables, so
    memo entries are directly countable and no eviction feedback muddies the
    comparison): with interning on, repeated constructions return canonical
    nodes, so both the derive-memo entry count and the reachable
    derivative-graph size drop relative to interning off.
    """
    from ..core.languages import graph_size
    from ..grammars import pl0_grammar
    from ..workloads import pl0_tokens

    workloads = [
        ("python-subset", python_grammar, python_workload(size)),
        ("pl0", pl0_grammar, pl0_tokens(size, seed=1)),
    ]
    rows: List[Tuple[str, int, int, int, int, int, int, int]] = []
    for label, grammar_fn, tokens in workloads:
        measured: Dict[bool, Tuple[int, int, int, int]] = {}
        for interning in (False, True):
            config = CompactionConfig.full()
            config.hash_consing = interning
            parser = DerivativeParser(grammar_fn(), memo="dict", compaction=config)
            state = parser.start()
            state.feed_all(tokens)
            entries = sum(
                entries_per_node * node_count
                for entries_per_node, node_count in parser.memo.entry_distribution().items()
            )
            measured[interning] = (
                entries,
                graph_size(state.language),
                parser.metrics.nodes_created,
                parser.metrics.hash_cons_hits,
            )
        rows.append(
            (
                label,
                len(tokens),
                measured[False][0],
                measured[True][0],
                measured[False][1],
                measured[True][1],
                measured[True][2],
                measured[True][3],
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 11 — uncached derive calls: single-entry vs full hash tables
# ---------------------------------------------------------------------------
def fig11_uncached_derive(
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> List[Tuple[int, int, int, float]]:
    """Rows of (tokens, uncached single, uncached dict, single/dict)."""
    grammar = python_grammar()
    rows: List[Tuple[int, int, int, float]] = []
    for size in sizes:
        tokens = python_workload(size)
        single = DerivativeParser(grammar, memo="single")
        single.recognize(tokens)
        full = DerivativeParser(grammar, memo="dict")
        full.recognize(tokens)
        ratio = (
            single.metrics.derive_uncached / full.metrics.derive_uncached
            if full.metrics.derive_uncached
            else float("nan")
        )
        rows.append((len(tokens), single.metrics.derive_uncached, full.metrics.derive_uncached, ratio))
    return rows


# ---------------------------------------------------------------------------
# Figure 12 — wall-clock speedup of single-entry over full hash tables
# ---------------------------------------------------------------------------
def fig12_single_entry_speedup(
    sizes: Sequence[int] = DEFAULT_SIZES, repeats: int = 1
) -> List[Tuple[int, float, float, float]]:
    """Rows of (tokens, seconds single, seconds dict, speedup)."""
    grammar = python_grammar()
    rows: List[Tuple[int, float, float, float]] = []
    for size in sizes:
        tokens = python_workload(size)
        seconds_single = time_call(
            lambda: DerivativeParser(grammar, memo="single").recognize(tokens), repeats
        )
        seconds_dict = time_call(
            lambda: DerivativeParser(grammar, memo="dict").recognize(tokens), repeats
        )
        rows.append((len(tokens), seconds_single, seconds_dict, speedup(seconds_dict, seconds_single)))
    return rows


# ---------------------------------------------------------------------------
# Section 4.1 headline — relative factors between the parsers
# ---------------------------------------------------------------------------
def speedup_summary_table(
    comparison_size: int = 12,
    fast_size: int = 240,
    repeats: int = 1,
) -> Dict[str, float]:
    """The paper's headline factors, measured on this machine.

    Returns a dict with keys ``improved_vs_original`` (paper: ≈951×),
    ``improved_vs_earley`` (paper: ≈64.6×) and ``glr_vs_improved``
    (paper: Bison ≈25.2× faster than improved PWD).
    """
    grammar = python_grammar()
    table = build_slr_table(grammar)

    small_tokens = tiny_python_workload(comparison_size)
    original_seconds = time_call(lambda: OriginalParser(grammar).recognize(small_tokens), repeats)
    improved_small_seconds = time_call(
        lambda: DerivativeParser(grammar).recognize(small_tokens), repeats
    )

    fast_tokens = python_workload(fast_size)
    improved_seconds = time_call(lambda: DerivativeParser(grammar).recognize(fast_tokens), repeats)
    earley_seconds = time_call(lambda: EarleyParser(grammar).recognize(fast_tokens), repeats)
    glr_seconds = time_call(
        lambda: GLRParser(grammar, table=table).recognize(fast_tokens), repeats
    )

    return {
        "improved_vs_original": speedup(original_seconds, improved_small_seconds),
        "improved_vs_earley": speedup(earley_seconds, improved_seconds),
        "glr_vs_improved": speedup(improved_seconds, glr_seconds),
    }


# ---------------------------------------------------------------------------
# Section 2.6 / 4.3 — compaction ablation
# ---------------------------------------------------------------------------
def compaction_ablation(size: int = 48, repeats: int = 1) -> List[Tuple[str, float, int]]:
    """Rows of (configuration, seconds, nodes created) for compaction variants."""
    grammar = python_grammar()
    tokens = tiny_python_workload(size)
    configurations: List[Tuple[str, dict]] = [
        ("full compaction (Section 4.3)", dict(compaction=CompactionConfig.full())),
        ("2011 rules only", dict(compaction=CompactionConfig.original_2011())),
        ("no empty-branch pruning", dict(compaction=CompactionConfig.full(), prune=False)),
        ("no compaction", dict(compaction=CompactionConfig.disabled())),
    ]
    rows: List[Tuple[str, float, int]] = []
    for label, kwargs in configurations:
        parser_factory = lambda kwargs=kwargs: DerivativeParser(grammar, **kwargs)
        seconds = time_call(lambda: parser_factory().recognize(tokens), repeats)
        probe = parser_factory()
        probe.recognize(tokens)
        rows.append((label, seconds, probe.metrics.nodes_created))
    return rows


# ---------------------------------------------------------------------------
# Section 4.2 — nullability ablation (improved vs naive visit counts)
# ---------------------------------------------------------------------------
def nullability_ablation(sizes: Sequence[int] = ORIGINAL_SIZES) -> List[Tuple[int, int, int]]:
    """Rows of (tokens, improved nullable visits, naive nullable visits)."""
    grammar = python_grammar()
    rows: List[Tuple[int, int, int]] = []
    for size in sizes:
        tokens = tiny_python_workload(size)
        improved = DerivativeParser(grammar)
        improved.recognize(tokens)
        naive = OriginalParser(grammar, compaction=True)
        naive.recognize(tokens)
        rows.append((len(tokens), improved.metrics.nullable_calls, naive.metrics.nullable_calls))
    return rows


# ---------------------------------------------------------------------------
# Section 3 — node-count growth (worst case and in practice)
# ---------------------------------------------------------------------------
def complexity_node_counts(
    worst_case_sizes: Sequence[int] = (4, 8, 16, 32),
    python_sizes: Sequence[int] = (60, 120, 240, 480),
) -> Dict[str, List[Tuple[int, int]]]:
    """Node-construction counts for the worst-case grammar and Python workloads."""
    results: Dict[str, List[Tuple[int, int]]] = {"worst_case": [], "python": []}
    for size in worst_case_sizes:
        parser = DerivativeParser(
            worst_case_language(),
            compaction=CompactionConfig.disabled(),
            optimize_grammar=False,
            prune=False,
        )
        tokens = repeated_token_stream("c", size, distinct=True)
        parser.recognize(tokens)
        results["worst_case"].append((size, parser.metrics.nodes_created))
    grammar = python_grammar()
    for size in python_sizes:
        parser = DerivativeParser(grammar)
        tokens = python_workload(size)
        parser.recognize(tokens)
        results["python"].append((len(tokens), parser.metrics.nodes_created))
    return results


# ---------------------------------------------------------------------------
# Definition 5 / Lemmas 6–7 — naming audit
# ---------------------------------------------------------------------------
def naming_audit_rows(sizes: Sequence[int] = (2, 4, 6, 8)) -> List[Tuple[int, int, int, bool, bool]]:
    """Rows of (tokens, distinct names, theorem-8 bound, lemma6, lemma7)."""
    rows: List[Tuple[int, int, int, bool, bool]] = []
    for size in sizes:
        parser = DerivativeParser(
            worst_case_language(),
            naming=True,
            compaction=CompactionConfig.disabled(),
            optimize_grammar=False,
            prune=False,
        )
        tokens = repeated_token_stream("c", size, distinct=True)
        parser.recognize(tokens)
        audit = parser.naming.audit(size)
        rows.append(
            (
                size,
                audit.distinct_names,
                audit.theorem8_bound,
                audit.lemma6_holds,
                audit.lemma7_holds,
            )
        )
    return rows
