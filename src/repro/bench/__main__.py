"""Entry point for ``python -m repro.bench`` (see :mod:`repro.bench.driver`)."""

import sys

from .driver import main

sys.exit(main())
