"""``python -m repro.bench`` — run the grammar-zoo registry from the CLI.

The driver walks :data:`repro.bench.registry.CELLS` (or a requested
subset), recognizes every (engine × size × seed) stream of each cell,
checks the cheap deterministic gates (cross-engine recognition agreement;
closed-form ambiguity counts; forest-query count/rank/sample checks on
ambiguous cells — including one whose forest is astronomically past
enumeration), and emits one consolidated
provenance-stamped ``BENCH_registry.json`` through the shared
:func:`repro.bench.emit_json` funnel.  CI's quick-mode sweep is exactly
``python -m repro.bench --quick --json BENCH_registry.json``; the heavier
per-figure benchmarks stay in ``benchmarks/``, but they draw their
grammar/workload pairings from the same registry, so the two views can
never drift apart.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

from .harness import emit_json, format_table, time_call
from .registry import CELLS, CELLS_BY_ID, BenchCell

__all__ = ["main", "list_cells", "run_cells"]


def list_cells(cells: Sequence[BenchCell] = CELLS) -> str:
    """Render the engine × grammar × workload matrix as a table."""
    rows = []
    for cell in cells:
        sizes = "/".join(str(size) for size in cell.workload.sizes)
        quick = "/".join(str(size) for size in cell.workload.quick_sizes)
        rows.append(
            [
                cell.id,
                cell.grammar.id,
                cell.workload.id,
                "sizes {} (quick {}) × seeds {}".format(
                    sizes, quick, len(cell.workload.seeds)
                ),
                ",".join(cell.engines),
                ",".join(cell.gates),
            ]
        )
    return format_table(
        ["cell", "grammar", "workload", "streams", "engines", "gates"],
        rows,
        title="grammar zoo registry ({} cells)".format(len(cells)),
    )


def _recognizer(engine: str, grammar):
    """Build ``engine``'s recognize(tokens) callable over ``grammar``."""
    if engine == "derivative":
        from ..core import DerivativeParser

        return DerivativeParser(grammar.to_language()).recognize
    if engine == "compiled":
        from ..compile import CompiledParser

        return CompiledParser(grammar).recognize
    if engine == "earley":
        from ..earley import EarleyParser

        return EarleyParser(grammar).recognize
    if engine == "glr":
        from ..glr import GLRParser

        return GLRParser(grammar).recognize
    raise ValueError("no single-process recognizer for engine {!r}".format(engine))


def run_cells(
    cells: Sequence[BenchCell],
    quick: bool = False,
    engines: Optional[Sequence[str]] = None,
) -> List[dict]:
    """Run every engine × stream of ``cells``; return one row dict per run.

    Deterministic gates are enforced inline: all engines of a cell must
    agree on recognition of every stream, and ambiguity cells must count
    exactly their closed-form number of parse trees.  Gate failures raise
    ``AssertionError`` — the driver is a check, not just a stopwatch.
    """
    from ..core import DerivativeParser
    from ..core.forest import count_trees
    from ..core.forest_query import ForestQuery

    rows: List[dict] = []
    pool = None
    try:
        for cell in cells:
            picked = [
                engine
                for engine in cell.engines
                if engines is None or engine in engines
            ]
            if not picked:
                continue
            grammar = cell.grammar.factory()
            for size, seed, tokens in cell.workload.streams(quick=quick):
                verdicts: Dict[str, bool] = {}
                for engine in picked:
                    if engine == "pooled":
                        if pool is None:
                            from ..serve import PooledParseService

                            pool = PooledParseService(workers=2, replication=1)
                        recognize = None
                        seconds = time_call(
                            lambda: verdicts.setdefault(
                                engine, pool.recognize_many(grammar, [tokens])[0]
                            ),
                            repeats=1,
                        )
                    else:
                        recognize = _recognizer(engine, grammar)
                        seconds = time_call(
                            lambda: verdicts.setdefault(engine, recognize(tokens)),
                            repeats=1 if quick else 3,
                        )
                    rows.append(
                        {
                            "cell": cell.id,
                            "grammar": cell.grammar.id,
                            "workload": cell.workload.id,
                            "engine": engine,
                            "size": size,
                            "seed": seed,
                            "tokens": len(tokens),
                            "recognized": verdicts[engine],
                            "seconds": seconds,
                        }
                    )
                assert len(set(verdicts.values())) == 1, (
                    "engines disagree on cell {!r} size {} seed {}: {!r}".format(
                        cell.id, size, seed, verdicts
                    )
                )
                forest = None
                if "ambiguity" in cell.gates or "forest" in cell.gates:
                    forest = DerivativeParser(grammar.to_language()).parse_forest(
                        tokens
                    )
                    expected = cell.grammar.forest_count(tokens)
                if "ambiguity" in cell.gates:
                    counted = count_trees(forest)
                    assert counted == expected, (
                        "cell {!r}: counted {} trees, closed form says {}".format(
                            cell.id, counted, expected
                        )
                    )
                    rows[-1]["forest_trees"] = counted
                if "forest" in cell.gates:
                    query = ForestQuery(forest, "size")
                    counted = query.count
                    assert type(counted) is int and counted == expected, (
                        "cell {!r}: forest-query count {!r} ({}) vs closed "
                        "form {}".format(
                            cell.id, counted, type(counted).__name__, expected
                        )
                    )
                    ranked = list(query.iter_ranked(3))
                    scores = [score for score, _tree in ranked]
                    assert scores == sorted(scores), (
                        "cell {!r}: ranked scores regressed: {!r}".format(
                            cell.id, scores
                        )
                    )
                    assert len(ranked) == min(3, counted)
                    draws = query.sample_n(seed, 5)
                    assert draws == query.sample_n(seed, 5), (
                        "cell {!r}: same-seed sampling is not replayable".format(
                            cell.id
                        )
                    )
                    rows[-1]["forest_trees"] = counted
                    rows[-1]["forest_topk"] = len(ranked)
                    rows[-1]["forest_samples"] = len(draws)
    finally:
        if pool is not None:
            pool.close()
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.bench``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the grammar-zoo registry: engine × grammar × workload.",
    )
    parser.add_argument(
        "cells",
        nargs="*",
        metavar="CELL",
        help="registry cell ids to run (default: all; see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="print the cell matrix and exit"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        default=bool(os.environ.get("REPRO_BENCH_QUICK")),
        help="CI smoke sizes and single-shot timings (or REPRO_BENCH_QUICK=1)",
    )
    parser.add_argument(
        "--engines",
        metavar="E1,E2",
        help="comma-separated engine filter (default: every engine a cell declares)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the consolidated rows here (also honours REPRO_BENCH_JSON)",
    )
    args = parser.parse_args(argv)

    if args.list:
        print(list_cells())
        return 0

    try:
        cells = [CELLS_BY_ID[cell_id] for cell_id in args.cells] if args.cells else list(CELLS)
    except KeyError as error:
        print(
            "unknown cell {}; valid cells: {}".format(
                error, ", ".join(sorted(CELLS_BY_ID))
            ),
            file=sys.stderr,
        )
        return 2
    engines = args.engines.split(",") if args.engines else None

    rows = run_cells(cells, quick=args.quick, engines=engines)

    print(
        format_table(
            ["cell", "engine", "size", "seed", "tokens", "ok", "seconds"],
            [
                [
                    row["cell"],
                    row["engine"],
                    row["size"],
                    row["seed"],
                    row["tokens"],
                    row["recognized"],
                    "{:.6f}".format(row["seconds"]),
                ]
                for row in rows
            ],
            title="registry sweep ({} runs, {} mode)".format(
                len(rows), "quick" if args.quick else "full"
            ),
        )
    )

    previous = os.environ.get("REPRO_BENCH_JSON")
    if args.json:
        os.environ["REPRO_BENCH_JSON"] = args.json
    try:
        emit_json(
            rows,
            benchmark="registry_sweep",
            quick=args.quick,
            cells=[cell.id for cell in cells],
        )
    finally:
        if args.json:
            if previous is None:
                os.environ.pop("REPRO_BENCH_JSON", None)
            else:
                os.environ["REPRO_BENCH_JSON"] = previous
    return 0
