"""The grammar zoo: a declarative engine × grammar × workload registry.

Every evaluation pairing in this repository — which grammar is exercised by
which deterministic workload, under which engines, gated by which checks —
used to be hard-coded per benchmark file.  This module makes the matrix
*data*: immutable specs bind a grammar factory to a sized/seeded workload
generator, the engines that can run the pair, and the gates the pair must
pass.  Benchmarks iterate registry cells instead of private ``workloads()``
tuples, the differential suites parameterize over the same cells (so a new
zoo entry automatically flows through recognition/tree/failure-position
parity, serialization round-trips, dense-core promotion and incremental
convergence), and ``python -m repro.bench`` drives the whole matrix from
the command line.

Registry vocabulary
-------------------

Engines (``BenchCell.engines``):

``derivative``
    The interpreted :class:`~repro.core.DerivativeParser`.
``compiled``
    :class:`~repro.compile.CompiledParser` over an interned grammar table.
``earley`` / ``glr``
    The oracle engines (GLR is recognition-only).
``pooled``
    :class:`~repro.serve.PooledParseService` — multi-process recognition.

Gates (``BenchCell.gates``):

``differential``
    All cell engines agree on recognition and failure positions, over valid
    and corrupted streams.
``trees``
    Tree-capable engines produce identical parse trees (unambiguous cells).
``ambiguity``
    ``count_trees(parse_forest(...))`` equals the grammar's closed-form
    reference count (``GrammarSpec.forest_count``).
``forest``
    The forest-query layer's answers check out on the cell's forests: the
    exact *integer* count matches the closed form, ranked (top-k)
    extraction emits non-decreasing scores, and same-seed sampling
    replays byte-identically — all without enumerating the forest, so the
    gate holds even on astronomically ambiguous cells.
``serialization``
    A saved + reloaded grammar table reproduces recognition verbatim.
``dense``
    The dense int-indexed core agrees with the hash-map compiled path.
``incremental``
    :class:`~repro.incremental.IncrementalDocument` edits converge to the
    from-scratch result.
``pooled``
    The worker pool agrees with single-process recognition.

A guard test (``tests/differential/test_registry_parity.py``) fails if a
zoo grammar is registered without differential coverage, so the matrix
cannot silently grow unchecked cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..grammars import (
    arithmetic_grammar,
    balanced_parens_grammar,
    binary_sum_grammar,
    catalan_grammar,
    dangling_else_grammar,
    expression_grammar,
    json_grammar,
    pl0_grammar,
    python_grammar,
    sexpr_grammar,
)
from ..lexer.tokens import Tok
from ..workloads import (
    ASTRONOMICAL_LEAVES,
    ASTRONOMICAL_QUICK_LEAVES,
    ambiguous_sum_tokens,
    arithmetic_tokens,
    catalan_count,
    catalan_tokens,
    dangling_else_count,
    dangling_else_tokens,
    expression_tokens,
    generate_program,
    json_document_tokens,
    nested_parens_tokens,
    pl0_tokens,
    sexpr_tokens,
)

__all__ = [
    "GrammarSpec",
    "WorkloadSpec",
    "BenchCell",
    "ENGINES",
    "GATES",
    "CELLS",
    "CELLS_BY_ID",
    "bench_workload",
    "cells_for_gate",
    "cells_for_engine",
    "zoo_grammar_ids",
]


#: Every engine name a cell may declare.
ENGINES: Tuple[str, ...] = ("derivative", "compiled", "earley", "glr", "pooled")

#: Every gate name a cell may declare.
GATES: Tuple[str, ...] = (
    "differential",
    "trees",
    "ambiguity",
    "forest",
    "serialization",
    "dense",
    "incremental",
    "pooled",
)


@dataclass(frozen=True)
class GrammarSpec:
    """One zoo grammar: an id, a factory, and its ambiguity contract.

    ``factory`` returns the (cached) :class:`~repro.cfg.grammar.Grammar`.
    Ambiguous grammars carry ``forest_count`` — the closed-form number of
    parses as a function of the *token stream* — so forest extraction can be
    gated against exact answers instead of other engines' opinions.
    """

    id: str
    description: str
    factory: Callable[[], object]
    ambiguous: bool = False
    forest_count: Optional[Callable[[Sequence[Tok]], int]] = None


@dataclass(frozen=True)
class WorkloadSpec:
    """One deterministic workload: ``generator(size, seed)`` → token stream.

    ``sizes`` are the full-benchmark sizes; ``quick_sizes`` the CI smoke
    sizes (``REPRO_BENCH_QUICK=1`` / ``--quick``).  Determinism is part of
    the contract: the same (size, seed) must yield the identical stream in
    every process, forever (the workload property tests enforce it).
    """

    id: str
    description: str
    generator: Callable[[int, int], List[Tok]]
    sizes: Tuple[int, ...]
    quick_sizes: Tuple[int, ...]
    seeds: Tuple[int, ...] = (0,)
    #: Token kinds whose *values* may be rewritten without leaving the
    #: grammar — what the incremental benchmarks feed to ``value_edit_at``.
    editable_kinds: Tuple[str, ...] = ()

    def streams(self, quick: bool = False) -> List[Tuple[int, int, List[Tok]]]:
        """All (size, seed, tokens) triples for this workload."""
        picked = self.quick_sizes if quick else self.sizes
        return [
            (size, seed, self.generator(size, seed))
            for size in picked
            for seed in self.seeds
        ]


@dataclass(frozen=True)
class BenchCell:
    """One registry cell: a grammar × workload pairing with engines + gates."""

    id: str
    grammar: GrammarSpec
    workload: WorkloadSpec
    engines: Tuple[str, ...]
    gates: Tuple[str, ...]
    notes: str = ""

    def __post_init__(self) -> None:
        for engine in self.engines:
            if engine not in ENGINES:
                raise ValueError(
                    "cell {!r}: unknown engine {!r}".format(self.id, engine)
                )
        for gate in self.gates:
            if gate not in GATES:
                raise ValueError("cell {!r}: unknown gate {!r}".format(self.id, gate))
        for gate in ("ambiguity", "forest"):
            if gate in self.gates and self.grammar.forest_count is None:
                raise ValueError(
                    "cell {!r}: {} gate needs GrammarSpec.forest_count".format(
                        self.id, gate
                    )
                )


def _sized(generator: Callable[[int], List[Tok]]) -> Callable[[int, int], List[Tok]]:
    """Adapt a seedless depth/size-only generator to the (size, seed) shape."""

    def generate(size: int, seed: int) -> List[Tok]:
        return generator(size)

    return generate


def _python_tokens(size: int, seed: int) -> List[Tok]:
    return generate_program(size, seed=seed).tokens


# --------------------------------------------------------------------------
# Grammar specs
# --------------------------------------------------------------------------
_PL0 = GrammarSpec("pl0", "Wirth's PL/0 teaching language", pl0_grammar)
_PYTHON = GrammarSpec("python-subset", "indentation-free Python subset", python_grammar)
_ARITH = GrammarSpec(
    "arithmetic", "left-recursive arithmetic expressions", arithmetic_grammar
)
_SEXPR = GrammarSpec("sexpr", "S-expressions over atoms", sexpr_grammar)
_PARENS = GrammarSpec(
    "balanced-parens", "nullable recursive balanced parentheses", balanced_parens_grammar
)
_JSON = GrammarSpec("json", "json.org value grammar over lexer kinds", json_grammar)
_EXPRESSION = GrammarSpec(
    "expression",
    "function expressions: precedence ladder, powers, unary signs, call sites",
    expression_grammar,
)
_CATALAN = GrammarSpec(
    "catalan",
    "S → S S | a — Catalan(n−1) parses of a^n",
    catalan_grammar,
    ambiguous=True,
    forest_count=lambda tokens: catalan_count(len(tokens)),
)
_DANGLING = GrammarSpec(
    "dangling-else",
    "dangling else — d parses at nesting depth d",
    dangling_else_grammar,
    ambiguous=True,
    forest_count=lambda tokens: dangling_else_count((len(tokens) - 3) // 3),
)
_BINARY_SUM = GrammarSpec(
    "binary-sum",
    "E → E + E | n — Catalan-many additions",
    binary_sum_grammar,
    ambiguous=True,
    forest_count=lambda tokens: catalan_count(sum(1 for t in tokens if t.kind == "n")),
)


# --------------------------------------------------------------------------
# Workload specs
# --------------------------------------------------------------------------
_PL0_W = WorkloadSpec(
    "pl0-programs",
    "seeded PL/0 programs",
    pl0_tokens,
    sizes=(240, 960),
    quick_sizes=(120,),
    seeds=(0, 1),
    editable_kinds=("NUMBER", "IDENT"),
)
_PYTHON_W = WorkloadSpec(
    "python-programs",
    "seeded synthetic Python programs",
    _python_tokens,
    sizes=(240, 960),
    quick_sizes=(120,),
    seeds=(0, 1),
    editable_kinds=("NUMBER", "NAME"),
)
_ARITH_W = WorkloadSpec(
    "arithmetic-expressions",
    "seeded arithmetic expressions",
    arithmetic_tokens,
    sizes=(120, 480),
    quick_sizes=(60,),
    seeds=(0, 1),
    editable_kinds=("NUMBER", "NAME"),
)
_SEXPR_W = WorkloadSpec(
    "sexpr-trees",
    "seeded nested S-expressions",
    sexpr_tokens,
    sizes=(120, 480),
    quick_sizes=(60,),
    seeds=(0, 1),
)
_PARENS_W = WorkloadSpec(
    "paren-nests",
    "fully nested parenthesis runs (depth-parameterized)",
    _sized(nested_parens_tokens),
    sizes=(40, 120),
    quick_sizes=(20,),
)
_JSON_W = WorkloadSpec(
    "json-documents",
    "large generated JSON documents (array-of-records shape)",
    json_document_tokens,
    sizes=(300, 1200),
    quick_sizes=(150,),
    seeds=(0, 1),
    editable_kinds=("NUMBER", "STRING"),
)
_EXPRESSION_W = WorkloadSpec(
    "function-expressions",
    "seeded function expressions with calls, powers and unary signs",
    expression_tokens,
    sizes=(120, 480),
    quick_sizes=(60,),
    seeds=(0, 1),
    editable_kinds=("NUMBER", "IDENT"),
)
_CATALAN_W = WorkloadSpec(
    "catalan-leaves",
    "a^n runs (forest grows as Catalan numbers)",
    _sized(catalan_tokens),
    sizes=(6, 10),
    quick_sizes=(5,),
)
_DANGLING_W = WorkloadSpec(
    "dangling-else-depths",
    "(if c then)^d s else s nests (forest grows linearly)",
    _sized(dangling_else_tokens),
    sizes=(4, 8),
    quick_sizes=(3,),
)
_BINARY_SUM_W = WorkloadSpec(
    "sum-chains",
    "n + n + ... + n chains (Catalan-many bracketings)",
    _sized(ambiguous_sum_tokens),
    sizes=(5, 9),
    quick_sizes=(4,),
)
_ASTRONOMICAL_W = WorkloadSpec(
    "catalan-astronomical",
    "a^n past enumerability: Catalan(40) ≈ 2.6e21 parses (quick: ≈1.8e13)",
    _sized(catalan_tokens),
    sizes=(ASTRONOMICAL_LEAVES,),
    quick_sizes=(ASTRONOMICAL_QUICK_LEAVES,),
)


# --------------------------------------------------------------------------
# The matrix
# --------------------------------------------------------------------------
_RECOGNIZERS = ("derivative", "compiled", "earley", "glr")

CELLS: Tuple[BenchCell, ...] = (
    BenchCell(
        id="pl0",
        grammar=_PL0,
        workload=_PL0_W,
        engines=_RECOGNIZERS + ("pooled",),
        gates=(
            "differential",
            "trees",
            "serialization",
            "dense",
            "incremental",
            "pooled",
        ),
        notes="the repository's anchor realistic-language cell",
    ),
    BenchCell(
        id="python-subset",
        grammar=_PYTHON,
        workload=_PYTHON_W,
        engines=_RECOGNIZERS + ("pooled",),
        gates=(
            "differential",
            "trees",
            "serialization",
            "dense",
            "incremental",
            "pooled",
        ),
        notes="largest grammar; the paper's headline workload",
    ),
    BenchCell(
        id="arithmetic",
        grammar=_ARITH,
        workload=_ARITH_W,
        engines=_RECOGNIZERS,
        gates=("differential", "trees", "serialization", "incremental"),
        notes="left recursion in its smallest form",
    ),
    BenchCell(
        id="sexpr",
        grammar=_SEXPR,
        workload=_SEXPR_W,
        engines=_RECOGNIZERS,
        gates=("differential", "trees", "serialization"),
    ),
    BenchCell(
        id="balanced-parens",
        grammar=_PARENS,
        workload=_PARENS_W,
        engines=_RECOGNIZERS,
        gates=("differential", "trees"),
        notes="nullable recursion: the derivative's hardest small case",
    ),
    BenchCell(
        id="json-documents",
        grammar=_JSON,
        workload=_JSON_W,
        engines=_RECOGNIZERS + ("pooled",),
        gates=("differential", "trees", "serialization", "dense", "pooled"),
        notes="data-format cell driven by large generated documents",
    ),
    BenchCell(
        id="expression",
        grammar=_EXPRESSION,
        workload=_EXPRESSION_W,
        engines=_RECOGNIZERS,
        gates=("differential", "trees", "serialization", "dense", "incremental"),
        notes="deep operator nesting through several mutually recursive levels",
    ),
    BenchCell(
        id="catalan",
        grammar=_CATALAN,
        workload=_CATALAN_W,
        engines=_RECOGNIZERS,
        gates=("differential", "ambiguity", "forest"),
        notes="forest-extraction cost isolated from recognition cost",
    ),
    BenchCell(
        id="dangling-else",
        grammar=_DANGLING,
        workload=_DANGLING_W,
        engines=_RECOGNIZERS,
        gates=("differential", "ambiguity", "forest"),
        notes="linear ambiguity: deep inputs stay countable",
    ),
    BenchCell(
        id="binary-sum",
        grammar=_BINARY_SUM,
        workload=_BINARY_SUM_W,
        engines=_RECOGNIZERS,
        gates=("differential", "ambiguity", "forest"),
        notes="the textbook ambiguous expression grammar",
    ),
    BenchCell(
        id="catalan-astronomical",
        grammar=_CATALAN,
        workload=_ASTRONOMICAL_W,
        engines=("derivative",),
        gates=("ambiguity", "forest"),
        notes="count/rank/sample where enumeration is physically impossible",
    ),
)

CELLS_BY_ID: Dict[str, BenchCell] = {cell.id: cell for cell in CELLS}
if len(CELLS_BY_ID) != len(CELLS):
    raise RuntimeError("duplicate registry cell ids")


def bench_workload(cell_id: str) -> BenchCell:
    """Resolve one registry cell for a benchmark file.

    Benchmarks pin their cells by id (their sizes and acceptance bars are
    tuned per pairing), but the grammar factory and workload generator come
    from the registry, so a pairing can never drift from what the
    differential suites cover.  Raises ``KeyError`` listing the valid ids.
    """
    try:
        return CELLS_BY_ID[cell_id]
    except KeyError:
        raise KeyError(
            "no registry cell {!r}; known cells: {}".format(
                cell_id, ", ".join(sorted(CELLS_BY_ID))
            )
        ) from None


def cells_for_gate(gate: str) -> Tuple[BenchCell, ...]:
    """All cells declaring ``gate`` (raises on unknown gate names)."""
    if gate not in GATES:
        raise ValueError("unknown gate {!r}".format(gate))
    return tuple(cell for cell in CELLS if gate in cell.gates)


def cells_for_engine(engine: str) -> Tuple[BenchCell, ...]:
    """All cells declaring ``engine`` (raises on unknown engine names)."""
    if engine not in ENGINES:
        raise ValueError("unknown engine {!r}".format(engine))
    return tuple(cell for cell in CELLS if engine in cell.engines)


def zoo_grammar_ids() -> Tuple[str, ...]:
    """Every distinct grammar id registered in the zoo, in cell order."""
    seen: List[str] = []
    for cell in CELLS:
        if cell.grammar.id not in seen:
            seen.append(cell.grammar.id)
    return tuple(seen)
