"""Timing and reporting helpers shared by the benchmark suite.

The paper's evaluation normalizes everything to *seconds per token parsed*
(Figure 6) and reports relative factors (951× vs the original implementation,
64.6× vs parser-tools, 25.2× slower than Bison, 2.04× from single-entry
memoization).  This module provides the small amount of machinery needed to
produce those numbers reproducibly:

* :func:`time_call` — median-of-N wall-clock timing of a callable,
* :class:`Measurement` / :class:`Series` — one parser's seconds-per-token
  across input sizes,
* :func:`format_table` — fixed-width tables printed by every benchmark so the
  regenerated "figure" appears directly in the pytest output,
* :func:`geometric_mean` — the averaging used for the headline factors,
* :func:`emit_json` — the shared ``REPRO_BENCH_JSON`` artifact writer (CI
  smoke jobs upload each benchmark's measured rows as a ``BENCH_*.json``
  artifact so regressions can be diffed across runs).
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "time_call",
    "Measurement",
    "Series",
    "format_table",
    "geometric_mean",
    "speedup",
    "run_meta",
    "emit_json",
]


def time_call(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    samples: List[float] = []
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


@dataclass
class Measurement:
    """One (parser, input size) timing."""

    label: str
    tokens: int
    seconds: float

    @property
    def seconds_per_token(self) -> float:
        return self.seconds / self.tokens if self.tokens else float("nan")


@dataclass
class Series:
    """All measurements for one parser across input sizes."""

    label: str
    measurements: List[Measurement] = field(default_factory=list)

    def add(self, tokens: int, seconds: float) -> None:
        self.measurements.append(Measurement(self.label, tokens, seconds))

    def seconds_per_token(self) -> List[float]:
        return [m.seconds_per_token for m in self.measurements]

    def mean_seconds_per_token(self) -> float:
        values = self.seconds_per_token()
        return sum(values) / len(values) if values else float("nan")


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (used for headline speedup factors)."""
    values = [value for value in values if value > 0]
    if not values:
        return float("nan")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def speedup(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` is than ``baseline``."""
    if improved <= 0:
        return float("nan")
    return baseline / improved


def _git_sha() -> Optional[str]:
    """The repository HEAD commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.decode("ascii", "replace").strip()
    return sha or None


def run_meta() -> Dict[str, Optional[str]]:
    """Provenance stamped into every artifact: commit sha + UTC timestamp.

    ``git_sha`` is None when the benchmark runs outside a git checkout
    (an installed sdist, say) — artifacts must still be writable there.
    """
    return {
        "git_sha": _git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def emit_json(rows: Sequence[dict], **meta: object) -> Optional[str]:
    """Write measured rows to the path named by ``REPRO_BENCH_JSON``.

    Every benchmark funnels its row dicts through this helper so the JSON
    artifacts all share one shape: ``{**meta, "meta": {...}, "rows": [...]}``
    where the ``meta`` field stamps provenance (:func:`run_meta`: the git
    commit the numbers came from and when they were taken — a ``BENCH_*``
    artifact diffed weeks later has to say which build it measured).
    Returns the path written, or ``None`` when the environment variable is
    unset (the common local case — benchmarks print their tables either way).
    """
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return None
    with open(path, "w") as handle:
        json.dump({**meta, "meta": run_meta(), "rows": list(rows)}, handle, indent=2)
    print("wrote {} rows to {}".format(len(rows), path))
    return path


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table (the benchmarks print these)."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[index] for index in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return "{:.3e}".format(cell)
        return "{:.4f}".format(cell)
    return str(cell)
