"""Tokenize Python source into the token vocabulary of the Python-subset grammar.

The paper's corpus is "the Python Standard Library ... tokenized in advance"
(Section 4.1).  This module is the bridge between real Python source files and
the reproduction's parsers: it runs the standard library's ``tokenize`` module
and maps its tokens onto the kinds used by
:func:`repro.grammars.python_subset.python_grammar`:

* keywords become their own kinds (``"def"``, ``"if"``, ...),
* identifiers become ``NAME``, numbers ``NUMBER``, strings ``STRING``,
* operators and delimiters use their literal text (``"+"``, ``"("``, ...),
* ``NEWLINE``, ``INDENT`` and ``DEDENT`` pass through (the grammar is
  whitespace-structured, like Python's real grammar),
* comments, blank-line ``NL`` tokens, encoding markers and the end marker are
  dropped.
"""

from __future__ import annotations

import io
import keyword
import tokenize as std_tokenize
from typing import List

from ..core.errors import LexError
from .tokens import Tok

__all__ = ["tokenize_python", "tokenize_python_file"]


_DROPPED = {
    std_tokenize.COMMENT,
    std_tokenize.NL,
    std_tokenize.ENCODING,
    std_tokenize.ENDMARKER,
}


def tokenize_python(source: str) -> List[Tok]:
    """Tokenize Python source text into :class:`~repro.lexer.tokens.Tok` objects."""
    reader = io.StringIO(source).readline
    out: List[Tok] = []
    try:
        for tok in std_tokenize.generate_tokens(reader):
            mapped = _map_token(tok)
            if mapped is not None:
                out.append(mapped)
    except (std_tokenize.TokenError, IndentationError, SyntaxError) as exc:
        raise LexError("could not tokenize Python source: {}".format(exc)) from exc
    return out


def tokenize_python_file(path: str) -> List[Tok]:
    """Tokenize a Python file on disk."""
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return tokenize_python(handle.read())


def _map_token(tok: "std_tokenize.TokenInfo") -> Tok | None:
    kind = tok.type
    text = tok.string
    line, column = tok.start
    if kind in _DROPPED:
        return None
    if kind == std_tokenize.NAME:
        if keyword.iskeyword(text):
            return Tok(text, text, line, column + 1)
        return Tok("NAME", text, line, column + 1)
    if kind == std_tokenize.NUMBER:
        return Tok("NUMBER", text, line, column + 1)
    if kind == std_tokenize.STRING or kind == getattr(std_tokenize, "FSTRING_START", -1):
        return Tok("STRING", text, line, column + 1)
    if kind == std_tokenize.NEWLINE:
        return Tok("NEWLINE", "\n", line, column + 1)
    if kind == std_tokenize.INDENT:
        return Tok("INDENT", text, line, column + 1)
    if kind == std_tokenize.DEDENT:
        return Tok("DEDENT", "", line, column + 1)
    if kind == std_tokenize.OP:
        return Tok(text, text, line, column + 1)
    # Anything else (await/async soft tokens on old versions, error tokens …)
    # is passed through by its literal text so grammars can choose to care.
    return Tok(text, text, line, column + 1)
