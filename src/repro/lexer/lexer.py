"""A longest-match lexer driven by regular-expression derivatives.

The paper tokenizes its corpus before benchmarking ("we tokenized files in
advance and loaded those tokens into memory", Section 4.1), so the
reproduction needs a tokenizer substrate.  :class:`Lexer` turns a list of
``(kind, regex)`` rules into a scanner:

* at each position every rule's regex is derived character by character,
* the longest match wins; ties go to the earlier rule (the usual lex rules),
* rules whose kind is in ``skip`` produce no token (whitespace, comments).

Because matching is by Brzozowski derivatives, the lexer is itself a small
demonstration of the technique the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.errors import LexError
from ..regex.derivatives import Regex, _Null
from .tokens import Tok

__all__ = ["LexRule", "Lexer"]


@dataclass(frozen=True)
class LexRule:
    """One lexer rule: token ``kind`` plus the regex recognizing its lexemes."""

    kind: str
    pattern: Regex


class Lexer:
    """Longest-match scanner over a prioritized list of lexical rules."""

    def __init__(
        self,
        rules: Sequence[Tuple[str, Regex]],
        skip: Iterable[str] = (),
        keywords: Optional[dict] = None,
    ) -> None:
        self.rules = [LexRule(kind, pattern) for kind, pattern in rules]
        self.skip = frozenset(skip)
        # keyword map: when a rule's lexeme is a key here, the token kind is
        # replaced (the classic identifier-vs-keyword special case).
        self.keywords = dict(keywords or {})

    def tokens(self, text: str) -> List[Tok]:
        """Tokenize ``text`` completely, raising :class:`LexError` on failure."""
        out: List[Tok] = []
        position = 0
        line = 1
        column = 1
        while position < len(text):
            kind, lexeme = self._longest_match(text, position)
            if kind is None:
                raise LexError(
                    "cannot tokenize input at offset {} ({!r}...)".format(
                        position, text[position : position + 10]
                    ),
                    position=position,
                )
            if kind not in self.skip:
                token_kind = self.keywords.get(lexeme, kind)
                value = lexeme
                out.append(Tok(token_kind, value, line, column))
            newlines = lexeme.count("\n")
            if newlines:
                line += newlines
                column = len(lexeme) - lexeme.rfind("\n")
            else:
                column += len(lexeme)
            position += len(lexeme)
        return out

    def _longest_match(self, text: str, start: int) -> Tuple[Optional[str], str]:
        """Return the (kind, lexeme) of the longest match at ``start``."""
        best_kind: Optional[str] = None
        best_length = 0
        for rule in self.rules:
            length = self._match_length(rule.pattern, text, start)
            if length > best_length:
                best_kind = rule.kind
                best_length = length
        return best_kind, text[start : start + best_length]

    @staticmethod
    def _match_length(pattern: Regex, text: str, start: int) -> int:
        """Length of the longest prefix of ``text[start:]`` matching ``pattern``."""
        current = pattern
        best = -1
        if current.nullable():
            best = 0
        position = start
        while position < len(text):
            current = current.derive(text[position])
            if isinstance(current, _Null):
                break
            position += 1
            if current.nullable():
                best = position - start
        return max(best, 0)
