"""The token type shared by every parser in the reproduction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Tok"]


@dataclass(frozen=True)
class Tok:
    """A lexed token: a ``kind`` (what grammars match on) and a ``value``.

    ``kind`` is what terminal symbols in grammars refer to (``"NAME"``,
    ``"+"`` …) and ``value`` is the semantic payload that ends up in parse
    trees (``"foo"``, ``"+"`` …).  ``line``/``column`` are 1-based source
    coordinates when known, 0 otherwise.

    Equality and hashing deliberately include only ``kind`` and ``value``:
    the derivative parser memoizes ``derive`` per token, and two occurrences
    of the same token text at different positions must share memo entries
    (Section 4.4 discusses precisely this reuse).
    """

    kind: str
    value: Any = None
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.value is None:
            object.__setattr__(self, "value", self.kind)

    def __str__(self) -> str:
        if self.value == self.kind:
            return str(self.kind)
        return "{}({!r})".format(self.kind, self.value)
