"""Derivative-based lexer and Python tokenizer bridge."""

from .lexer import Lexer, LexRule
from .python_tokens import tokenize_python, tokenize_python_file
from .tokens import Tok

__all__ = ["Tok", "Lexer", "LexRule", "tokenize_python", "tokenize_python_file"]
