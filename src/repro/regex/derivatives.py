"""Brzozowski derivatives of regular expressions (Section 2.1 made executable).

Parsing with derivatives generalizes Brzozowski's 1964 technique for regular
expressions; this module implements the original technique, both because the
paper's background section builds on it and because the reproduction's lexer
(:mod:`repro.lexer`) uses it to recognize token classes.

A regular expression is represented by a small AST (:class:`Regex` subclasses)
with smart constructors that keep expressions in a weak normal form (the
"similarity" rules Brzozowski uses to keep the set of derivatives finite):

* ``∅ | r ⇒ r``, ``r | r ⇒ r``
* ``∅ · r ⇒ ∅``, ``ε · r ⇒ r``
* ``(r*)* ⇒ r*``, ``ε* ⇒ ε``, ``∅* ⇒ ε``

With these rules the set of derivatives of any regex is finite, which is what
makes :func:`to_dfa` terminate.

Like the grammar engine (PR 1), the hot traversals here are **iterative**:
:func:`nullable` is one more declaration on the unified fixed-point kernel
(:mod:`repro.core.fixpoint`) — the same solver behind the grammar
nullability/productivity analyses — with its final values cached directly on
the (immutable) regex nodes, and :func:`derive` runs on an explicit stack
with per-call sharing-aware memoization.  Regexes nested thousands of levels
deep (machine-generated literals, deeply parenthesized alternations) are
therefore handled without ever approaching the interpreter recursion limit,
and repeated derivation no longer re-walks the whole expression to answer
nullability: each node is solved once per process, then answers in O(1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..core.fixpoint import NOT_FINAL, FixpointAnalysis, FixpointSolver

__all__ = [
    "Regex",
    "NULL",
    "EPSILON",
    "char",
    "chars",
    "char_range",
    "any_char",
    "seq",
    "alt",
    "star",
    "plus",
    "optional",
    "literal",
    "nullable",
    "derive",
    "matches",
    "signature_partition",
    "charset_leaves",
    "DFA",
    "to_dfa",
]


class Regex:
    """Base class of the regular-expression AST (immutable, hashable)."""

    def nullable(self) -> bool:
        """True when this regex matches the empty string."""
        return nullable(self)

    def derive(self, symbol: str) -> "Regex":
        """The Brzozowski derivative of this regex with respect to ``symbol``."""
        return derive(self, symbol)

    # Convenience operators mirroring the parsing-expression sugar.
    def __or__(self, other: "Regex") -> "Regex":
        return alt(self, other)

    def __add__(self, other: "Regex") -> "Regex":
        return seq(self, other)


@dataclass(frozen=True)
class _Null(Regex):
    """The empty language ``∅``."""

    def __repr__(self) -> str:
        return "∅"


@dataclass(frozen=True)
class _Epsilon(Regex):
    """The empty-string language ``ε``."""

    def __repr__(self) -> str:
        return "ε"


NULL = _Null()
EPSILON = _Epsilon()


@dataclass(frozen=True)
class CharSet(Regex):
    """A single symbol drawn from a set of characters (or its complement)."""

    symbols: FrozenSet[str]
    negated: bool = False

    def accepts(self, symbol: str) -> bool:
        return (symbol in self.symbols) != self.negated

    def __repr__(self) -> str:
        inside = "".join(sorted(self.symbols))
        return "[^{}]".format(inside) if self.negated else "[{}]".format(inside)


@dataclass(frozen=True)
class Seq(Regex):
    """Concatenation ``first · second``."""

    first: Regex
    second: Regex

    def __repr__(self) -> str:
        return "({!r}{!r})".format(self.first, self.second)


@dataclass(frozen=True)
class Alt(Regex):
    """Alternation ``left | right``."""

    left: Regex
    right: Regex

    def __repr__(self) -> str:
        return "({!r}|{!r})".format(self.left, self.right)


@dataclass(frozen=True)
class Star(Regex):
    """Kleene closure ``inner*``."""

    inner: Regex

    def __repr__(self) -> str:
        return "({!r})*".format(self.inner)


# ------------------------------------------------------------ constructors
def char(symbol: str) -> Regex:
    """A regex matching exactly the one-character string ``symbol``."""
    if len(symbol) != 1:
        raise ValueError("char() expects a single character, got {!r}".format(symbol))
    return CharSet(frozenset({symbol}))


def chars(symbols: Iterable[str], negated: bool = False) -> Regex:
    """A regex matching any one character in ``symbols`` (or outside it)."""
    return CharSet(frozenset(symbols), negated)


def char_range(start: str, end: str) -> Regex:
    """A regex matching one character in the inclusive range ``start``–``end``."""
    return chars(chr(code) for code in range(ord(start), ord(end) + 1))


def any_char() -> Regex:
    """A regex matching any single character."""
    return CharSet(frozenset(), negated=True)


def seq(*parts: Regex) -> Regex:
    """Concatenation with the ``∅``/``ε`` simplifications applied."""
    result: Optional[Regex] = None
    for part in reversed(parts):
        if isinstance(part, _Null):
            return NULL
        if isinstance(part, _Epsilon):
            continue
        result = part if result is None else Seq(part, result)
    return result if result is not None else EPSILON


def alt(*parts: Regex) -> Regex:
    """Alternation with ``∅`` elimination and duplicate removal."""
    flat: List[Regex] = []
    for part in parts:
        if isinstance(part, _Null):
            continue
        if part not in flat:
            flat.append(part)
    if not flat:
        return NULL
    result = flat[0]
    for part in flat[1:]:
        result = Alt(result, part)
    return result


def star(inner: Regex) -> Regex:
    """Kleene star with ``(r*)* ⇒ r*``, ``ε* ⇒ ε`` and ``∅* ⇒ ε``."""
    if isinstance(inner, (_Epsilon, _Null)):
        return EPSILON
    if isinstance(inner, Star):
        return inner
    return Star(inner)


def plus(inner: Regex) -> Regex:
    """``r+ = r · r*``."""
    return seq(inner, star(inner))


def optional(inner: Regex) -> Regex:
    """``r? = ε | r``."""
    return alt(EPSILON, inner)


def literal(text: str) -> Regex:
    """A regex matching exactly ``text``."""
    return seq(*(char(symbol) for symbol in text))


# ---------------------------------------------------------------- nullability
class _RegexNullability(FixpointAnalysis):
    """Regex nullability as a declaration on the shared fixed-point kernel.

    Regex ASTs are acyclic, so the "fixed point" converges in one bottom-up
    sweep — but routing it through the kernel buys the explicit-worklist
    traversal (no recursion-limit ceiling on deep expressions) and the
    tentative→final machinery for free.  Final values are cached on the
    nodes themselves (``object.__setattr__`` sidesteps the frozen-dataclass
    guard; the attribute is not a dataclass field, so equality and hashing
    are unaffected), which is sound because regexes are immutable.

    Nodes are keyed by ``id``: the dataclass-generated structural hash
    recurses over the whole expression, which is exactly the stack hazard
    this analysis exists to avoid.  The kernel holds strong references to
    every discovered node for the duration of a solve, keeping ids stable.
    """

    def bottom(self, node: Regex) -> bool:
        return False

    def key(self, node: Regex) -> int:
        return id(node)

    def final(self, node: Regex):
        return node.__dict__.get("_nullable", NOT_FINAL)

    def finalize(self, node: Regex, value: bool) -> None:
        object.__setattr__(node, "_nullable", value)

    def dependencies(self, node: Regex) -> tuple:
        if isinstance(node, Seq):
            return (node.first, node.second)
        if isinstance(node, Alt):
            return (node.left, node.right)
        # Star is nullable regardless of its inner expression; leaves have
        # no dependencies.
        return ()

    def transfer(self, node: Regex, get) -> bool:
        if isinstance(node, (_Epsilon, Star)):
            return True
        if isinstance(node, (_Null, CharSet)):
            return False
        if isinstance(node, Seq):
            return get(node.first) and get(node.second)
        if isinstance(node, Alt):
            return get(node.left) or get(node.right)
        raise TypeError("unknown regex node type: {!r}".format(node))


_NULLABILITY = FixpointSolver(_RegexNullability())

#: Recursion bound for the shallow fast paths.  Lexing derives a fresh small
#: regex per input character, so the common case must stay as cheap as the
#: plain recursive formulation; expressions deeper than this fall back to the
#: explicit-stack/kernel machinery.  The nullable and derive fast paths can
#: nest (Seq derivation consults nullability), so the combined worst case —
#: about two frames per level times two facilities — stays far below the
#: default interpreter limit of 1000.
_FAST_DEPTH = 128


def _nullable_fast(node: Regex, depth: int):
    """Recursive nullability for shallow expressions; None when too deep."""
    if depth <= 0:
        return None
    cached = node.__dict__.get("_nullable")
    if cached is not None:
        return cached
    if isinstance(node, (_Epsilon, Star)):
        return True
    if isinstance(node, (_Null, CharSet)):
        return False
    if isinstance(node, Seq):
        first = _nullable_fast(node.first, depth - 1)
        if first is None:
            return None
        if not first:
            return False
        return _nullable_fast(node.second, depth - 1)
    if isinstance(node, Alt):
        left = _nullable_fast(node.left, depth - 1)
        if left is None:
            return None
        if left:
            return True
        return _nullable_fast(node.right, depth - 1)
    raise TypeError("unknown regex node type: {!r}".format(node))


def nullable(regex: Regex) -> bool:
    """True when the regex matches the empty string (depth-safe, O(1) cached)."""
    cached = regex.__dict__.get("_nullable")
    if cached is not None:
        return cached
    result = _nullable_fast(regex, _FAST_DEPTH)
    if result is None:
        return _NULLABILITY.value(regex)
    return result


# ---------------------------------------------------------------- derivation
# Opcodes for the explicit-stack derive machine (the same shape as the
# grammar engine's iterative Deriver): _DERIVE requests one node's
# derivative; the _FINISH_* entries resume a composite node once its
# children's derivatives are in its result slots.
(
    _DERIVE,
    _FINISH_SEQ,
    _FINISH_SEQ_NULLABLE,
    _FINISH_ALT,
    _FINISH_STAR,
) = range(5)


def _derive_fast(node: Regex, symbol: str, depth: int) -> Optional[Regex]:
    """Recursive derivation for shallow expressions; None when too deep.

    The allocation-free common case: lexing derives a fresh small regex per
    input character, and the explicit-stack machine's per-call memo and
    frame tuples would tax that hot path several-fold.
    """
    if depth <= 0:
        return None
    if isinstance(node, CharSet):
        return EPSILON if node.accepts(symbol) else NULL
    if isinstance(node, (_Null, _Epsilon)):
        return NULL
    if isinstance(node, Seq):
        first = _derive_fast(node.first, symbol, depth - 1)
        if first is None:
            return None
        head = seq(first, node.second)
        if nullable(node.first):
            second = _derive_fast(node.second, symbol, depth - 1)
            if second is None:
                return None
            return alt(head, second)
        return head
    if isinstance(node, Alt):
        left = _derive_fast(node.left, symbol, depth - 1)
        if left is None:
            return None
        right = _derive_fast(node.right, symbol, depth - 1)
        if right is None:
            return None
        return alt(left, right)
    if isinstance(node, Star):
        inner = _derive_fast(node.inner, symbol, depth - 1)
        if inner is None:
            return None
        return seq(inner, node)
    raise TypeError("cannot derive unknown regex node: {!r}".format(node))


def derive(regex: Regex, symbol: str) -> Regex:
    """The Brzozowski derivative of ``regex`` with respect to ``symbol``.

    Depth-safe: shallow expressions (the lexer's per-character hot path) go
    through a bounded recursive fast path; anything deeper falls back to an
    explicit-stack machine that is also sharing-aware — subexpressions that
    appear multiple times in the AST are derived once per call, keyed by
    identity in a per-call memo (every key is kept alive by the root
    expression, so ids are stable).
    """
    fast = _derive_fast(regex, symbol, _FAST_DEPTH)
    if fast is not None:
        return fast
    memo: Dict[int, Regex] = {}
    root_slot: List[Optional[Regex]] = [None]
    stack: List[Tuple] = [(_DERIVE, regex, root_slot, 0)]

    while stack:
        entry = stack.pop()
        op = entry[0]

        if op == _DERIVE:
            _, node, out, slot = entry
            cached = memo.get(id(node))
            if cached is not None:
                out[slot] = cached
                continue

            if isinstance(node, CharSet):
                result: Regex = EPSILON if node.accepts(symbol) else NULL
            elif isinstance(node, (_Null, _Epsilon)):
                result = NULL
            elif isinstance(node, Seq):
                if nullable(node.first):
                    # Dc(r1 · r2) = Dc(r1) · r2 | Dc(r2)   when ε ∈ ⟦r1⟧
                    results: List[Optional[Regex]] = [None, None]
                    stack.append((_FINISH_SEQ_NULLABLE, node, results, out, slot))
                    stack.append((_DERIVE, node.second, results, 1))
                    stack.append((_DERIVE, node.first, results, 0))
                else:
                    results = [None]
                    stack.append((_FINISH_SEQ, node, results, out, slot))
                    stack.append((_DERIVE, node.first, results, 0))
                continue
            elif isinstance(node, Alt):
                results = [None, None]
                stack.append((_FINISH_ALT, node, results, out, slot))
                stack.append((_DERIVE, node.right, results, 1))
                stack.append((_DERIVE, node.left, results, 0))
                continue
            elif isinstance(node, Star):
                results = [None]
                stack.append((_FINISH_STAR, node, results, out, slot))
                stack.append((_DERIVE, node.inner, results, 0))
                continue
            else:
                raise TypeError("cannot derive unknown regex node: {!r}".format(node))
            memo[id(node)] = result
            out[slot] = result
            continue

        # ---------------------------------------------------------- _FINISH_*
        _, node, results, out, slot = entry
        if op == _FINISH_SEQ:
            result = seq(results[0], node.second)
        elif op == _FINISH_SEQ_NULLABLE:
            result = alt(seq(results[0], node.second), results[1])
        elif op == _FINISH_ALT:
            result = alt(results[0], results[1])
        else:  # _FINISH_STAR: Dc(r*) = Dc(r) · r*
            result = seq(results[0], node)
        memo[id(node)] = result
        out[slot] = result

    return root_slot[0]


def matches(regex: Regex, text: str) -> bool:
    """Match by repeated derivation — the algorithm of Section 2.1."""
    current = regex
    for symbol in text:
        current = derive(current, symbol)
        if isinstance(current, _Null):
            return False
    return nullable(current)


# -------------------------------------------------------------- token classes
def signature_partition(symbols, acceptors):
    """Partition ``symbols`` into equivalence classes under ``acceptors``.

    Two symbols are equivalent when every acceptor (a predicate taking one
    symbol) answers identically for both — their *acceptance signature*
    matches.  The result maps each signature (a tuple of booleans, one per
    acceptor) to the list of symbols carrying it, preserving first-seen
    order within each class.

    This is the character-class trick of derivative-based regex engines: the
    derivative of an expression with respect to a symbol depends only on
    which of its character-set leaves accept the symbol, so one derivative
    per class covers the whole alphabet.  The grammar-level token-class
    analysis in :mod:`repro.compile` applies the same partition with
    :class:`repro.core.languages.Token` matchers as the acceptors.
    """
    acceptors = tuple(acceptors)
    groups: Dict[Tuple[bool, ...], List] = {}
    for symbol in symbols:
        signature = tuple(bool(acceptor(symbol)) for acceptor in acceptors)
        groups.setdefault(signature, []).append(symbol)
    return groups


def charset_leaves(regex: Regex) -> List[CharSet]:
    """Every :class:`CharSet` leaf of ``regex``, in deterministic order.

    Iterative (literals build ``Seq`` chains as deep as the literal), and
    deduplicated by object identity so shared leaves appear once.
    """
    leaves: List[CharSet] = []
    seen: set = set()
    stack: List[Regex] = [regex]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, CharSet):
            leaves.append(node)
        elif isinstance(node, Seq):
            stack.append(node.second)
            stack.append(node.first)
        elif isinstance(node, Alt):
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, Star):
            stack.append(node.inner)
    return leaves


# ---------------------------------------------------------------------- DFA
@dataclass
class DFA:
    """A deterministic automaton built from regex derivatives.

    ``states`` are the distinct derivatives encountered, ``transitions`` maps
    ``(state_index, symbol)`` to a state index, and ``accepting`` is the set of
    nullable states.  Symbols outside ``alphabet`` fall into the dead state.
    """

    alphabet: Tuple[str, ...]
    transitions: Dict[Tuple[int, str], int]
    accepting: FrozenSet[int]
    start: int
    dead: Optional[int]

    @property
    def state_count(self) -> int:
        states = {self.start}
        states.update(target for target in self.transitions.values())
        states.update(index for index, _ in self.transitions)
        return len(states)

    def accepts(self, text: str) -> bool:
        state = self.start
        for symbol in text:
            state = self.transitions.get((state, symbol), self.dead if self.dead is not None else -1)
            if state == -1:
                return False
        return state in self.accepting


def to_dfa(regex: Regex, alphabet: Iterable[str]) -> DFA:
    """Build a DFA whose states are the (finitely many) derivatives of ``regex``.

    Symbols are grouped into per-state equivalence classes first
    (:func:`signature_partition` over the state's :class:`CharSet` leaves):
    the derivative with respect to a symbol is fully determined by which
    leaves accept it, so one derivative per class serves every symbol in it.
    Over ASCII-sized alphabets this collapses hundreds of derivative calls
    per state into a handful.
    """
    alphabet = tuple(dict.fromkeys(alphabet))
    index: Dict[Regex, int] = {regex: 0}
    order: List[Regex] = [regex]
    transitions: Dict[Tuple[int, str], int] = {}
    worklist = [regex]
    while worklist:
        current = worklist.pop()
        acceptors = [leaf.accepts for leaf in charset_leaves(current)]
        for group in signature_partition(alphabet, acceptors).values():
            successor = derive(current, group[0])
            if successor not in index:
                index[successor] = len(order)
                order.append(successor)
                worklist.append(successor)
            target = index[successor]
            source = index[current]
            for symbol in group:
                transitions[(source, symbol)] = target
    accepting = frozenset(position for position, state in enumerate(order) if nullable(state))
    dead = index.get(NULL)
    return DFA(alphabet, transitions, accepting, 0, dead)
