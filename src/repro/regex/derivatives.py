"""Brzozowski derivatives of regular expressions (Section 2.1 made executable).

Parsing with derivatives generalizes Brzozowski's 1964 technique for regular
expressions; this module implements the original technique, both because the
paper's background section builds on it and because the reproduction's lexer
(:mod:`repro.lexer`) uses it to recognize token classes.

A regular expression is represented by a small AST (:class:`Regex` subclasses)
with smart constructors that keep expressions in a weak normal form (the
"similarity" rules Brzozowski uses to keep the set of derivatives finite):

* ``∅ | r ⇒ r``, ``r | r ⇒ r``
* ``∅ · r ⇒ ∅``, ``ε · r ⇒ r``
* ``(r*)* ⇒ r*``, ``ε* ⇒ ε``, ``∅* ⇒ ε``

With these rules the set of derivatives of any regex is finite, which is what
makes :func:`to_dfa` terminate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = [
    "Regex",
    "NULL",
    "EPSILON",
    "char",
    "chars",
    "char_range",
    "any_char",
    "seq",
    "alt",
    "star",
    "plus",
    "optional",
    "literal",
    "nullable",
    "derive",
    "matches",
    "signature_partition",
    "charset_leaves",
    "DFA",
    "to_dfa",
]


class Regex:
    """Base class of the regular-expression AST (immutable, hashable)."""

    def nullable(self) -> bool:
        raise NotImplementedError

    def derive(self, symbol: str) -> "Regex":
        raise NotImplementedError

    # Convenience operators mirroring the parsing-expression sugar.
    def __or__(self, other: "Regex") -> "Regex":
        return alt(self, other)

    def __add__(self, other: "Regex") -> "Regex":
        return seq(self, other)


@dataclass(frozen=True)
class _Null(Regex):
    """The empty language ``∅``."""

    def nullable(self) -> bool:
        return False

    def derive(self, symbol: str) -> Regex:
        return NULL

    def __repr__(self) -> str:
        return "∅"


@dataclass(frozen=True)
class _Epsilon(Regex):
    """The empty-string language ``ε``."""

    def nullable(self) -> bool:
        return True

    def derive(self, symbol: str) -> Regex:
        return NULL

    def __repr__(self) -> str:
        return "ε"


NULL = _Null()
EPSILON = _Epsilon()


@dataclass(frozen=True)
class CharSet(Regex):
    """A single symbol drawn from a set of characters (or its complement)."""

    symbols: FrozenSet[str]
    negated: bool = False

    def accepts(self, symbol: str) -> bool:
        return (symbol in self.symbols) != self.negated

    def nullable(self) -> bool:
        return False

    def derive(self, symbol: str) -> Regex:
        return EPSILON if self.accepts(symbol) else NULL

    def __repr__(self) -> str:
        inside = "".join(sorted(self.symbols))
        return "[^{}]".format(inside) if self.negated else "[{}]".format(inside)


@dataclass(frozen=True)
class Seq(Regex):
    """Concatenation ``first · second``."""

    first: Regex
    second: Regex

    def nullable(self) -> bool:
        return self.first.nullable() and self.second.nullable()

    def derive(self, symbol: str) -> Regex:
        head = seq(self.first.derive(symbol), self.second)
        if self.first.nullable():
            return alt(head, self.second.derive(symbol))
        return head

    def __repr__(self) -> str:
        return "({!r}{!r})".format(self.first, self.second)


@dataclass(frozen=True)
class Alt(Regex):
    """Alternation ``left | right``."""

    left: Regex
    right: Regex

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()

    def derive(self, symbol: str) -> Regex:
        return alt(self.left.derive(symbol), self.right.derive(symbol))

    def __repr__(self) -> str:
        return "({!r}|{!r})".format(self.left, self.right)


@dataclass(frozen=True)
class Star(Regex):
    """Kleene closure ``inner*``."""

    inner: Regex

    def nullable(self) -> bool:
        return True

    def derive(self, symbol: str) -> Regex:
        return seq(self.inner.derive(symbol), self)

    def __repr__(self) -> str:
        return "({!r})*".format(self.inner)


# ------------------------------------------------------------ constructors
def char(symbol: str) -> Regex:
    """A regex matching exactly the one-character string ``symbol``."""
    if len(symbol) != 1:
        raise ValueError("char() expects a single character, got {!r}".format(symbol))
    return CharSet(frozenset({symbol}))


def chars(symbols: Iterable[str], negated: bool = False) -> Regex:
    """A regex matching any one character in ``symbols`` (or outside it)."""
    return CharSet(frozenset(symbols), negated)


def char_range(start: str, end: str) -> Regex:
    """A regex matching one character in the inclusive range ``start``–``end``."""
    return chars(chr(code) for code in range(ord(start), ord(end) + 1))


def any_char() -> Regex:
    """A regex matching any single character."""
    return CharSet(frozenset(), negated=True)


def seq(*parts: Regex) -> Regex:
    """Concatenation with the ``∅``/``ε`` simplifications applied."""
    result: Optional[Regex] = None
    for part in reversed(parts):
        if isinstance(part, _Null):
            return NULL
        if isinstance(part, _Epsilon):
            continue
        result = part if result is None else Seq(part, result)
    return result if result is not None else EPSILON


def alt(*parts: Regex) -> Regex:
    """Alternation with ``∅`` elimination and duplicate removal."""
    flat: List[Regex] = []
    for part in parts:
        if isinstance(part, _Null):
            continue
        if part not in flat:
            flat.append(part)
    if not flat:
        return NULL
    result = flat[0]
    for part in flat[1:]:
        result = Alt(result, part)
    return result


def star(inner: Regex) -> Regex:
    """Kleene star with ``(r*)* ⇒ r*``, ``ε* ⇒ ε`` and ``∅* ⇒ ε``."""
    if isinstance(inner, (_Epsilon, _Null)):
        return EPSILON
    if isinstance(inner, Star):
        return inner
    return Star(inner)


def plus(inner: Regex) -> Regex:
    """``r+ = r · r*``."""
    return seq(inner, star(inner))


def optional(inner: Regex) -> Regex:
    """``r? = ε | r``."""
    return alt(EPSILON, inner)


def literal(text: str) -> Regex:
    """A regex matching exactly ``text``."""
    return seq(*(char(symbol) for symbol in text))


# ------------------------------------------------------------------ queries
def nullable(regex: Regex) -> bool:
    """True when the regex matches the empty string."""
    return regex.nullable()


def derive(regex: Regex, symbol: str) -> Regex:
    """The Brzozowski derivative of ``regex`` with respect to ``symbol``."""
    return regex.derive(symbol)


def matches(regex: Regex, text: str) -> bool:
    """Match by repeated derivation — the algorithm of Section 2.1."""
    current = regex
    for symbol in text:
        current = current.derive(symbol)
        if isinstance(current, _Null):
            return False
    return current.nullable()


# -------------------------------------------------------------- token classes
def signature_partition(symbols, acceptors):
    """Partition ``symbols`` into equivalence classes under ``acceptors``.

    Two symbols are equivalent when every acceptor (a predicate taking one
    symbol) answers identically for both — their *acceptance signature*
    matches.  The result maps each signature (a tuple of booleans, one per
    acceptor) to the list of symbols carrying it, preserving first-seen
    order within each class.

    This is the character-class trick of derivative-based regex engines: the
    derivative of an expression with respect to a symbol depends only on
    which of its character-set leaves accept the symbol, so one derivative
    per class covers the whole alphabet.  The grammar-level token-class
    analysis in :mod:`repro.compile` applies the same partition with
    :class:`repro.core.languages.Token` matchers as the acceptors.
    """
    acceptors = tuple(acceptors)
    groups: Dict[Tuple[bool, ...], List] = {}
    for symbol in symbols:
        signature = tuple(bool(acceptor(symbol)) for acceptor in acceptors)
        groups.setdefault(signature, []).append(symbol)
    return groups


def charset_leaves(regex: Regex) -> List[CharSet]:
    """Every :class:`CharSet` leaf of ``regex``, in deterministic order.

    Iterative (literals build ``Seq`` chains as deep as the literal), and
    deduplicated by object identity so shared leaves appear once.
    """
    leaves: List[CharSet] = []
    seen: set = set()
    stack: List[Regex] = [regex]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, CharSet):
            leaves.append(node)
        elif isinstance(node, Seq):
            stack.append(node.second)
            stack.append(node.first)
        elif isinstance(node, Alt):
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, Star):
            stack.append(node.inner)
    return leaves


# ---------------------------------------------------------------------- DFA
@dataclass
class DFA:
    """A deterministic automaton built from regex derivatives.

    ``states`` are the distinct derivatives encountered, ``transitions`` maps
    ``(state_index, symbol)`` to a state index, and ``accepting`` is the set of
    nullable states.  Symbols outside ``alphabet`` fall into the dead state.
    """

    alphabet: Tuple[str, ...]
    transitions: Dict[Tuple[int, str], int]
    accepting: FrozenSet[int]
    start: int
    dead: Optional[int]

    @property
    def state_count(self) -> int:
        states = {self.start}
        states.update(target for target in self.transitions.values())
        states.update(index for index, _ in self.transitions)
        return len(states)

    def accepts(self, text: str) -> bool:
        state = self.start
        for symbol in text:
            state = self.transitions.get((state, symbol), self.dead if self.dead is not None else -1)
            if state == -1:
                return False
        return state in self.accepting


def to_dfa(regex: Regex, alphabet: Iterable[str]) -> DFA:
    """Build a DFA whose states are the (finitely many) derivatives of ``regex``.

    Symbols are grouped into per-state equivalence classes first
    (:func:`signature_partition` over the state's :class:`CharSet` leaves):
    the derivative with respect to a symbol is fully determined by which
    leaves accept it, so one derivative per class serves every symbol in it.
    Over ASCII-sized alphabets this collapses hundreds of derivative calls
    per state into a handful.
    """
    alphabet = tuple(dict.fromkeys(alphabet))
    index: Dict[Regex, int] = {regex: 0}
    order: List[Regex] = [regex]
    transitions: Dict[Tuple[int, str], int] = {}
    worklist = [regex]
    while worklist:
        current = worklist.pop()
        acceptors = [leaf.accepts for leaf in charset_leaves(current)]
        for group in signature_partition(alphabet, acceptors).values():
            successor = current.derive(group[0])
            if successor not in index:
                index[successor] = len(order)
                order.append(successor)
                worklist.append(successor)
            target = index[successor]
            source = index[current]
            for symbol in group:
                transitions[(source, symbol)] = target
    accepting = frozenset(position for position, state in enumerate(order) if state.nullable())
    dead = index.get(NULL)
    return DFA(alphabet, transitions, accepting, 0, dead)
