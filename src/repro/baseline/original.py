"""The original 2011 parsing-with-derivatives algorithm (Might et al.).

This module reproduces, as faithfully as practical in Python, the algorithm
whose performance problems the PLDI 2016 paper diagnoses (Section 2.6 and
Section 4).  It differs from :class:`repro.core.parse.DerivativeParser` in
exactly the three ways the paper's improvements address:

1. **Naive nullability fixed point** (Section 4.2's "before" state): every
   ``nullable?`` query re-traverses all nodes reachable from the queried node,
   re-evaluating each one, and repeats the traversal until no value changes —
   quadratic in the number of nodes, and nothing is remembered between
   queries.
2. **Compaction as a separate pass** (Section 4.3.3's "before" state): instead
   of compacting nodes as they are constructed, a full rewrite pass using the
   original 2011 rule set runs over the derived grammar after each token
   (and can be disabled entirely, matching the "without compaction"
   configuration whose two-seconds-for-31-lines behaviour the paper quotes).
3. **Nested hash-table memoization** (Section 4.4's "before" state): the
   ``derive`` memo is a global dictionary of per-node dictionaries keyed by
   token.

The grammar representation (``repro.core.languages`` nodes) and the parse
forest machinery are shared with the improved implementation so that the
comparison isolates the algorithmic differences, exactly as the paper's
evaluation does by writing both parsers in Racket.

Like the improved parser, the traversals here are iterative (explicit
worklists rather than interpreter recursion) so no ``sys.setrecursionlimit``
escape hatch is needed; recursion-versus-iteration is a host-language detail
that the paper's comparison deliberately does not measure.  The
``recursion_limit`` constructor argument is retained as a deprecated no-op.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..core.compaction import CompactionConfig, Compactor, optimize_initial_grammar
from ..core.errors import GrammarError, ParseError
from ..core.forest import (
    FOREST_EMPTY,
    ForestAmb,
    ForestLeaf,
    ForestMap,
    ForestNode,
    ForestPair,
    ForestRef,
    first_tree,
    iter_trees,
)
from ..core.languages import (
    EMPTY,
    Alt,
    Cat,
    Delta,
    Empty,
    Epsilon,
    Language,
    Reduce,
    Ref,
    Token,
    graph_size,
    reachable_nodes,
    token_value,
)
from ..core.metrics import Metrics
from ..core.parse import validate_grammar

__all__ = ["OriginalParser", "NaiveNullability"]


class NaiveNullability:
    """The quadratic, re-traversing nullability computation of Might et al. (2011).

    Each call recomputes nullability for every node reachable from ``root``:
    all nodes start as "not nullable", every node is re-evaluated in turn, and
    the whole sweep repeats whenever any node's value changed.  Nothing is
    cached between calls — this is precisely the behaviour the improved
    implementation's Figure 7 measurement is compared against.
    """

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self.metrics = metrics if metrics is not None else Metrics()

    def nullable(self, root: Language) -> bool:
        nodes = reachable_nodes(root)
        values: Dict[int, bool] = {id(node): False for node in nodes}
        changed = True
        while changed:
            changed = False
            for node in nodes:
                self.metrics.nullable_calls += 1
                new_value = self._evaluate(node, values)
                if new_value and not values[id(node)]:
                    values[id(node)] = True
                    changed = True
        return values[id(root)]

    def _evaluate(self, node: Language, values: Dict[int, bool]) -> bool:
        if isinstance(node, Epsilon):
            return True
        if isinstance(node, (Empty, Token)):
            return False
        if isinstance(node, Alt):
            return self._value(node.left, values) or self._value(node.right, values)
        if isinstance(node, Cat):
            return self._value(node.left, values) and self._value(node.right, values)
        if isinstance(node, (Reduce, Delta)):
            return self._value(node.lang, values)
        if isinstance(node, Ref):
            return self._value(node.target, values)
        raise GrammarError("cannot compute nullability of {!r}".format(node))

    @staticmethod
    def _value(child: Optional[Language], values: Dict[int, bool]) -> bool:
        if child is None:
            raise GrammarError("nullability of an incomplete node")
        return values.get(id(child), False)


class OriginalParser:
    """Parsing with derivatives as implemented by Might, Darais & Spiewak (2011)."""

    def __init__(
        self,
        grammar: Union[Language, Any],
        compaction: bool = True,
        metrics: Optional[Metrics] = None,
        recursion_limit: Optional[int] = None,
    ) -> None:
        if hasattr(grammar, "to_language"):
            grammar = grammar.to_language()
        if not isinstance(grammar, Language):
            raise GrammarError(
                "expected a Language node or an object with to_language(); got {!r}".format(
                    type(grammar)
                )
            )
        validate_grammar(grammar)
        if recursion_limit is not None:
            warnings.warn(
                "recursion_limit is deprecated and ignored: the traversals "
                "are iterative and never call sys.setrecursionlimit",
                DeprecationWarning,
                stacklevel=2,
            )

        self.metrics = metrics if metrics is not None else Metrics()
        self.compaction_enabled = compaction
        self.nullability = NaiveNullability(self.metrics)
        # The compactor is configured with exactly the 2011 rule set and is
        # used only by the between-token compaction pass, never inline.
        self._pass_compactor = Compactor(CompactionConfig.original_2011(), self.metrics)
        self.root = grammar
        # Nested hash tables: node -> {token -> derivative}.
        self._memo: Dict[Language, Dict[Any, Language]] = {}
        self._null_parse_memo: Dict[int, ForestNode] = {}

    # ------------------------------------------------------------------ API
    def reset(self) -> None:
        """Clear the memoization tables (done before each benchmarked parse)."""
        self._memo = {}
        self._null_parse_memo = {}

    def grammar_size(self) -> int:
        """Number of nodes in the initial grammar."""
        return graph_size(self.root)

    def recognize(self, tokens: Iterable[Any]) -> bool:
        """True when the token sequence is in the grammar's language."""
        language = self._derive_sequence(tokens)
        if language is EMPTY or isinstance(language, Empty):
            return False
        return self.nullability.nullable(language)

    def parse_forest(self, tokens: Sequence[Any]) -> ForestNode:
        """Parse and return a shared forest with ambiguity nodes."""
        language = self._derive_sequence(tokens)
        if (
            language is EMPTY
            or isinstance(language, Empty)
            or not self.nullability.nullable(language)
        ):
            raise ParseError("parse failed", position=len(tokens), tokens=tokens)
        self._null_parse_memo = {}
        return self._parse_null(language)

    def parse(self, tokens: Sequence[Any]) -> Any:
        """Parse and return one tree."""
        forest = self.parse_forest(tokens)
        try:
            return first_tree(forest)
        except ValueError:
            raise ParseError("no finite parse tree", position=len(tokens)) from None

    def parse_trees(
        self,
        tokens: Sequence[Any],
        limit: Optional[int] = None,
        ranking: Optional[Any] = None,
    ) -> List[Any]:
        """Parse and return up to ``limit`` trees (best-first with ``ranking``)."""
        forest = self.parse_forest(tokens)
        if ranking is None:
            return list(iter_trees(forest, limit=limit))
        from ..core.forest_query import iter_trees_ranked

        return list(iter_trees_ranked(forest, ranking, limit))

    def sample_parses(self, tokens: Sequence[Any], rng: Any, n: int = 1) -> List[Any]:
        """Draw ``n`` uniform samples over the forest's derivations."""
        from ..core.errors import EmptyForestError
        from ..core.forest_query import sample_trees

        forest = self.parse_forest(tokens)
        try:
            return sample_trees(forest, rng, n)
        except EmptyForestError:
            raise ParseError("no finite parse tree", position=len(tokens)) from None

    def derive_all(self, tokens: Iterable[Any]) -> Language:
        """Derive the grammar by every token (exposed for the benchmarks)."""
        return self._derive_sequence(tokens)

    # --------------------------------------------------------------- driving
    def _derive_sequence(self, tokens: Iterable[Any]) -> Language:
        language = self.root
        for tok in tokens:
            language = self.derive(language, tok)
            self.metrics.tokens_consumed += 1
            if self.compaction_enabled:
                language = self._compaction_pass(language)
            if language is EMPTY or isinstance(language, Empty):
                return EMPTY
        return language

    def _compaction_pass(self, language: Language) -> Language:
        """The separate between-token compaction traversal of the 2011 parser."""
        return optimize_initial_grammar(language, self._pass_compactor, max_passes=1)

    # ------------------------------------------------------------ derivative
    def derive(self, node: Language, token: Any) -> Language:
        """Memoized derivative with laziness-by-placeholder, no inline compaction.

        Because the 2011 algorithm *always* memoizes a placeholder before
        visiting a node's children (laziness is the cycle-breaking device,
        not an optimization), the derivative of the whole graph can be built
        iteratively in two phases: a discovery pass allocates and memoizes
        the skeleton of every needed derivative, then a wiring pass fills
        each skeleton's children from the memo table.  This reproduces the
        recursive formulation exactly — node counts included — without
        bounding the derivable graph depth by the interpreter stack.
        """
        # Phase 1: allocate (and memoize) a skeleton per reachable node.
        filled: List[Language] = []
        stack: List[Language] = [node]
        while stack:
            current = stack.pop()
            self.metrics.derive_calls += 1
            inner = self._memo.get(current)
            if inner is not None and token in inner:
                self.metrics.derive_cache_hits += 1
                continue
            self.metrics.derive_uncached += 1

            if isinstance(current, (Empty, Epsilon, Delta)):
                self._memoize(current, token, EMPTY)
            elif isinstance(current, Token):
                if current.matches(token):
                    result: Language = Epsilon((token_value(token),))
                    self.metrics.nodes_created += 1
                else:
                    result = EMPTY
                self._memoize(current, token, result)
            elif isinstance(current, Alt):
                placeholder: Language = Alt(None, None)
                self.metrics.nodes_created += 1
                self._memoize(current, token, placeholder)
                filled.append(current)
                stack.append(current.left)
                stack.append(current.right)
            elif isinstance(current, Cat):
                if not self.nullability.nullable(current.left):
                    placeholder = Cat(None, current.right)
                    self.metrics.nodes_created += 1
                    self._memoize(current, token, placeholder)
                    filled.append(current)
                    stack.append(current.left)
                else:
                    placeholder = Alt(None, None)
                    left_cat = Cat(None, current.right)
                    delta_cat = Cat(Delta(current.left), None)
                    self.metrics.nodes_created += 4
                    placeholder.left = left_cat
                    placeholder.right = delta_cat
                    self._memoize(current, token, placeholder)
                    filled.append(current)
                    stack.append(current.left)
                    stack.append(current.right)
            elif isinstance(current, Reduce):
                placeholder = Reduce(None, current.fn)
                self.metrics.nodes_created += 1
                self._memoize(current, token, placeholder)
                filled.append(current)
                stack.append(current.lang)
            elif isinstance(current, Ref):
                if current.target is None:
                    raise GrammarError(
                        "unresolved non-terminal <{}>".format(current.ref_name)
                    )
                placeholder = Ref(current.ref_name, None)
                self.metrics.nodes_created += 1
                self._memoize(current, token, placeholder)
                filled.append(current)
                stack.append(current.target)
            else:
                raise GrammarError(
                    "cannot derive unknown node type: {!r}".format(current)
                )

        # Phase 2: wire each skeleton's children from the memo table.
        for current in filled:
            skeleton = self._memo[current][token]
            if isinstance(current, Alt):
                skeleton.left = self._memo[current.left][token]
                skeleton.right = self._memo[current.right][token]
            elif isinstance(current, Cat):
                if isinstance(skeleton, Cat):  # non-nullable left child
                    skeleton.left = self._memo[current.left][token]
                else:  # the (Dc(L1) ◦ L2) ∪ (δ(L1) ◦ Dc(L2)) union
                    skeleton.left.left = self._memo[current.left][token]
                    skeleton.right.right = self._memo[current.right][token]
            elif isinstance(current, Reduce):
                skeleton.lang = self._memo[current.lang][token]
            else:  # Ref
                skeleton.target = self._memo[current.target][token]

        return self._memo[node][token]

    def _memoize(self, node: Language, token: Any, result: Language) -> Language:
        inner = self._memo.get(node)
        if inner is None:
            inner = {}
            self._memo[node] = inner
        inner[token] = result
        return result

    def memo_entry_distribution(self) -> Dict[int, int]:
        """entries-per-node histogram of the nested memo tables (Figure 10)."""
        distribution: Dict[int, int] = {}
        for inner in self._memo.values():
            if not inner:
                continue
            size = len(inner)
            distribution[size] = distribution.get(size, 0) + 1
        return distribution

    # ------------------------------------------------------------ parse-null
    def _parse_null(self, root: Language) -> ForestNode:
        """Iterative two-phase ``parse-null`` (skeletons, then wiring).

        Mirrors :meth:`repro.core.parse.DerivativeParser._parse_null`: cycles
        in the grammar become cycles in the forest graph directly.
        """
        memo = self._null_parse_memo
        pending: List[Language] = []
        stack: List[Language] = [root]
        while stack:
            node = stack.pop()
            if id(node) in memo:
                continue
            self.metrics.parse_null_calls += 1

            if isinstance(node, (Empty, Token)):
                memo[id(node)] = FOREST_EMPTY
                continue
            if isinstance(node, Epsilon):
                memo[id(node)] = ForestLeaf(node.trees)
                continue
            if not self.nullability.nullable(node):
                memo[id(node)] = FOREST_EMPTY
                continue

            if isinstance(node, Alt):
                skeleton: ForestNode = ForestAmb([])
                children = (node.right, node.left)
            elif isinstance(node, Cat):
                skeleton = ForestPair(FOREST_EMPTY, FOREST_EMPTY)
                children = (node.right, node.left)
            elif isinstance(node, Reduce):
                skeleton = ForestMap(node.fn, FOREST_EMPTY)
                children = (node.lang,)
            elif isinstance(node, Delta):
                skeleton = ForestRef()
                children = (node.lang,)
            elif isinstance(node, Ref):
                skeleton = ForestRef()
                children = (node.target,)
            else:  # pragma: no cover - defensive
                raise GrammarError("cannot parse-null {!r}".format(node))
            memo[id(node)] = skeleton
            pending.append(node)
            stack.extend(children)

        for node in pending:
            skeleton = memo[id(node)]
            if isinstance(node, Alt):
                skeleton.alternatives.append(memo[id(node.left)])
                skeleton.alternatives.append(memo[id(node.right)])
            elif isinstance(node, Cat):
                skeleton.left = memo[id(node.left)]
                skeleton.right = memo[id(node.right)]
            elif isinstance(node, Reduce):
                skeleton.child = memo[id(node.lang)]
            elif isinstance(node, Delta):
                skeleton.target = memo[id(node.lang)]
            else:  # Ref
                skeleton.target = memo[id(node.target)]

        return memo[id(root)]
