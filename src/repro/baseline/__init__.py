"""Baseline: the original 2011 parsing-with-derivatives implementation."""

from .original import NaiveNullability, OriginalParser

__all__ = ["OriginalParser", "NaiveNullability"]
