"""Parse Python programs with the Python-subset grammar — the paper's workload.

The example:

1. generates a synthetic Python program (the benchmark workload),
2. parses it with the improved derivative parser, the Earley baseline and the
   GLR baseline, comparing times,
3. tokenizes a real snippet of Python source with the stdlib ``tokenize``
   bridge and parses it.

Run with::

    python examples/python_parsing.py
"""

import time

from repro.core import DerivativeParser
from repro.earley import EarleyParser
from repro.glr import GLRParser
from repro.grammars import python_grammar
from repro.lexer import tokenize_python
from repro.workloads import generate_program


REAL_SNIPPET = '''
def fib(n):
    if n < 2:
        return n
    a = 0
    b = 1
    for i in range(n):
        a, b = b, a + b
    return a

class Greeter:
    def greet(self, name):
        message = "hello" + name
        return message
'''


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    print("  {:<18s} {:8.3f}s  -> {}".format(label, elapsed, result))
    return result


def main() -> None:
    grammar = python_grammar()
    print("Python-subset grammar: {} productions, {} non-terminals".format(
        grammar.production_count(), len(grammar.nonterminals)
    ))

    # ------------------------------------------------------------------
    # Synthetic workload (guaranteed to be inside the subset grammar).
    # ------------------------------------------------------------------
    program = generate_program(target_tokens=200, seed=11)
    print("\nSynthetic program: {} tokens".format(program.token_count))
    print("--- first lines -------------------------------------------")
    print("\n".join(program.source.splitlines()[:6]))
    print("------------------------------------------------------------")

    print("\nRecognition times:")
    timed("improved PWD", lambda: DerivativeParser(grammar).recognize(program.tokens))
    timed("Earley", lambda: EarleyParser(grammar).recognize(program.tokens))
    glr = GLRParser(grammar)
    timed("GLR", lambda: glr.recognize(program.tokens))

    # ------------------------------------------------------------------
    # A real snippet through the stdlib tokenizer bridge.
    # ------------------------------------------------------------------
    tokens = tokenize_python(REAL_SNIPPET)
    print("\nReal snippet: {} tokens".format(len(tokens)))
    parser = DerivativeParser(grammar)
    tree = parser.parse(tokens)
    print("parse tree root:", tree[0])
    print("top-level statements:", _count_statements(tree))


def _count_statements(tree) -> int:
    """Count stmt nodes along the right-leaning stmts spine of the tree."""
    label, children = tree
    count = 0
    node = children[0] if label == "file_input" else tree
    while True:
        label, children = node
        if label != "stmts":
            break
        count += 1
        if len(children) == 1:
            break
        node = children[1]
    return count


if __name__ == "__main__":
    main()
