"""Quickstart: build a grammar, recognize, parse, and inspect ambiguity.

Run with::

    python examples/quickstart.py
"""

from repro import DerivativeParser, Ref, count_trees, iter_trees, token


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A grammar is a graph of parsing expressions.  Ref gives a named
    #    non-terminal that may refer to itself (left recursion is fine).
    # ------------------------------------------------------------------
    expr = Ref("expr")
    expr.set(
        (expr + token("+") + expr).map(lambda t: ("add", t[0][0], t[1]))
        | token("NUMBER")
    )

    parser = DerivativeParser(expr)

    # ------------------------------------------------------------------
    # 2. Recognition: is the token sequence in the language?
    #    Tokens can be plain values or (kind, value) pairs.
    # ------------------------------------------------------------------
    tokens = [("NUMBER", "1"), ("+", "+"), ("NUMBER", "2"), ("+", "+"), ("NUMBER", "3")]
    print("recognize 1+2+3:", parser.recognize(tokens))
    print("recognize 1+:", parser.recognize(tokens[:2]))

    # ------------------------------------------------------------------
    # 3. Parsing: the grammar is ambiguous (no precedence), so the result
    #    is a shared forest.  Enumerate trees or just count them.
    # ------------------------------------------------------------------
    forest = DerivativeParser(expr).parse_forest(tokens)
    print("number of parses:", count_trees(forest))
    for tree in iter_trees(forest):
        print("  parse:", tree)

    # ------------------------------------------------------------------
    # 4. Instrumentation: every parser carries counters used throughout
    #    the paper's evaluation (nodes constructed, derive calls, ...).
    # ------------------------------------------------------------------
    probe = DerivativeParser(expr)
    probe.recognize(tokens)
    print("grammar nodes:", probe.grammar_size())
    print("nodes created while parsing:", probe.metrics.nodes_created)
    print("derive calls (cached/uncached): {}/{}".format(
        probe.metrics.derive_cache_hits, probe.metrics.derive_uncached
    ))


if __name__ == "__main__":
    main()
