"""Edit-aware incremental reparsing: the `repro.incremental` quickstart.

Builds a large PL/0 program, parses it once into an
:class:`~repro.incremental.IncrementalDocument` with a checkpoint trail,
then applies editor-shaped edits — change a literal, rename an
identifier, insert a statement — and shows how little work each one
costs compared to reparsing the buffer from scratch.  Finishes with the
serve-layer form: an editable :class:`~repro.serve.ParseSession` behind
a :class:`~repro.serve.ParseService`.

Run with: ``PYTHONPATH=src python examples/incremental_editing.py``
"""

from repro.grammars import pl0_grammar
from repro.incremental import IncrementalDocument
from repro.lexer.tokens import Tok
from repro.serve import ParseService
from repro.workloads import pl0_tokens, value_edit_at


def main():
    tokens = pl0_tokens(2_000, seed=7)
    print("PL/0 program: {} tokens".format(len(tokens)))

    # One parse up front; every 64 tokens the document snapshots the
    # automaton state (O(1) each — the structures are persistent).
    document = IncrementalDocument(
        pl0_grammar(), tokens, checkpoint_every=64, engine="compiled"
    )
    print(
        "parsed: recognized={}, {} checkpoints on the trail".format(
            document.recognize(), len(document.checkpoints())
        )
    )

    # Edit 1: change a number literal in the middle of the program.  The
    # document rewinds to the nearest checkpoint, replays a handful of
    # tokens, and re-converges with the old parse (same interned automaton
    # state), splicing the old trail back in.
    edit = value_edit_at(tokens, len(tokens) // 2, seed=1, kinds=("NUMBER",))
    result = document.apply_edit(edit.start, edit.end, edit.tokens)
    assert document.recognize() and result.converged_at is not None
    assert result.refed_tokens <= 64 + len(edit.tokens)
    print(
        "edit literal @ {}: re-fed {} of {} tokens (converged at {}), "
        "still recognized={}".format(
            edit.start,
            result.refed_tokens,
            len(document),
            result.converged_at,
            document.recognize(),
        )
    )

    # Edit 2: insert a whole statement after a statement boundary inside
    # the program's main begin…end block.
    buffer = document.tokens
    begin = next(index for index, tok in enumerate(buffer) if tok.value == "begin")
    semicolon = next(
        index
        for index, tok in enumerate(buffer)
        if index > begin and tok.value == ";"
    )
    statement = [Tok("IDENT", "total"), Tok(":="), Tok("NUMBER", "42"), Tok(";")]
    result = document.apply_edit(semicolon + 1, semicolon + 1, statement)
    print(
        "insert statement @ {}: re-fed {} tokens, recognized={}".format(
            semicolon + 1, result.refed_tokens, document.recognize()
        )
    )

    # Edit 3: break the program, diagnose the exact position, repair it.
    original = document.tokens[100]
    document.apply_edit(100, 101, [Tok("@")])
    print(
        "inject junk @ 100: recognized={}, exact failure position={}".format(
            document.recognize(), document.failure_position()
        )
    )
    document.apply_edit(100, 101, [original])
    assert document.recognize()
    print("repair @ 100: recognized={}".format(document.recognize()))

    # The serve-layer form: sessions are editable documents over the
    # service's shared compiled table.
    with ParseService(workers=2) as service:
        session = service.open_session(pl0_grammar(), checkpoint_every=64)
        session.feed_all(tokens)
        edit = value_edit_at(tokens, 1_500, seed=2)
        result = service.edit_session(session, edit.start, edit.end, edit.tokens)
        print(
            "session edit via service: re-fed {} tokens, accepts={}, "
            "metrics={}".format(
                result.refed_tokens,
                session.accepts(),
                {
                    key: value
                    for key, value in service.metrics.snapshot().items()
                    if key.startswith("edit")
                },
            )
        )


if __name__ == "__main__":
    main()
