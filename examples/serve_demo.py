"""Serving demo: batched PL/0 parsing through the concurrent ParseService.

Run me:  PYTHONPATH=src python examples/serve_demo.py

A minimal "server loop" around :class:`repro.serve.ParseService`: a batch
of synthetic PL/0 programs is recognized on the shared compiled grammar
table (fanned over 4 worker threads), a second batch shows the table cache
paying off, a few streams are parsed to real trees on the per-worker
interpreted pool, and the service's metrics — throughput, cache hit rate,
engine counters — are printed the way a dashboard would read them.
"""

import time

from repro.grammars import pl0_grammar
from repro.serve import ParseService
from repro.workloads import pl0_tokens

BATCH = 12
TOKENS_PER_STREAM = 200


def main():
    grammar = pl0_grammar()
    streams = [pl0_tokens(TOKENS_PER_STREAM, seed=seed) for seed in range(BATCH)]
    total_tokens = sum(len(stream) for stream in streams)

    with ParseService(workers=4) as service:
        # Batch 1 compiles the grammar into the service's table cache
        # (a miss), batch 2 rides the warm table (a hit, no derivation).
        for round_number in (1, 2):
            started = time.perf_counter()
            accepted = service.recognize_many(grammar, streams)
            elapsed = time.perf_counter() - started
            assert all(accepted), "every synthetic program must be accepted"
            print(
                "batch {}: {} streams / {:,} tokens in {:.3f}s "
                "({:,.0f} tokens/s)".format(
                    round_number, len(streams), total_tokens, elapsed,
                    total_tokens / elapsed,
                )
            )

        # Trees ride the per-worker interpreted pool (thread-confined).
        outcomes = service.parse_many(grammar, streams[:4])
        print(
            "parse_many: {}/{} trees extracted".format(
                sum(outcome.ok for outcome in outcomes), len(outcomes)
            )
        )
        assert all(outcome.ok for outcome in outcomes)

        stats = service.stats()
        print(
            "table cache: {} cached, hit rate {:.0%} | "
            "engine: {:,} derive calls, {:,} tokens consumed".format(
                stats["tables_cached"],
                stats["service"]["table_hit_rate"],
                stats["engine"]["derive_calls"],
                stats["engine"]["tokens_consumed"],
            )
        )
        assert stats["service"]["table_hit_rate"] > 0.5


if __name__ == "__main__":
    main()
