"""A small JSON decoder built from the library's pieces.

This example wires together three parts of the reproduction:

* the regular-expression derivative engine builds the lexical rules,
* the derivative-based :class:`~repro.lexer.lexer.Lexer` tokenizes the text,
* the JSON grammar is parsed with :class:`~repro.core.DerivativeParser`, and
  the resulting ``(lhs, children)`` tree is folded into Python objects.

Run with::

    python examples/json_decoder.py
"""

import json

from repro.core import DerivativeParser
from repro.grammars import json_grammar
from repro.lexer import Lexer
from repro.regex import alt, char, char_range, chars, literal, optional, plus, seq, star


def build_json_lexer() -> Lexer:
    digit = char_range("0", "9")
    number = seq(
        optional(char("-")),
        plus(digit),
        optional(seq(char("."), plus(digit))),
        optional(seq(chars("eE"), optional(chars("+-")), plus(digit))),
    )
    string_body = star(alt(chars('"\\', negated=True), seq(char("\\"), chars('"\\/bfnrtu'))))
    string = seq(char('"'), string_body, char('"'))
    whitespace = plus(chars(" \t\r\n"))
    rules = [
        ("STRING", string),
        ("NUMBER", number),
        ("true", literal("true")),
        ("false", literal("false")),
        ("null", literal("null")),
        ("{", literal("{")),
        ("}", literal("}")),
        ("[", literal("[")),
        ("]", literal("]")),
        (",", literal(",")),
        (":", literal(":")),
        ("WS", whitespace),
    ]
    return Lexer(rules, skip=["WS"])


def to_python(tree):
    """Fold a JSON parse tree into Python values."""
    label, children = tree
    if label == "value":
        child = children[0]
        if isinstance(child, tuple):
            return to_python(child)
        return _leaf(child)
    if label == "object":
        members = {}
        if len(children) == 3:
            _collect_members(children[1], members)
        return members
    if label == "array":
        elements = []
        if len(children) == 3:
            _collect_elements(children[1], elements)
        return elements
    raise ValueError("unexpected node {!r}".format(label))


def _leaf(token_text):
    if token_text == "true":
        return True
    if token_text == "false":
        return False
    if token_text == "null":
        return None
    if token_text.startswith('"'):
        return token_text[1:-1]
    return float(token_text) if any(ch in token_text for ch in ".eE") else int(token_text)


def _collect_members(tree, out):
    label, children = tree
    pair = children[0]
    _, pair_children = pair
    key = _leaf(pair_children[0])
    out[key] = to_python(pair_children[2])
    if len(children) == 3:
        _collect_members(children[2], out)


def _collect_elements(tree, out):
    label, children = tree
    out.append(to_python(children[0]))
    if len(children) == 3:
        _collect_elements(children[2], out)


def main() -> None:
    text = '{"name": "derp", "year": 2016, "cubic": true, "factors": [951, 64.6, 25.2], "notes": null}'
    lexer = build_json_lexer()
    tokens = lexer.tokens(text)
    print("tokens:", [str(tok) for tok in tokens][:12], "...")

    parser = DerivativeParser(json_grammar())
    tree = parser.parse(tokens)
    decoded = to_python(tree)
    print("decoded:", decoded)

    # Cross-check against the standard library's decoder.
    assert decoded == json.loads(text)
    print("matches json.loads:", True)


if __name__ == "__main__":
    main()
