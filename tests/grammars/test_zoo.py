"""Accept/reject and forest-count tests for the grammar-zoo additions."""

from repro.core import DerivativeParser, count_trees, iter_trees
from repro.earley import EarleyParser
from repro.grammars import (
    catalan_grammar,
    dangling_else_grammar,
    expression_grammar,
)
from repro.lexer import Tok
from repro.workloads import (
    catalan_count,
    catalan_tokens,
    dangling_else_count,
    dangling_else_tokens,
)


def _toks(*kinds):
    return [Tok(kind) for kind in kinds]


class TestExpressionGrammar:
    def setup_method(self):
        self.parser = DerivativeParser(expression_grammar().to_language())

    def test_precedence_ladder_accepts(self):
        # - 2 * x ^ 3 + sin ( y , 4 )
        tokens = [
            Tok("-"), Tok("NUMBER", "2"), Tok("*"), Tok("IDENT", "x"),
            Tok("^"), Tok("NUMBER", "3"), Tok("+"), Tok("FUNC", "sin"),
            Tok("("), Tok("IDENT", "y"), Tok(","), Tok("NUMBER", "4"), Tok(")"),
        ]
        assert self.parser.recognize(tokens) is True

    def test_nested_parentheses_and_calls(self):
        # f ( ( 1 + 2 ) * g ( 3 ) )
        tokens = [
            Tok("FUNC", "f"), Tok("("), Tok("("), Tok("NUMBER", "1"), Tok("+"),
            Tok("NUMBER", "2"), Tok(")"), Tok("*"), Tok("FUNC", "g"),
            Tok("("), Tok("NUMBER", "3"), Tok(")"), Tok(")"),
        ]
        assert self.parser.recognize(tokens) is True

    def test_rejects_malformed_inputs(self):
        assert self.parser.recognize([Tok("NUMBER", "1"), Tok("+")]) is False
        assert self.parser.recognize([Tok("+"), Tok("*")]) is False
        # Power exponent must be a NUMBER, not an arbitrary expression.
        assert self.parser.recognize(
            [Tok("IDENT", "x"), Tok("^"), Tok("IDENT", "y")]
        ) is False
        # Call sites need at least one argument.
        assert self.parser.recognize([Tok("FUNC", "f"), Tok("("), Tok(")")]) is False

    def test_unambiguous_on_sign_heavy_input(self):
        # `- - x + - 1 * 2` once derived two trees (expression-level vs
        # factor-level unary sign); the grammar now binds signs at factor
        # level only, so exactly one tree must come out.
        tokens = [
            Tok("-"), Tok("-"), Tok("IDENT", "x"), Tok("+"), Tok("-"),
            Tok("NUMBER", "1"), Tok("*"), Tok("NUMBER", "2"),
        ]
        assert count_trees(self.parser.parse_forest(tokens)) == 1


class TestCatalanGrammar:
    def test_recognizes_runs_of_a(self):
        parser = DerivativeParser(catalan_grammar().to_language())
        assert parser.recognize(catalan_tokens(1)) is True
        assert parser.recognize(catalan_tokens(12)) is True
        assert parser.recognize([]) is False
        assert parser.recognize(_toks("a", "b")) is False

    def test_forest_counts_match_catalan_numbers(self):
        parser = DerivativeParser(catalan_grammar().to_language())
        for leaves, expected in [(1, 1), (2, 1), (3, 2), (4, 5), (5, 14), (6, 42)]:
            forest = parser.parse_forest(catalan_tokens(leaves))
            assert count_trees(forest) == expected == catalan_count(leaves)

    def test_known_answer_regression_catalan_of_nine(self):
        """Pinned: 10 leaves ⇒ Catalan(9) = 4862 distinct bracketings."""
        parser = DerivativeParser(catalan_grammar().to_language())
        assert count_trees(parser.parse_forest(catalan_tokens(10))) == 4862

    def test_enumeration_agrees_with_counting(self):
        parser = DerivativeParser(catalan_grammar().to_language())
        for leaves in (3, 4, 5):
            forest = parser.parse_forest(catalan_tokens(leaves))
            expected = catalan_count(leaves)
            trees = list(iter_trees(forest, limit=expected + 5))
            assert len(trees) == expected
            assert len(set(map(repr, trees))) == expected  # all distinct


class TestDanglingElseGrammar:
    def test_recognition(self):
        parser = DerivativeParser(dangling_else_grammar().to_language())
        assert parser.recognize(dangling_else_tokens(1)) is True
        assert parser.recognize(dangling_else_tokens(6)) is True
        assert parser.recognize(_toks("else", "s")) is False
        assert parser.recognize(_toks("if", "c", "then")) is False

    def test_ambiguity_is_linear_in_depth(self):
        parser = DerivativeParser(dangling_else_grammar().to_language())
        for depth in (1, 2, 4, 7):
            forest = parser.parse_forest(dangling_else_tokens(depth))
            assert count_trees(forest) == depth == dangling_else_count(depth)

    def test_earley_agrees_on_recognition(self):
        grammar = dangling_else_grammar()
        earley = EarleyParser(grammar)
        derivative = DerivativeParser(grammar.to_language())
        for depth in (1, 3, 5):
            tokens = dangling_else_tokens(depth)
            assert earley.recognize(tokens) is derivative.recognize(tokens) is True
