"""Tests for the evaluation grammars."""

import pytest

from repro.core import DerivativeParser, count_trees
from repro.earley import EarleyParser
from repro.glr import GLRParser
from repro.grammars import (
    arithmetic_grammar,
    balanced_parens_grammar,
    binary_sum_grammar,
    exponential_grammar,
    json_grammar,
    pl0_grammar,
    python_grammar,
    sexpr_grammar,
    worst_case_grammar,
    worst_case_language,
)
from repro.lexer import Tok, tokenize_python
from repro.workloads import (
    ambiguous_sum_tokens,
    json_tokens,
    nested_parens_tokens,
    pl0_tokens,
    sexpr_tokens,
)


class TestClassicGrammars:
    def test_arithmetic(self):
        parser = DerivativeParser(arithmetic_grammar())
        tokens = [Tok("NUMBER", "1"), Tok("+"), Tok("NAME", "x"), Tok("*"), Tok("NUMBER", "2")]
        assert parser.recognize(tokens) is True
        assert parser.recognize(tokens[:-1]) is False

    def test_balanced_parens(self):
        parser = DerivativeParser(balanced_parens_grammar())
        assert parser.recognize(nested_parens_tokens(10)) is True
        assert parser.recognize([Tok("(")]) is False

    def test_sexpr(self):
        parser = DerivativeParser(sexpr_grammar())
        assert parser.recognize(sexpr_tokens(30, seed=3)) is True
        assert parser.recognize([Tok("(")]) is False

    def test_json(self):
        parser = DerivativeParser(json_grammar())
        assert parser.recognize(json_tokens(40, seed=3)) is True
        assert parser.recognize([Tok("{"), Tok("}")]) is True
        assert parser.recognize([Tok("{"), Tok(",")]) is False


class TestAmbiguousGrammars:
    def test_exponential_grammar_counts(self):
        parser = DerivativeParser(exponential_grammar())
        forest = parser.parse_forest([Tok("a")] * 4)
        # Catalan(3) = 5 binary trees over 4 leaves.
        assert count_trees(forest) == 5

    def test_binary_sum_catalan(self):
        parser = DerivativeParser(binary_sum_grammar())
        forest = parser.parse_forest(ambiguous_sum_tokens(5))
        assert count_trees(forest) == 14

    def test_worst_case_grammar_cfg_and_language_agree(self):
        cfg_parser = DerivativeParser(worst_case_grammar())
        raw_parser = DerivativeParser(worst_case_language())
        tokens = [Tok("c")] * 5
        assert cfg_parser.recognize(tokens) is raw_parser.recognize(tokens) is True
        assert cfg_parser.recognize([]) is raw_parser.recognize([]) is False


class TestPl0Grammar:
    def test_validates(self):
        pl0_grammar().validate()

    def test_caching_returns_one_object(self):
        # The grammar object is cached so its language graph — and with it
        # the compiled transition table — is shared by every caller.
        assert pl0_grammar() is pl0_grammar()

    def test_accepts_hand_written_programs(self):
        parser = DerivativeParser(pl0_grammar())
        program = [
            Tok("const"), Tok("IDENT", "max"), Tok("="), Tok("NUMBER", "100"), Tok(";"),
            Tok("var"), Tok("IDENT", "x"), Tok(","), Tok("IDENT", "y"), Tok(";"),
            Tok("procedure"), Tok("IDENT", "square"), Tok(";"),
            Tok("IDENT", "y"), Tok(":="), Tok("IDENT", "x"), Tok("*"), Tok("IDENT", "x"), Tok(";"),
            Tok("begin"),
            Tok("IDENT", "x"), Tok(":="), Tok("NUMBER", "1"), Tok(";"),
            Tok("while"), Tok("IDENT", "x"), Tok("<="), Tok("IDENT", "max"), Tok("do"),
            Tok("begin"), Tok("call"), Tok("IDENT", "square"), Tok(";"),
            Tok("IDENT", "x"), Tok(":="), Tok("IDENT", "x"), Tok("+"), Tok("NUMBER", "1"),
            Tok("end"),
            Tok("end"), Tok("."),
        ]
        assert parser.recognize(program) is True

    def test_rejects_malformed_programs(self):
        parser = DerivativeParser(pl0_grammar())
        assert parser.recognize([Tok("begin"), Tok(".")]) is False
        assert parser.recognize([Tok("IDENT", "x"), Tok(":="), Tok(".")]) is False
        assert parser.recognize([Tok("const"), Tok("IDENT", "c"), Tok(";"), Tok(".")]) is False

    @pytest.mark.parametrize("seed", range(4))
    def test_generated_workload_is_in_the_grammar(self, seed):
        parser = DerivativeParser(pl0_grammar())
        assert parser.recognize(pl0_tokens(150, seed=seed)) is True

    def test_parse_tree_root_is_program(self):
        parser = DerivativeParser(pl0_grammar())
        tree = parser.parse([Tok("IDENT", "x"), Tok(":="), Tok("NUMBER", "1"), Tok(".")])
        assert tree[0] == "program"


class TestPythonGrammar:
    def test_size_is_substantial(self):
        grammar = python_grammar()
        assert grammar.production_count() >= 100
        assert len(grammar.nonterminals) >= 40

    def test_validates(self):
        python_grammar().validate()

    @pytest.mark.parametrize(
        "source",
        [
            "x = 1\n",
            "x = y + 2 * z\n",
            "def f(a, b=1):\n    return a + b\n",
            "if x < 1:\n    y = 2\nelse:\n    y = 3\n",
            "while x > 0:\n    x -= 1\n",
            "for item in items:\n    total += item\n",
            "class C:\n    def m(self):\n        pass\n",
            "import os\n",
            "from os import path\n",
            "assert x == 1, 'message'\n",
            "data = {'a': 1, 'b': [1, 2, 3]}\n",
            "result = f(x)(y)[0].attr\n",
            "x = lambda a: a + 1\n",
            "y = a if b else c\n",
            "with open(name) as handle:\n    data = handle.read()\n",
            "del x\n",
            "raise ValueError(msg)\n",
            "print('hello', 'world')\n",
        ],
    )
    def test_accepts_common_python(self, source):
        parser = DerivativeParser(python_grammar())
        assert parser.recognize(tokenize_python(source)) is True, source

    @pytest.mark.parametrize(
        "source",
        [
            "def f(:\n    pass\n",
            "x = = 1\n",
            "if:\n    pass\n",
            "return\n1 +\n",
        ],
    )
    def test_rejects_malformed_python(self, source):
        from repro.core.errors import LexError

        parser = DerivativeParser(python_grammar())
        try:
            tokens = tokenize_python(source)
        except LexError:
            return  # rejected even before parsing
        assert parser.recognize(tokens) is False, source

    def test_all_parsers_agree_on_a_small_program(self):
        source = "def f(x):\n    if x > 0:\n        return x\n    return 0 - x\n"
        tokens = tokenize_python(source)
        grammar = python_grammar()
        assert DerivativeParser(grammar).recognize(tokens) is True
        assert EarleyParser(grammar).recognize(tokens) is True
        assert GLRParser(grammar).recognize(tokens) is True

    def test_parse_tree_root_is_file_input(self):
        parser = DerivativeParser(python_grammar())
        tree = parser.parse(tokenize_python("x = 1\n"))
        assert tree[0] == "file_input"
