"""Tests for the Brzozowski regular-expression derivative engine."""

import re as stdlib_re

import pytest
from hypothesis import given, settings, strategies as st

from repro.regex import (
    EPSILON,
    NULL,
    alt,
    any_char,
    char,
    char_range,
    chars,
    derive,
    literal,
    matches,
    nullable,
    optional,
    plus,
    seq,
    star,
    to_dfa,
)


class TestBasics:
    def test_null_matches_nothing(self):
        assert not matches(NULL, "")
        assert not matches(NULL, "a")

    def test_epsilon_matches_only_empty(self):
        assert matches(EPSILON, "")
        assert not matches(EPSILON, "a")

    def test_char(self):
        assert matches(char("a"), "a")
        assert not matches(char("a"), "b")
        assert not matches(char("a"), "aa")

    def test_char_requires_single_character(self):
        with pytest.raises(ValueError):
            char("ab")

    def test_literal_and_paper_example(self):
        # The paper's Section 2.1 example: {foo, frak, bar} derived by 'f'.
        language = alt(literal("foo"), literal("frak"), literal("bar"))
        derivative = derive(language, "f")
        assert matches(derivative, "oo")
        assert matches(derivative, "rak")
        assert not matches(derivative, "ar")

    def test_char_range_and_sets(self):
        digit = char_range("0", "9")
        assert matches(digit, "5")
        assert not matches(digit, "a")
        assert matches(chars("abc"), "b")
        assert matches(chars("abc", negated=True), "z")
        assert matches(any_char(), "!")

    def test_seq_alt_star(self):
        pattern = seq(char("a"), star(char("b")), char("c"))
        assert matches(pattern, "ac")
        assert matches(pattern, "abbbc")
        assert not matches(pattern, "abb")

    def test_plus_and_optional(self):
        assert matches(plus(char("a")), "aaa")
        assert not matches(plus(char("a")), "")
        assert matches(optional(char("a")), "")
        assert matches(optional(char("a")), "a")


class TestSmartConstructors:
    def test_alt_drops_null_and_duplicates(self):
        assert alt(NULL, char("a")) == char("a")
        assert alt(char("a"), char("a")) == char("a")

    def test_seq_simplifications(self):
        assert seq(EPSILON, char("a")) == char("a")
        assert seq(NULL, char("a")) == NULL
        assert seq() == EPSILON

    def test_star_simplifications(self):
        assert star(EPSILON) == EPSILON
        assert star(NULL) == EPSILON
        inner = star(char("a"))
        assert star(inner) == inner

    def test_nullable(self):
        assert nullable(star(char("a")))
        assert not nullable(char("a"))
        assert nullable(seq(star(char("a")), optional(char("b"))))


class TestDFA:
    def test_dfa_accepts_same_language(self):
        pattern = seq(plus(char_range("0", "9")), optional(seq(char("."), plus(char_range("0", "9")))))
        dfa = to_dfa(pattern, "0123456789.")
        for text in ("1", "123", "3.14", "0.5"):
            assert dfa.accepts(text), text
        for text in ("", ".", "1.", "a", "1a"):
            assert not dfa.accepts(text), text

    def test_dfa_is_finite_for_star_heavy_regexes(self):
        pattern = star(alt(literal("ab"), literal("ba")))
        dfa = to_dfa(pattern, "ab")
        assert dfa.state_count < 32

    def test_symbols_outside_alphabet_rejected(self):
        dfa = to_dfa(star(char("a")), "a")
        assert not dfa.accepts("b")


@settings(max_examples=80, deadline=None)
@given(text=st.text(alphabet="ab", max_size=10))
def test_matches_agrees_with_python_re(text):
    """(a|b)*abb — the classic example — derivative matching vs stdlib re."""
    pattern = seq(star(chars("ab")), literal("abb"))
    expected = stdlib_re.fullmatch("[ab]*abb", text) is not None
    assert matches(pattern, text) is expected


@settings(max_examples=80, deadline=None)
@given(text=st.text(alphabet="abc", max_size=8))
def test_dfa_agrees_with_derivative_matching(text):
    pattern = alt(seq(char("a"), star(char("b"))), literal("cab"))
    dfa = to_dfa(pattern, "abc")
    assert dfa.accepts(text) is matches(pattern, text)


class TestDeeplyNestedRegexes:
    """The recursion-limit bug class PR 1 removed from the grammar engine,
    eliminated here too: nullability runs on the shared fixed-point kernel
    and derivation on an explicit stack, so expressions nested far beyond
    the interpreter recursion limit are handled."""

    def test_deep_optional_nesting_nullable_and_match(self):
        import sys

        depth = 5000
        assert depth * 2 > sys.getrecursionlimit()
        regex = char("a")
        for _ in range(depth):
            regex = optional(seq(char("a"), regex))
        assert nullable(regex)
        assert matches(regex, "a" * 100)
        assert not matches(regex, "ab")

    def test_deep_literal_chain(self):
        text = "ab" * 3000  # a Seq chain 6000 nodes deep
        regex = literal(text)
        assert not nullable(regex)
        assert matches(regex, text)
        assert not matches(regex, text[:-1])
        assert not matches(regex, text[:10] + "x" + text[11:])

    def test_deep_alternation_tower(self):
        regex = char("b")
        for _ in range(4000):
            regex = alt(seq(char("a"), regex), char("b"))
        assert not nullable(regex)
        assert matches(regex, "b")
        assert matches(regex, "aab")
        assert not matches(regex, "a")

    def test_nullability_is_cached_on_nodes_past_the_fast_path(self):
        # A chain of nullable firsts forces the traversal to the very
        # bottom, past the bounded recursive fast path, so the kernel solves
        # and promotes final values onto the nodes: re-queries are O(1).
        regex = char("a")
        for _ in range(300):
            regex = seq(star(char("a")), regex)
        assert not nullable(regex)
        assert regex.__dict__["_nullable"] is False
        assert nullable(regex) is False
