"""Tests for the BNF text front end."""

import pytest

from repro.cfg import Nonterminal, parse_bnf, load_grammar
from repro.core import DerivativeParser, GrammarError


ARITH_TEXT = """
# a classic expression grammar
expr   : expr '+' term | term ;
term   : term '*' factor | factor ;
factor : '(' expr ')' | NUMBER ;
"""


class TestParsing:
    def test_rule_and_production_counts(self):
        grammar = parse_bnf(ARITH_TEXT)
        assert grammar.start == "expr"
        assert grammar.production_count() == 6

    def test_quoted_symbols_are_terminals(self):
        grammar = parse_bnf(ARITH_TEXT)
        assert "+" in grammar.terminals
        assert "NUMBER" in grammar.terminals

    def test_bare_names_on_lhs_are_nonterminals(self):
        grammar = parse_bnf(ARITH_TEXT)
        production = grammar.productions_for("expr")[0]
        assert production.rhs[0] == Nonterminal("expr")

    def test_alternative_arrows(self):
        for arrow in (":", "->", "::="):
            grammar = parse_bnf("s {} 'a' ;".format(arrow))
            assert grammar.production_count() == 1

    def test_missing_semicolon_between_rules(self):
        grammar = parse_bnf("a : 'x'\nb : 'y' ;")
        assert grammar.production_count() == 2
        assert set(grammar.nonterminals) == {"a", "b"}

    def test_percent_empty_and_epsilon(self):
        for empty in ("%empty", "ε"):
            grammar = parse_bnf("s : 'a' s | {} ;".format(empty))
            assert any(production.is_epsilon for production in grammar.productions)

    def test_empty_alternative_without_keyword(self):
        grammar = parse_bnf("s : 'a' s | ;")
        assert any(production.is_epsilon for production in grammar.productions)

    def test_comments_are_ignored(self):
        grammar = parse_bnf("# heading\ns : 'a' ; // trailing\n")
        assert grammar.production_count() == 1

    def test_escaped_quotes_in_terminals(self):
        grammar = parse_bnf(r"s : '\'' ;")
        assert grammar.terminals == ["'"]

    def test_explicit_start_override(self):
        grammar = parse_bnf(ARITH_TEXT, start="term")
        assert grammar.start == "term"

    def test_no_rules_is_an_error(self):
        with pytest.raises(GrammarError):
            parse_bnf("   # nothing here\n")

    def test_garbage_is_an_error(self):
        with pytest.raises(GrammarError):
            parse_bnf("s : 'a' @ ;")

    def test_rule_without_arrow_is_an_error(self):
        with pytest.raises(GrammarError):
            parse_bnf("s 'a' ;")


class TestEndToEnd:
    def test_bnf_grammar_parses_input(self):
        grammar = parse_bnf(ARITH_TEXT)
        parser = DerivativeParser(grammar)
        tokens = [("NUMBER", "1"), ("+", "+"), ("NUMBER", "2")]
        assert parser.recognize(tokens) is True
        tree = parser.parse(tokens)
        assert tree[0] == "expr"

    def test_load_grammar_from_file(self, tmp_path):
        path = tmp_path / "grammar.bnf"
        path.write_text(ARITH_TEXT, encoding="utf-8")
        grammar = load_grammar(str(path))
        assert grammar.production_count() == 6
