"""Tests for the CFG substrate: Grammar, productions, conversion to combinators."""

import pytest

from repro.cfg import Grammar, Nonterminal, grammar_from_rules
from repro.core import DerivativeParser, GrammarError


ARITH_RULES = {
    "expr": [["expr", "+", "term"], ["term"]],
    "term": [["term", "*", "factor"], ["factor"]],
    "factor": [["(", "expr", ")"], ["NUMBER"]],
}


@pytest.fixture
def arith():
    return grammar_from_rules("expr", ARITH_RULES)


class TestGrammarConstruction:
    def test_nonterminals_and_terminals(self, arith):
        assert arith.nonterminals == ["expr", "term", "factor"]
        assert set(arith.terminals) == {"+", "*", "(", ")", "NUMBER"}

    def test_production_count(self, arith):
        assert arith.production_count() == 6

    def test_productions_for(self, arith):
        assert len(arith.productions_for("expr")) == 2
        assert arith.productions_for("missing") == []

    def test_rhs_strings_matching_lhs_become_nonterminals(self, arith):
        production = arith.productions_for("expr")[0]
        assert production.rhs[0] == Nonterminal("expr")
        assert production.rhs[1] == "+"

    def test_is_nonterminal(self, arith):
        assert arith.is_nonterminal("expr")
        assert arith.is_nonterminal(Nonterminal("expr"))
        assert not arith.is_nonterminal("+")

    def test_missing_start_symbol_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("nope", [("a", ("x",))])

    def test_validate_rejects_undefined_nonterminal(self):
        grammar = Grammar("s", [("s", (Nonterminal("ghost"),))])
        with pytest.raises(GrammarError):
            grammar.validate()

    def test_epsilon_production(self):
        grammar = grammar_from_rules("s", {"s": [["a", "s"], []]})
        production = grammar.productions_for("s")[1]
        assert production.is_epsilon

    def test_str_rendering(self, arith):
        text = str(arith)
        assert "expr" in text and "→" in text

    def test_augmented_adds_fresh_start(self, arith):
        augmented = arith.augmented()
        assert augmented.start == "expr'"
        assert augmented.production_count() == 7
        assert augmented.productions_for("expr'")[0].rhs == (Nonterminal("expr"),)


class TestConversionToLanguage:
    TOKENS = [("NUMBER", "1"), ("+", "+"), ("NUMBER", "2"), ("*", "*"), ("NUMBER", "3")]

    def test_recognizes_via_derivative_parser(self, arith):
        parser = DerivativeParser(arith)
        assert parser.recognize(self.TOKENS) is True
        assert parser.recognize(self.TOKENS[:2]) is False

    def test_tree_has_classical_node_shape(self, arith):
        parser = DerivativeParser(arith)
        tree = parser.parse([("NUMBER", "7")])
        assert tree == ("expr", (("term", (("factor", ("7",)),)),))

    def test_epsilon_production_tree(self):
        grammar = grammar_from_rules("s", {"s": [["a", "s"], []]})
        parser = DerivativeParser(grammar)
        assert parser.parse([]) == ("s", ())
        assert parser.parse(["a"]) == ("s", ("a", ("s", ())))

    def test_recognition_without_tree_building(self, arith):
        language = arith.to_language(build_trees=False)
        parser = DerivativeParser(language)
        assert parser.recognize(self.TOKENS) is True

    def test_nonterminal_with_no_production_via_explicit_empty(self):
        grammar = Grammar("s", [("s", ("a",)), ("dead", ("b", Nonterminal("dead")))])
        parser = DerivativeParser(grammar)
        assert parser.recognize(["a"]) is True


class TestBuildNodeReduction:
    def test_arity_one(self):
        from repro.cfg import BuildNode

        assert BuildNode("x", 1)("leaf") == ("x", ("leaf",))

    def test_arity_three_flattens_right_nested_pairs(self):
        from repro.cfg import BuildNode

        assert BuildNode("x", 3)(("a", ("b", "c"))) == ("x", ("a", "b", "c"))

    def test_equality(self):
        from repro.cfg import BuildNode

        assert BuildNode("x", 2) == BuildNode("x", 2)
        assert BuildNode("x", 2) != BuildNode("y", 2)
