"""Tests for FIRST/FOLLOW/nullable analyses."""

import pytest

from repro.cfg import (
    END_OF_INPUT,
    Nonterminal,
    first_of_sequence,
    first_sets,
    follow_sets,
    grammar_from_rules,
    nullable_nonterminals,
    sequence_is_nullable,
)


@pytest.fixture
def dragon_grammar():
    """The classic expression grammar used in compiler textbooks (LL(1) form)."""
    return grammar_from_rules(
        "E",
        {
            "E": [["T", "E'"]],
            "E'": [["+", "T", "E'"], []],
            "T": [["F", "T'"]],
            "T'": [["*", "F", "T'"], []],
            "F": [["(", "E", ")"], ["id"]],
        },
    )


class TestNullable:
    def test_nullable_nonterminals(self, dragon_grammar):
        assert nullable_nonterminals(dragon_grammar) == {"E'", "T'"}

    def test_all_nullable_chain(self):
        grammar = grammar_from_rules("A", {"A": [["B", "C"]], "B": [[]], "C": [[]]})
        assert nullable_nonterminals(grammar) == {"A", "B", "C"}

    def test_sequence_is_nullable(self, dragon_grammar):
        nullable = nullable_nonterminals(dragon_grammar)
        assert sequence_is_nullable((Nonterminal("E'"), Nonterminal("T'")), nullable)
        assert not sequence_is_nullable((Nonterminal("E'"), "x"), nullable)
        assert sequence_is_nullable((), nullable)


class TestFirst:
    def test_first_sets_match_textbook(self, dragon_grammar):
        first = first_sets(dragon_grammar)
        assert first["E"] == {"(", "id"}
        assert first["T"] == {"(", "id"}
        assert first["F"] == {"(", "id"}
        assert first["E'"] == {"+"}
        assert first["T'"] == {"*"}

    def test_first_of_sequence_skips_nullable_prefix(self, dragon_grammar):
        first = first_sets(dragon_grammar)
        nullable = nullable_nonterminals(dragon_grammar)
        result = first_of_sequence((Nonterminal("E'"), ")"), first, nullable)
        assert result == {"+", ")"}

    def test_first_of_empty_sequence(self, dragon_grammar):
        assert (
            first_of_sequence((), first_sets(dragon_grammar), nullable_nonterminals(dragon_grammar))
            == set()
        )


class TestFollow:
    def test_follow_sets_match_textbook(self, dragon_grammar):
        follow = follow_sets(dragon_grammar)
        assert follow["E"] == {")", END_OF_INPUT}
        assert follow["E'"] == {")", END_OF_INPUT}
        assert follow["T"] == {"+", ")", END_OF_INPUT}
        assert follow["T'"] == {"+", ")", END_OF_INPUT}
        assert follow["F"] == {"*", "+", ")", END_OF_INPUT}

    def test_start_symbol_followed_by_end(self, dragon_grammar):
        assert END_OF_INPUT in follow_sets(dragon_grammar)["E"]

    def test_left_recursive_grammar_follow(self):
        grammar = grammar_from_rules(
            "list", {"list": [["list", ",", "item"], ["item"]], "item": [["id"]]}
        )
        follow = follow_sets(grammar)
        assert follow["list"] == {",", END_OF_INPUT}
        assert follow["item"] == {",", END_OF_INPUT}
