"""Tests for FIRST/FOLLOW/nullable analyses."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfg import (
    END_OF_INPUT,
    Nonterminal,
    first_of_sequence,
    first_sets,
    follow_sets,
    grammar_from_rules,
    nullable_nonterminals,
    sequence_is_nullable,
)


@pytest.fixture
def dragon_grammar():
    """The classic expression grammar used in compiler textbooks (LL(1) form)."""
    return grammar_from_rules(
        "E",
        {
            "E": [["T", "E'"]],
            "E'": [["+", "T", "E'"], []],
            "T": [["F", "T'"]],
            "T'": [["*", "F", "T'"], []],
            "F": [["(", "E", ")"], ["id"]],
        },
    )


class TestNullable:
    def test_nullable_nonterminals(self, dragon_grammar):
        assert nullable_nonterminals(dragon_grammar) == {"E'", "T'"}

    def test_all_nullable_chain(self):
        grammar = grammar_from_rules("A", {"A": [["B", "C"]], "B": [[]], "C": [[]]})
        assert nullable_nonterminals(grammar) == {"A", "B", "C"}

    def test_sequence_is_nullable(self, dragon_grammar):
        nullable = nullable_nonterminals(dragon_grammar)
        assert sequence_is_nullable((Nonterminal("E'"), Nonterminal("T'")), nullable)
        assert not sequence_is_nullable((Nonterminal("E'"), "x"), nullable)
        assert sequence_is_nullable((), nullable)


class TestFirst:
    def test_first_sets_match_textbook(self, dragon_grammar):
        first = first_sets(dragon_grammar)
        assert first["E"] == {"(", "id"}
        assert first["T"] == {"(", "id"}
        assert first["F"] == {"(", "id"}
        assert first["E'"] == {"+"}
        assert first["T'"] == {"*"}

    def test_first_of_sequence_skips_nullable_prefix(self, dragon_grammar):
        first = first_sets(dragon_grammar)
        nullable = nullable_nonterminals(dragon_grammar)
        result = first_of_sequence((Nonterminal("E'"), ")"), first, nullable)
        assert result == {"+", ")"}

    def test_first_of_empty_sequence(self, dragon_grammar):
        assert (
            first_of_sequence((), first_sets(dragon_grammar), nullable_nonterminals(dragon_grammar))
            == set()
        )


class TestFollow:
    def test_follow_sets_match_textbook(self, dragon_grammar):
        follow = follow_sets(dragon_grammar)
        assert follow["E"] == {")", END_OF_INPUT}
        assert follow["E'"] == {")", END_OF_INPUT}
        assert follow["T"] == {"+", ")", END_OF_INPUT}
        assert follow["T'"] == {"+", ")", END_OF_INPUT}
        assert follow["F"] == {"*", "+", ")", END_OF_INPUT}

    def test_start_symbol_followed_by_end(self, dragon_grammar):
        assert END_OF_INPUT in follow_sets(dragon_grammar)["E"]

    def test_left_recursive_grammar_follow(self):
        grammar = grammar_from_rules(
            "list", {"list": [["list", ",", "item"], ["item"]], "item": [["id"]]}
        )
        follow = follow_sets(grammar)
        assert follow["list"] == {",", END_OF_INPUT}
        assert follow["item"] == {",", END_OF_INPUT}


# ---------------------------------------------------------------------------
# Kernel vs naive iteration-to-convergence on random grammars
# ---------------------------------------------------------------------------
def _naive_analyses(grammar):
    """The hand-rolled `while changed` sweeps the kernel-backed analyses
    replaced, kept here as an obviously-correct differential oracle."""
    nullable = set()
    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            if production.lhs in nullable:
                continue
            if all(
                isinstance(symbol, Nonterminal) and symbol.name in nullable
                for symbol in production.rhs
            ):
                nullable.add(production.lhs)
                changed = True

    first = {name: set() for name in grammar.nonterminals}
    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            target = first[production.lhs]
            before = len(target)
            for symbol in production.rhs:
                if isinstance(symbol, Nonterminal):
                    target.update(first[symbol.name])
                    if symbol.name not in nullable:
                        break
                else:
                    target.add(symbol)
                    break
            if len(target) != before:
                changed = True

    follow = {name: set() for name in grammar.nonterminals}
    follow[grammar.start].add(END_OF_INPUT)
    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            for position, symbol in enumerate(production.rhs):
                if not isinstance(symbol, Nonterminal):
                    continue
                target = follow[symbol.name]
                before = len(target)
                suffix = production.rhs[position + 1 :]
                target.update(first_of_sequence(suffix, first, nullable))
                if sequence_is_nullable(suffix, nullable):
                    target.update(follow[production.lhs])
                if len(target) != before:
                    changed = True
    return nullable, first, follow


@st.composite
def random_rules(draw):
    names = ["S", "A", "B", "C"][: draw(st.integers(2, 4))]
    symbol = st.sampled_from(names + ["x", "y", "z"])
    rules = {}
    for name in names:
        alternatives = draw(
            st.lists(st.lists(symbol, max_size=4), min_size=1, max_size=3)
        )
        rules[name] = alternatives
    return rules


@settings(max_examples=120, deadline=None)
@given(random_rules())
def test_kernel_analyses_match_naive_iteration(rules):
    grammar = grammar_from_rules("S", rules)
    naive_nullable, naive_first, naive_follow = _naive_analyses(grammar)
    assert nullable_nonterminals(grammar) == naive_nullable
    assert first_sets(grammar) == naive_first
    assert follow_sets(grammar) == naive_follow
