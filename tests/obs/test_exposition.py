"""Tests for the structured logger and the Prometheus/JSON exposition."""

import io
import json

import pytest

from repro.obs import (
    NULL_LOGGER,
    Histogram,
    StructuredLogger,
    json_snapshot,
    parse_prometheus,
    prometheus_exposition,
)


class _FakeTty(io.StringIO):
    def isatty(self):
        return True


class TestStructuredLogger:
    def test_json_lines_mode(self):
        buffer = io.StringIO()
        logger = StructuredLogger(stream=buffer, clock=lambda: 1700000000.5)
        logger.log("table_compiled", fingerprint="abc", seconds=0.25)
        event = json.loads(buffer.getvalue())
        assert event["event"] == "table_compiled"
        assert event["fingerprint"] == "abc"
        assert event["seconds"] == 0.25
        assert event["ts"].endswith("Z") and "T" in event["ts"]

    def test_human_mode_key_values(self):
        buffer = io.StringIO()
        logger = StructuredLogger(stream=buffer, human=True)
        logger.log("summary", inputs=3, rate=0.5, stages={"a": 1})
        line = buffer.getvalue().strip()
        assert line.startswith("summary ")
        assert "inputs=3" in line
        assert "rate=0.5" in line
        assert 'stages={"a": 1}' in line

    def test_for_stream_picks_mode_by_tty(self):
        assert StructuredLogger.for_stream(io.StringIO()).human is False
        assert StructuredLogger.for_stream(_FakeTty()).human is True
        assert StructuredLogger.for_stream(None).stream is None

    def test_null_logger_is_a_noop(self):
        NULL_LOGGER.log("anything", value=1)  # must not raise, writes nowhere

    def test_concurrent_lines_never_interleave(self):
        import threading

        buffer = io.StringIO()
        logger = StructuredLogger(stream=buffer)

        def spam(tag):
            for _ in range(50):
                logger.log("tick", tag=tag, payload="x" * 64)

        threads = [threading.Thread(target=spam, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 200
        for line in lines:
            assert json.loads(line)["event"] == "tick"


def _stats_fixture():
    return {
        "service": {"table_hits": 3, "table_misses": 1, "table_hit_rate": 0.75},
        "engine": {"derive_calls": 42},
        "tables_cached": 1,
        "table_capacity": 32,
        "live_sessions": 0,
        "workers": 4,
        "traces": {"seen": 10, "sampled": 5, "slow": 1},
    }


class TestPrometheus:
    def test_render_and_parse_round_trip(self):
        hist = Histogram()
        hist.record_many([5, 50, 500, 5000])
        text = prometheus_exposition(_stats_fixture(), {"request_latency_ns": hist})
        samples = parse_prometheus(text)
        assert samples["repro_table_hits"] == 3
        assert samples["repro_table_hit_rate"] == 0.75
        assert samples["repro_engine_derive_calls"] == 42
        assert samples["repro_workers"] == 4
        assert samples["repro_traces_seen"] == 10
        assert samples['repro_request_latency_ns_bucket{le="+Inf"}'] == 4
        assert samples["repro_request_latency_ns_count"] == 4
        assert samples["repro_request_latency_ns_sum"] == 5555

    def test_histogram_buckets_are_cumulative_and_monotone(self):
        hist = Histogram()
        hist.record_many([1, 1, 2, 900, 900, 900, 10**6])
        text = prometheus_exposition({"service": {}}, {"lat": hist})
        # parse_prometheus itself enforces monotonicity; also check the top.
        samples = parse_prometheus(text)
        assert samples['repro_lat_bucket{le="+Inf"}'] == 7

    def test_counter_monotonicity_across_scrapes(self):
        """Two successive scrapes must never show a counter going backwards."""
        first = _stats_fixture()
        second = json.loads(json.dumps(first))
        second["service"]["table_hits"] += 5
        second["traces"]["seen"] += 2
        scrape1 = parse_prometheus(prometheus_exposition(first))
        scrape2 = parse_prometheus(prometheus_exposition(second))
        for name, value in scrape1.items():
            if name.endswith("_rate") or name not in scrape2:
                continue
            assert scrape2[name] >= value, name

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not a sample\n")
        with pytest.raises(ValueError):
            parse_prometheus("repro_x 1\nrepro_x 2\n")  # duplicate sample
        with pytest.raises(ValueError):
            parse_prometheus(
                'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\n'  # decreasing cumulative
            )

    def test_weird_metric_names_are_sanitized(self):
        text = prometheus_exposition({"service": {"weird-name!": 1}})
        samples = parse_prometheus(text)
        assert samples["repro_weird_name_"] == 1


class TestJsonSnapshot:
    def test_round_trips(self):
        stats = _stats_fixture()
        stats["latency"] = {"request_latency_ns": {"count": 0, "sum": 0}}
        text = json_snapshot(stats)
        assert "\n" not in text
        assert json.loads(text) == stats

    def test_non_json_values_fall_back_to_str(self):
        text = json_snapshot({"service": {"obj": object()}})
        assert "object object" in json.loads(text)["service"]["obj"]
