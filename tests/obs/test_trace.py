"""Tests for the contextvar tracer: sampling, ring bound, cross-thread spans."""

import io
import json
import threading
import time

import pytest

from repro.obs import StructuredLogger, Tracer, activated, current_trace, stage
from repro.obs.trace import _NOOP


class TestDisabled:
    def test_disabled_tracer_returns_shared_noop(self):
        tracer = Tracer(enabled=False)
        cm = tracer.request("recognize")
        assert cm is _NOOP
        with cm as trace:
            assert trace is None
            assert current_trace() is None
        assert tracer.seen == 0 and tracer.traces() == []

    def test_stage_without_active_trace_is_shared_noop(self):
        assert stage("anything") is _NOOP
        with stage("anything"):
            pass  # must be safely enterable

    def test_activated_none_is_noop(self):
        assert activated(None) is _NOOP


class TestSampling:
    def test_sample_every_is_deterministic(self):
        tracer = Tracer(enabled=True, sample_every=3)
        sampled = 0
        for _ in range(9):
            with tracer.request("op") as trace:
                if trace is not None:
                    sampled += 1
        assert tracer.seen == 9
        assert tracer.sampled == 3 == sampled

    def test_sampled_request_records_spans_and_duration(self):
        tracer = Tracer(enabled=True)
        with tracer.request("parse", grammar="pl0") as trace:
            assert current_trace() is trace
            with stage("fingerprint"):
                pass
            with trace.span("table"):
                pass
        assert current_trace() is None
        assert trace.duration_ns > 0
        assert sorted(trace.stage_totals()) == ["fingerprint", "table"]
        assert trace.labels == {"grammar": "pl0"}
        rendered = trace.as_dict()
        assert rendered["name"] == "parse"
        assert {span["stage"] for span in rendered["spans"]} == {"fingerprint", "table"}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)
        with pytest.raises(ValueError):
            Tracer(ring_size=0)


class TestRing:
    def test_ring_is_bounded(self):
        tracer = Tracer(enabled=True, ring_size=4)
        for i in range(10):
            with tracer.request("op{}".format(i)):
                pass
        retained = tracer.traces()
        assert len(retained) == 4
        assert [t.name for t in retained] == ["op6", "op7", "op8", "op9"]

    def test_digest_aggregates_stage_totals(self):
        tracer = Tracer(enabled=True)
        for _ in range(3):
            with tracer.request("op"):
                with stage("work"):
                    pass
        digest = tracer.digest()
        assert digest["seen"] == digest["sampled"] == digest["recent"] == 3
        assert digest["stages"]["work"]["count"] == 3
        assert digest["stages"]["work"]["total_ns"] >= 0
        assert digest["enabled"] is True


class TestSlowLog:
    def test_slow_requests_are_counted_and_logged(self):
        buffer = io.StringIO()
        logger = StructuredLogger(stream=buffer, clock=lambda: 0.0)
        tracer = Tracer(enabled=True, slow_threshold_ns=1, logger=logger)
        with tracer.request("edit", session="s1"):
            with stage("replay"):
                time.sleep(0.001)
        assert tracer.slow == 1
        event = json.loads(buffer.getvalue())
        assert event["event"] == "slow_request"
        assert event["request"] == "edit"
        assert event["session"] == "s1"
        assert "replay" in event["stages"]

    def test_fast_requests_stay_quiet(self):
        buffer = io.StringIO()
        tracer = Tracer(
            enabled=True,
            slow_threshold_ns=10**12,
            logger=StructuredLogger(stream=buffer),
        )
        with tracer.request("op"):
            pass
        assert tracer.slow == 0
        assert buffer.getvalue() == ""


class TestCrossThread:
    def test_activated_reenters_trace_in_pool_thread(self):
        """Worker threads never inherit the contextvar; activated() fixes that."""
        tracer = Tracer(enabled=True)
        with tracer.request("batch") as trace:
            seen_in_worker = []

            def worker():
                # Without activation the pool thread sees no trace at all.
                seen_in_worker.append(current_trace())
                with activated(trace):
                    seen_in_worker.append(current_trace())
                    with stage("recognize"):
                        pass
                seen_in_worker.append(current_trace())

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen_in_worker == [None, trace, None]
        assert "recognize" in trace.stage_totals()

    def test_concurrent_spans_all_land_in_the_trace(self):
        tracer = Tracer(enabled=True)
        with tracer.request("fanout") as trace:

            def worker(index):
                with activated(trace):
                    with stage("s{}".format(index % 2)):
                        pass

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        totals = trace.stage_totals()
        assert len(trace.spans) == 8
        assert set(totals) == {"s0", "s1"}
