"""Tests for the fixed-log-bucket latency histogram.

The load-bearing properties: quantiles agree with a sorted-list reference
to within one bucket's relative error (hypothesis-checked), and merging
per-worker shards is exactly equivalent to recording into one histogram —
the ``Metrics.merge`` contract carried into the time domain, stressed here
with real threads.
"""

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Histogram
from repro.obs.histogram import _bucket_bounds, _bucket_index


class TestBucketing:
    def test_small_values_are_exact(self):
        for value in range(4):
            low, high = Histogram.bucket_bounds(value)
            assert low == value and high == value + 1

    def test_bounds_contain_value(self):
        for value in [0, 1, 5, 17, 255, 256, 257, 10**6, 10**12]:
            low, high = Histogram.bucket_bounds(value)
            assert low <= value < high

    def test_relative_error_bounded(self):
        # 4 sub-buckets per power of two => bucket width <= 25% of its lower
        # bound, so the midpoint is within ~12.5% of any member value.
        for value in [13, 100, 999, 65537, 10**9]:
            low, high = Histogram.bucket_bounds(value)
            assert (high - low) <= max(1, low) * 0.25 + 1e-9

    def test_index_monotone_over_a_range(self):
        indexes = [_bucket_index(v) for v in range(4096)]
        assert indexes == sorted(indexes)

    def test_bounds_partition_the_line(self):
        # Consecutive buckets tile [0, inf): each upper is the next lower.
        previous_high = 0
        for index in range(64):
            low, high = _bucket_bounds(index)
            assert low == previous_high
            assert high > low
            previous_high = high


class TestRecording:
    def test_empty_summary(self):
        assert Histogram().summary() == {"count": 0, "sum": 0}
        assert math.isnan(Histogram().quantile(0.5))
        assert len(Histogram()) == 0

    def test_basic_stats(self):
        hist = Histogram()
        hist.record_many([1, 2, 3, 4])
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == 10
        assert summary["min"] == 1 and summary["max"] == 4
        assert summary["mean"] == pytest.approx(2.5)

    def test_negative_values_clamp_to_zero(self):
        hist = Histogram()
        hist.record(-5)
        assert hist.summary()["min"] == 0

    def test_quantile_bounds_and_validation(self):
        hist = Histogram()
        hist.record_many([10] * 100)
        assert hist.quantile(0.5) == 10  # clamped into [low, high]
        with pytest.raises(ValueError):
            hist.quantile(0.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_cumulative_buckets_monotone(self):
        hist = Histogram()
        hist.record_many([1, 5, 5, 90, 1000])
        cumulative = hist.cumulative_buckets()
        counts = [count for _upper, count in cumulative]
        assert counts == sorted(counts)
        assert counts[-1] == 5


def _reference_quantile(values, q):
    """Nearest-rank quantile on the raw sorted values."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered) - 1e-9))
    return ordered[rank - 1]


class TestQuantileAgainstReference:
    @settings(max_examples=200, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=300),
        q=st.sampled_from([0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0]),
    )
    def test_quantile_within_one_bucket_of_sorted_reference(self, values, q):
        hist = Histogram()
        hist.record_many(values)
        expected = _reference_quantile(values, q)
        got = hist.quantile(q)
        # The histogram answers from the bucket holding the nearest-rank
        # value, so its answer must land inside that value's bucket.
        low, high = Histogram.bucket_bounds(expected)
        assert low <= got <= high

    @settings(max_examples=100, deadline=None)
    @given(
        left=st.lists(st.integers(min_value=0, max_value=10**6), max_size=100),
        right=st.lists(st.integers(min_value=0, max_value=10**6), max_size=100),
    )
    def test_merge_equals_recording_into_one(self, left, right):
        merged = Histogram()
        merged.record_many(left)
        shard = Histogram()
        shard.record_many(right)
        merged.merge(shard)

        direct = Histogram()
        direct.record_many(left + right)
        assert merged.summary() == direct.summary()
        assert merged.cumulative_buckets() == direct.cumulative_buckets()


class TestShardedMerge:
    def test_eight_thread_shards_fold_losslessly(self):
        """The ``Metrics.merge`` contract in the time domain, with real threads.

        Eight workers record into private shards with no synchronization at
        all (each shard is thread-confined), then the shards fold into one
        aggregate — which must be bit-identical to a single-threaded
        recording of the same observations.
        """
        per_thread = 2000
        threads = 8
        shards = [Histogram() for _ in range(threads)]
        barrier = threading.Barrier(threads)

        def work(index):
            shard = shards[index]
            barrier.wait()
            for i in range(per_thread):
                shard.record((index * per_thread + i) % 7919 + index)

        pool = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        total = Histogram()
        for shard in shards:
            total.merge(shard)

        reference = Histogram()
        for index in range(threads):
            for i in range(per_thread):
                reference.record((index * per_thread + i) % 7919 + index)

        assert total.count == threads * per_thread
        assert total.summary() == reference.summary()
        assert total.cumulative_buckets() == reference.cumulative_buckets()

    def test_copy_is_independent(self):
        hist = Histogram()
        hist.record_many([1, 2, 3])
        clone = hist.copy()
        clone.record(100)
        assert hist.count == 3 and clone.count == 4
