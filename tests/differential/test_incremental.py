"""Differential testing: incremental reparsing vs. from-scratch parsing.

The parity contract of :mod:`repro.incremental`: after *any* sequence of
edits, an :class:`~repro.incremental.IncrementalDocument`'s
``recognize()``, ``tree()`` and diagnosed failure position must agree
exactly with a from-scratch parse of the current buffer — on the
interpreted engine, on the compiled engine, and between the two.  These
tests replay hand-picked edge cases (empty input, edits landing exactly
on checkpoint boundaries) and hypothesis-generated random edit scripts,
comparing each document against a fresh
:class:`~repro.core.parse.DerivativeParser` oracle after every splice.
"""

import pytest

from repro.compile import CompiledParser
from repro.core import DerivativeParser, ParseError
from repro.grammars import arithmetic_grammar, pl0_grammar
from repro.incremental import IncrementalDocument
from repro.lexer.tokens import Tok
from repro.workloads import apply_edits, pl0_tokens, random_edit_script

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402


ENGINES = ("interpreted", "compiled")


def scratch_failure_position(grammar, tokens, engine):
    """The exact failing index a from-scratch batch parse reports, or None."""
    if engine == "compiled":
        parser = CompiledParser(grammar)
    else:
        parser = DerivativeParser(grammar.to_language())
    try:
        parser.parse(list(tokens))
    except ParseError as error:
        return error.position
    return None


def assert_parity(document, grammar, buffer, engine):
    """One document vs. the from-scratch oracles on the same buffer."""
    oracle = DerivativeParser(grammar.to_language())
    expected = oracle.recognize(list(buffer))
    assert document.recognize() == expected, (
        "{} incremental recognize diverged on {!r}".format(engine, buffer)
    )
    assert list(document.tokens) == list(buffer)
    expected_failure = scratch_failure_position(grammar, buffer, engine)
    assert document.failure_position() == expected_failure, (
        "{} incremental failure position diverged on {!r}".format(engine, buffer)
    )
    if expected:
        assert document.tree() == oracle.parse(list(buffer)), (
            "{} incremental tree diverged on {!r}".format(engine, buffer)
        )


class TestEdgeCases:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_input_parity(self, engine):
        grammar = pl0_grammar()
        document = IncrementalDocument(grammar, [], engine=engine)
        assert_parity(document, grammar, [], engine)
        # Growing out of — and shrinking back to — empty stays in parity.
        document.apply_edit(0, 0, [Tok(".")])
        assert_parity(document, grammar, [Tok(".")], engine)
        document.apply_edit(0, 1, [])
        assert_parity(document, grammar, [], engine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_edit_exactly_on_checkpoint_boundary(self, engine):
        grammar = pl0_grammar()
        tokens = pl0_tokens(200, seed=21)
        document = IncrementalDocument(
            grammar, tokens, checkpoint_every=25, engine=engine
        )
        boundary = document.checkpoints()[2]
        # Replace the token *at* the boundary with junk: the rewind must
        # land exactly on the checkpoint and parity must hold on the now
        # invalid buffer...
        result = document.apply_edit(boundary, boundary + 1, [Tok("@")])
        assert result.rewound_to == boundary
        buffer = list(tokens)
        buffer[boundary : boundary + 1] = [Tok("@")]
        assert_parity(document, grammar, buffer, engine)
        # ...and again after repairing it.
        document.apply_edit(boundary, boundary + 1, [tokens[boundary]])
        assert_parity(document, grammar, tokens, engine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_whole_buffer_replacement(self, engine):
        grammar = pl0_grammar()
        old = pl0_tokens(120, seed=22)
        new = pl0_tokens(150, seed=23)
        document = IncrementalDocument(grammar, old, engine=engine)
        document.apply_edit(0, len(old), new)
        assert_parity(document, grammar, new, engine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_arithmetic_edit_failure_positions(self, engine):
        grammar = arithmetic_grammar()
        tokens = [Tok("NUMBER", "1"), Tok("+"), Tok("NUMBER", "2")]
        document = IncrementalDocument(grammar, tokens, engine=engine)
        for edit in [
            (1, 2, [Tok("*")]),  # 1 * 2 — still valid
            (2, 3, []),  # 1 * — unexpected end of input
            (0, 1, [Tok("+")]),  # + * — fails at 1
            (0, 2, [Tok("NUMBER", "7")]),  # 7 — valid again
        ]:
            start, end, replacement = edit
            buffer = list(document.tokens)
            buffer[start:end] = replacement
            document.apply_edit(start, end, replacement)
            assert_parity(document, grammar, buffer, engine)


class TestRandomEditScripts:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", range(3))
    def test_scripted_edits_stay_in_parity(self, engine, seed):
        grammar = pl0_grammar()
        tokens = pl0_tokens(150, seed=seed)
        script = random_edit_script(tokens, 6, seed=seed)
        document = IncrementalDocument(
            grammar, tokens, checkpoint_every=16, engine=engine
        )
        buffer = list(tokens)
        for edit in script:
            buffer[edit.start : edit.end] = list(edit.tokens)
            document.apply_edit(edit.start, edit.end, edit.tokens)
            assert_parity(document, grammar, buffer, engine)
        assert buffer == apply_edits(tokens, script)


# A compact arithmetic token alphabet keeps hypothesis shrinks readable
# while still exercising valid and invalid buffers.
ARITH_TOKENS = st.sampled_from(
    [Tok("NUMBER", "1"), Tok("NUMBER", "2"), Tok("NAME", "x"), Tok("+"),
     Tok("*"), Tok("("), Tok(")")]
)


@st.composite
def edit_scripts(draw):
    """An initial buffer plus a sequence of splices valid when applied in order."""
    buffer = draw(st.lists(ARITH_TOKENS, max_size=18))
    length = len(buffer)
    edits = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        start = draw(st.integers(min_value=0, max_value=length))
        end = draw(st.integers(min_value=start, max_value=min(length, start + 3)))
        inserted = draw(st.lists(ARITH_TOKENS, max_size=3))
        edits.append((start, end, inserted))
        length += len(inserted) - (end - start)
    return buffer, edits


class TestHypothesisParity:
    """Random edit scripts ⇒ incremental result == from-scratch result."""

    @settings(max_examples=40, deadline=None)
    @given(script=edit_scripts())
    def test_interpreted_document_matches_scratch(self, script):
        self._run("interpreted", script)

    @settings(max_examples=40, deadline=None)
    @given(script=edit_scripts())
    def test_compiled_document_matches_scratch(self, script):
        self._run("compiled", script)

    def _run(self, engine, script):
        grammar = arithmetic_grammar()
        initial, edits = script
        document = IncrementalDocument(
            grammar, initial, checkpoint_every=4, engine=engine
        )
        buffer = list(initial)
        assert_parity(document, grammar, buffer, engine)
        for start, end, inserted in edits:
            buffer[start:end] = list(inserted)
            document.apply_edit(start, end, inserted)
            assert_parity(document, grammar, buffer, engine)
