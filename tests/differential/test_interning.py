"""Differential tests: hash-consing must never change observable results.

The compactor's interning layer (``CompactionConfig.hash_consing``) returns
canonical nodes for repeated constructions.  These tests build *twin*
grammars from one pure-data spec — one parsed with interning on, one with it
off — and assert the two engines agree on everything observable:
recognition, failure positions and extracted parse trees, over random cyclic
grammars (hypothesis) and over the repository's evaluation grammars with
valid and corrupted streams.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    EMPTY,
    CompactionConfig,
    DerivativeParser,
    ParseError,
    Ref,
    epsilon,
    token,
)
from repro.core.languages import Alt, Cat
from repro.grammars import arithmetic_grammar, binary_sum_grammar, pl0_grammar
from repro.lexer.tokens import Tok
from repro.workloads import ambiguous_sum_tokens, arithmetic_tokens, pl0_tokens


def interning_config(enabled):
    config = CompactionConfig.full()
    config.hash_consing = enabled
    return config


# ---------------------------------------------------------------------------
# Random cyclic grammars from pure-data specs (buildable twice, identically)
# ---------------------------------------------------------------------------
def build_grammar(spec):
    refs = [Ref("N{}".format(index)) for index in range(len(spec))]

    def build(expr):
        if expr == "eps":
            return epsilon(())
        if expr == "empty":
            return EMPTY
        if expr in ("a", "b"):
            return token(expr)
        kind = expr[0]
        if kind == "ref":
            return refs[expr[1]]
        if kind == "alt":
            return Alt(build(expr[1]), build(expr[2]))
        return Cat(build(expr[1]), build(expr[2]))  # 'cat'

    for ref, body in zip(refs, spec):
        ref.set(build(body))
    return refs[0]


def expression_strategy(n_refs):
    leaves = st.sampled_from(["a", "b", "eps", "empty"]) | st.tuples(
        st.just("ref"), st.integers(0, n_refs - 1)
    )
    return st.recursive(
        leaves,
        lambda inner: st.tuples(st.sampled_from(["alt", "cat"]), inner, inner),
        max_leaves=8,
    )


@st.composite
def grammar_and_inputs(draw):
    n_refs = draw(st.integers(1, 3))
    spec = [draw(expression_strategy(n_refs)) for _ in range(n_refs)]
    inputs = draw(
        st.lists(st.text(alphabet="ab", max_size=6), min_size=1, max_size=4)
    )
    return spec, inputs


def observable(parser, tokens):
    """Everything a caller can see: recognition, trees or failure position."""
    recognized = parser.recognize(tokens)
    if not recognized:
        try:
            parser.parse(tokens)
        except ParseError as error:
            return (False, error.position)
        raise AssertionError("parse() succeeded on an unrecognized input")
    try:
        trees = parser.parse_trees(tokens, limit=5)
    except ParseError:
        # Recognized but no finite tree (ε-cycles): that outcome must match
        # between the twins too.
        return (True, "no-finite-tree")
    return (True, trees)


@settings(max_examples=100, deadline=None)
@given(grammar_and_inputs())
def test_interning_never_changes_results_on_random_grammars(case):
    spec, inputs = case
    with_interning = DerivativeParser(build_grammar(spec), compaction=interning_config(True))
    without = DerivativeParser(build_grammar(spec), compaction=interning_config(False))
    for text in inputs:
        tokens = list(text)
        assert observable(with_interning, tokens) == observable(without, tokens), (
            "interning changed the result on {!r} for spec {!r}".format(text, spec)
        )


# ---------------------------------------------------------------------------
# Evaluation grammars, valid + corrupted streams
# ---------------------------------------------------------------------------
def corrupted(tokens, seed):
    rng = random.Random(seed)
    streams = [tokens]
    if tokens:
        streams.append(tokens[:-1])
        streams.append(tokens[1:])
        position = rng.randrange(len(tokens))
        streams.append(tokens[:position] + [Tok("@")] + tokens[position:])
        position = rng.randrange(len(tokens))
        streams.append(tokens[:position] + [Tok("@")] + tokens[position + 1 :])
    return streams


@pytest.mark.parametrize(
    "grammar_fn,stream_fn",
    [
        (arithmetic_grammar, lambda seed: arithmetic_tokens(30, seed=seed)),
        (pl0_grammar, lambda seed: pl0_tokens(90, seed=seed)),
        (binary_sum_grammar, lambda seed: ambiguous_sum_tokens(3 + seed)),
    ],
    ids=["arithmetic", "pl0", "ambiguous-sum"],
)
@pytest.mark.parametrize("seed", range(3))
def test_interning_agrees_on_evaluation_grammars(grammar_fn, stream_fn, seed):
    with_interning = DerivativeParser(
        grammar_fn().to_language(), compaction=interning_config(True)
    )
    without = DerivativeParser(
        grammar_fn().to_language(), compaction=interning_config(False)
    )
    for stream in corrupted(stream_fn(seed), seed):
        assert observable(with_interning, stream) == observable(without, stream)


def test_interning_table_is_cleared_by_reset():
    parser = DerivativeParser(
        arithmetic_grammar().to_language(), compaction=interning_config(True)
    )
    parser.recognize(arithmetic_tokens(30, seed=0))
    assert parser.compactor.interned_count() > 0
    parser.reset()
    assert parser.compactor.interned_count() == 0
    # And the parser still works after the purge.
    assert parser.recognize(arithmetic_tokens(30, seed=1))


def test_interning_produces_hits_and_identical_metrics_semantics():
    tokens = pl0_tokens(120, seed=2)
    parser = DerivativeParser(pl0_grammar().to_language(), compaction=interning_config(True))
    for _ in range(3):
        assert parser.recognize(tokens)
    assert parser.metrics.hash_cons_hits > 0
