"""Differential testing: the pooled service vs. the in-process service.

The multi-process pool must be *observationally identical* to an
in-process :class:`ParseService`: same acceptance verdicts, same parse
trees (values included), same failure positions, in the same batch
order — no matter how the batch is sharded, chunked across workers, or
reassembled at fan-in.  Hypothesis drives random grammar/batch mixes
drawn from per-grammar stream pools (valid streams, systematic
corruptions, and edge cases) and asserts exact agreement on every
outcome field.

Both engines live for the whole module and are warmed once per grammar
up front, so examples exercise the dispatch/fan-in machinery rather
than re-measuring compile time.  Stream sizes stay small on purpose:
cold derivation is milliseconds per token, and the property's subject
is wire parity, not throughput.
"""

import pytest

from repro.grammars import arithmetic_grammar, balanced_parens_grammar, pl0_grammar
from repro.lexer.tokens import Tok
from repro.serve import ParseService, PooledParseService
from repro.workloads import arithmetic_tokens, pl0_tokens

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

GRAMMARS = {
    "arithmetic": arithmetic_grammar,
    "balanced_parens": balanced_parens_grammar,
    "pl0": pl0_grammar,
}


def _stream_pool():
    """Per-grammar candidate streams: valid, corrupted, and edge cases."""
    valid = {
        "arithmetic": [arithmetic_tokens(24, seed=seed) for seed in range(3)],
        "pl0": [pl0_tokens(40, seed=seed) for seed in range(3)],
        "balanced_parens": [
            [Tok("("), Tok(")")],
            [Tok("("), Tok("("), Tok(")"), Tok(")")],
            [Tok("("), Tok(")"), Tok("("), Tok(")")],
        ],
    }
    pool = {}
    for name, streams in valid.items():
        candidates = [list(stream) for stream in streams]
        for stream in streams:
            candidates.append(stream[:-1])  # truncate the tail
            candidates.append(stream[1:])  # truncate the head
            candidates.append(stream + stream[-1:])  # duplicate the last token
            middle = len(stream) // 2
            candidates.append(stream[:middle] + [Tok("@")] + stream[middle:])  # junk
        candidates.append([])  # empty stream inside a batch
        candidates.append([Tok("@")])  # junk-only stream
        pool[name] = candidates
    return pool


STREAMS = _stream_pool()


@pytest.fixture(scope="module")
def engines():
    with PooledParseService(workers=2, replication=2) as pooled:
        with ParseService(workers=2) as in_process:
            # Compile every grammar once in both engines so each drawn
            # example runs against warm tables.
            for name in GRAMMARS:
                grammar = GRAMMARS[name]()
                first = STREAMS[name][:1]
                pooled.recognize_many(grammar, first)
                in_process.recognize_many(grammar, first)
            yield pooled, in_process


@given(data=st.data())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_pooled_results_agree_exactly_with_in_process(engines, data):
    pooled, in_process = engines
    name = data.draw(st.sampled_from(sorted(STREAMS)), label="grammar")
    batch = data.draw(
        st.lists(st.sampled_from(STREAMS[name]), min_size=1, max_size=5),
        label="batch",
    )
    grammar = GRAMMARS[name]()

    assert pooled.recognize_many(grammar, batch) == in_process.recognize_many(
        grammar, batch
    )

    pooled_outcomes = pooled.parse_many(grammar, batch)
    expected_outcomes = in_process.parse_many(grammar, batch)
    assert len(pooled_outcomes) == len(expected_outcomes)
    for pooled_outcome, expected in zip(pooled_outcomes, expected_outcomes):
        assert pooled_outcome.ok == expected.ok
        if expected.ok:
            assert pooled_outcome.tree == expected.tree
        else:
            assert pooled_outcome.failure_position == expected.failure_position
