"""Differential testing: derivative vs. compiled vs. Earley vs. GLR.

The parser families implement unrelated algorithms over the same CFG
substrate, which makes them excellent oracles for one another: any
recognition disagreement on any input is a bug in at least one of them.
These tests sweep valid streams, systematically corrupted streams and
hand-picked edge cases over the classic, ambiguous and PL/0 evaluation
grammars, asserting recognition agreement everywhere and — for the parsers
that report them — agreement on failure positions.

The compiled automaton (:mod:`repro.compile`) joins the sweep with a
*shared, progressively warming* transition table per grammar: every stream
checked both exercises and hardens the claim that cached token-class
transitions are interchangeable with fresh derivation.
"""

import random

import pytest

from repro.compile import CompiledParser
from repro.core import DerivativeParser, ParseError
from repro.earley import EarleyParser
from repro.glr import GLRParser
from repro.grammars import (
    arithmetic_grammar,
    balanced_parens_grammar,
    binary_sum_grammar,
    pl0_grammar,
    sexpr_grammar,
)
from repro.lexer.tokens import Tok
from repro.workloads import ambiguous_sum_tokens, arithmetic_tokens, pl0_tokens, sexpr_tokens


def corrupted_streams(tokens, seed=0):
    """Systematic mutations of a valid stream: truncate, insert, replace."""
    rng = random.Random(seed)
    streams = []
    if tokens:
        streams.append(tokens[:-1])  # drop the final token
        streams.append(tokens[1:])  # drop the first token
        position = rng.randrange(len(tokens))
        streams.append(tokens[:position] + [Tok("@")] + tokens[position:])  # insert junk
        position = rng.randrange(len(tokens))
        streams.append(tokens[:position] + [Tok("@")] + tokens[position + 1 :])  # replace
        streams.append(tokens + tokens[-1:])  # duplicate the final token
    return streams


def assert_recognition_agreement(grammar, streams):
    derivative = DerivativeParser(grammar.to_language())
    compiled = CompiledParser(grammar)  # shares the grammar's warm table
    earley = EarleyParser(grammar)
    glr = GLRParser(grammar)
    for stream in streams:
        expected = earley.recognize(stream)
        got_derivative = derivative.recognize(stream)
        got_compiled = compiled.recognize(stream)
        got_glr = glr.recognize(stream)
        assert got_derivative is expected, (
            "derivative vs Earley disagree on {!r}".format(stream)
        )
        assert got_compiled is expected, (
            "compiled vs Earley disagree on {!r}".format(stream)
        )
        # Immediately re-walk the now-cached stream: transition-cache hits
        # must reproduce the cold answer.
        assert compiled.recognize(stream) is expected, (
            "compiled warm re-run flipped on {!r}".format(stream)
        )
        assert got_glr is expected, "GLR vs Earley disagree on {!r}".format(stream)
        # Streaming soundness of the automaton's native failure signal.
        # The *position* of structural collapse is schedule-dependent (each
        # engine's adaptive prune cadence decides when a semantically dead
        # language is rewritten to ∅), so positions are not comparable
        # across engines — but the signal must be sound: a failed state
        # means no completion exists, and accepts() must agree with the
        # batch oracle.
        interpreted_state = derivative.start().feed_all(stream)
        compiled_state = compiled.start(keep_tokens=False).feed_all(stream)
        assert compiled_state.accepts() == interpreted_state.accepts() == expected, (
            "streaming accepts() disagrees on {!r}".format(stream)
        )
        if compiled_state.failed:
            assert expected is False, (
                "automaton reported structural death on an accepted "
                "stream {!r}".format(stream)
            )
            assert compiled_state.failure_position <= len(stream) - 1


def failure_position(parser, stream):
    """The reported failure index, or None when the parse succeeds."""
    try:
        parser.parse(stream)
    except ParseError as err:
        return err.position
    return None


class TestClassicGrammars:
    @pytest.mark.parametrize("seed", range(4))
    def test_arithmetic_agreement(self, seed):
        grammar = arithmetic_grammar()
        valid = arithmetic_tokens(40, seed=seed)
        streams = [valid] + corrupted_streams(valid, seed=seed)
        assert_recognition_agreement(grammar, streams)

    @pytest.mark.parametrize("seed", range(3))
    def test_sexpr_agreement(self, seed):
        grammar = sexpr_grammar()
        valid = sexpr_tokens(30, seed=seed)
        streams = [valid] + corrupted_streams(valid, seed=seed)
        assert_recognition_agreement(grammar, streams)

    def test_balanced_parens_agreement(self):
        grammar = balanced_parens_grammar()
        streams = [
            [],
            [Tok("(")],
            [Tok("("), Tok(")")],
            [Tok("("), Tok("("), Tok(")"), Tok(")"), Tok("("), Tok(")")],
            [Tok(")"), Tok("(")],
            [Tok("("), Tok(")"), Tok(")")],
        ]
        assert_recognition_agreement(grammar, streams)

    def test_empty_and_single_token_edges(self):
        grammar = arithmetic_grammar()
        streams = [
            [],
            [Tok("NUMBER", "1")],
            [Tok("+")],
            [Tok("("), Tok(")")],
            [Tok("NAME", "x"), Tok("*"), Tok("NUMBER", "2")],
        ]
        assert_recognition_agreement(grammar, streams)


class TestPl0Grammar:
    """PL/0 (arXiv:2207.08972): a keyword-delimited statically-structured
    language — the compiled automaton's target workload shape."""

    @pytest.mark.parametrize("seed", range(4))
    def test_pl0_agreement(self, seed):
        grammar = pl0_grammar()
        valid = pl0_tokens(120, seed=seed)
        streams = [valid] + corrupted_streams(valid, seed=seed)
        assert_recognition_agreement(grammar, streams)

    def test_pl0_edge_cases(self):
        grammar = pl0_grammar()
        streams = [
            [Tok(".")],  # empty statement is a valid program body
            [],
            [Tok("begin"), Tok("end"), Tok(".")],
            [Tok("begin"), Tok(";"), Tok("end"), Tok(".")],
            [Tok("IDENT", "x"), Tok(":="), Tok("NUMBER", "1"), Tok(".")],
            [Tok("IDENT", "x"), Tok(":="), Tok(".")],
            [Tok("var"), Tok("IDENT", "x"), Tok(".")],
            [Tok("if"), Tok("odd"), Tok("IDENT", "x"), Tok("then"), Tok(".")],
        ]
        assert_recognition_agreement(grammar, streams)


class TestAmbiguousGrammars:
    @pytest.mark.parametrize("terms", [1, 2, 3, 5, 8])
    def test_binary_sum_agreement(self, terms):
        grammar = binary_sum_grammar()
        valid = ambiguous_sum_tokens(terms)
        streams = [valid] + corrupted_streams(valid, seed=terms)
        assert_recognition_agreement(grammar, streams)

    def test_ambiguous_forest_sizes_match_catalan(self):
        # Recognition agreement plus the derivative parser's forest count —
        # GLR and Earley accept the same strings; the forest pins ambiguity.
        from repro.core import count_trees

        grammar = binary_sum_grammar()
        derivative = DerivativeParser(grammar.to_language())
        forest = derivative.parse_forest(ambiguous_sum_tokens(4))
        assert count_trees(forest) == 5  # Catalan(3)


class TestFailurePositions:
    """Derivative and Earley both report the index of the offending token."""

    CASES = [
        ("n+*n", 2),
        ("*", 0),
        ("n n", 1),
        ("(n+n))", 5),
        ("n+", 2),  # unexpected end of input → position == len(tokens)
    ]

    @pytest.mark.parametrize("text,expected", CASES)
    def test_failure_positions_agree(self, text, expected):
        grammar = arithmetic_grammar()
        tokens = [
            Tok("NUMBER", "1") if ch == "n" else Tok(ch) for ch in text if ch != " "
        ]
        if " " in text:
            tokens = [Tok("NUMBER", "1"), Tok("NUMBER", "2")]
        derivative = DerivativeParser(grammar.to_language())
        compiled = CompiledParser(grammar)
        earley = EarleyParser(grammar)

        derivative_position = failure_position(derivative, tokens)
        compiled_position = failure_position(compiled, tokens)
        earley_position = failure_position(earley, tokens)
        assert derivative_position == expected
        assert compiled_position == expected
        assert earley_position == expected

    @pytest.mark.parametrize("seed", range(3))
    def test_failure_positions_agree_on_corrupted_streams(self, seed):
        grammar = arithmetic_grammar()
        valid = arithmetic_tokens(24, seed=seed)
        derivative = DerivativeParser(grammar.to_language())
        compiled = CompiledParser(grammar)
        earley = EarleyParser(grammar)
        for stream in corrupted_streams(valid, seed=seed):
            derivative_position = failure_position(derivative, stream)
            compiled_position = failure_position(compiled, stream)
            earley_position = failure_position(earley, stream)
            assert derivative_position == earley_position, (
                "failure positions diverge on {!r}".format(stream)
            )
            assert compiled_position == earley_position, (
                "compiled failure position diverges on {!r}".format(stream)
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_pl0_failure_positions_agree(self, seed):
        grammar = pl0_grammar()
        valid = pl0_tokens(80, seed=seed)
        derivative = DerivativeParser(grammar.to_language())
        compiled = CompiledParser(grammar)
        earley = EarleyParser(grammar)
        for stream in [valid] + corrupted_streams(valid, seed=seed):
            derivative_position = failure_position(derivative, stream)
            compiled_position = failure_position(compiled, stream)
            earley_position = failure_position(earley, stream)
            assert derivative_position == earley_position, (
                "failure positions diverge on {!r}".format(stream)
            )
            assert compiled_position == earley_position, (
                "compiled failure position diverges on {!r}".format(stream)
            )
