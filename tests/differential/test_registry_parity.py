"""Registry-derived differential coverage: every zoo cell, every gate.

The grammar zoo (:mod:`repro.bench.registry`) declares, per cell, which
engines run a grammar × workload pairing and which gates it must pass.
This suite *derives* its parameterization from that declaration, so adding
a grammar to the zoo automatically buys it:

* recognition + failure-position parity across the cell's engines, on
  valid and corrupted streams (``differential`` gate),
* identical parse trees across the tree-capable engines (``trees`` gate),
* closed-form forest counts, cross-checked between ``count_trees`` and
  ``iter_trees`` enumeration (``ambiguity`` gate),
* forest-query agreement — exact integer counts, ranked extraction
  matching plain enumeration, replayable sampling (``forest`` gate),
* serialization round-trips (``serialization``), dense-core agreement
  (``dense``), incremental-edit convergence (``incremental``) and worker
  pool parity (``pooled``).

A guard test fails if a zoo grammar is registered without differential
coverage — the matrix cannot grow silently unchecked cells.
"""

import random

import pytest

from repro.bench.registry import CELLS, cells_for_gate, zoo_grammar_ids
from repro.compile import CompiledParser, GrammarTable, load_table, save_table
from repro.core import DerivativeParser, ParseError
from repro.core.forest import count_trees, iter_trees
from repro.earley import EarleyParser
from repro.glr import GLRParser
from repro.incremental import IncrementalDocument
from repro.lexer.tokens import Tok

_CELL_ID = lambda cell: cell.id  # noqa: E731 - stable pytest test IDs

#: Enumeration-based cross-checks only run below this forest size; bigger
#: forests (the astronomical cell) are checked by count/rank/sample alone.
_ENUMERABLE = 10_000


def _quick_streams(cell, max_streams=2):
    """The cell's quick-mode streams, capped to keep the suite fast."""
    return cell.workload.streams(quick=True)[:max_streams]


def corrupted_streams(tokens, seed=0):
    """Truncate / insert / replace / duplicate mutations of a valid stream."""
    rng = random.Random(seed)
    streams = []
    if tokens:
        streams.append(tokens[:-1])
        streams.append(tokens[1:])
        position = rng.randrange(len(tokens))
        streams.append(tokens[:position] + [Tok("@")] + tokens[position:])
        position = rng.randrange(len(tokens))
        streams.append(tokens[:position] + [Tok("@")] + tokens[position + 1 :])
        streams.append(tokens + tokens[-1:])
    return streams


def _failure_position(parser, stream):
    try:
        parser.parse(stream)
    except ParseError as error:
        return error.position
    return None


# ---------------------------------------------------------------------------
# differential: recognition + failure positions across the cell's engines
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cell", cells_for_gate("differential"), ids=_CELL_ID)
def test_registry_recognition_parity(cell):
    grammar = cell.grammar.factory()
    derivative = DerivativeParser(grammar.to_language())
    compiled = CompiledParser(grammar) if "compiled" in cell.engines else None
    earley = EarleyParser(grammar) if "earley" in cell.engines else None
    glr = GLRParser(grammar) if "glr" in cell.engines else None
    for size, seed, tokens in _quick_streams(cell):
        for stream in [tokens] + corrupted_streams(tokens, seed=seed):
            expected = derivative.recognize(stream)
            context = "cell {!r} size {} seed {}".format(cell.id, size, seed)
            if earley is not None:
                assert earley.recognize(stream) is expected, context
            if glr is not None:
                assert glr.recognize(stream) is expected, context
            if compiled is not None:
                assert compiled.recognize(stream) is expected, context
                # Warm transition-cache re-run must reproduce the verdict.
                assert compiled.recognize(stream) is expected, context


@pytest.mark.parametrize("cell", cells_for_gate("differential"), ids=_CELL_ID)
def test_registry_failure_position_parity(cell):
    grammar = cell.grammar.factory()
    derivative = DerivativeParser(grammar.to_language())
    compiled = CompiledParser(grammar) if "compiled" in cell.engines else None
    earley = EarleyParser(grammar) if "earley" in cell.engines else None
    size, seed, tokens = _quick_streams(cell, max_streams=1)[0]
    for stream in corrupted_streams(tokens, seed=seed):
        expected = _failure_position(derivative, stream)
        if earley is not None:
            assert _failure_position(earley, stream) == expected, (
                "cell {!r}: Earley failure position diverges on {!r}".format(
                    cell.id, stream
                )
            )
        if compiled is not None:
            assert _failure_position(compiled, stream) == expected, (
                "cell {!r}: compiled failure position diverges on {!r}".format(
                    cell.id, stream
                )
            )


# ---------------------------------------------------------------------------
# trees: tree-capable engines agree exactly (unambiguous cells)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cell", cells_for_gate("trees"), ids=_CELL_ID)
def test_registry_tree_parity(cell):
    assert not cell.grammar.ambiguous, (
        "trees gate is for unambiguous cells; use the ambiguity gate instead"
    )
    grammar = cell.grammar.factory()
    derivative = DerivativeParser(grammar.to_language())
    compiled = CompiledParser(grammar)
    earley = EarleyParser(grammar)
    for size, seed, tokens in _quick_streams(cell):
        reference = derivative.parse(tokens)
        context = "cell {!r} size {} seed {}".format(cell.id, size, seed)
        assert compiled.parse(tokens) == reference, context
        assert earley.parse(tokens) == reference, context


# ---------------------------------------------------------------------------
# ambiguity: closed-form counts, count_trees vs iter_trees cross-check
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cell", cells_for_gate("ambiguity"), ids=_CELL_ID)
def test_registry_ambiguity_counts(cell):
    grammar = cell.grammar.factory()
    parser = DerivativeParser(grammar.to_language())
    for quick in (True, False):
        for size, seed, tokens in cell.workload.streams(quick=quick):
            forest = parser.parse_forest(tokens)
            expected = cell.grammar.forest_count(tokens)
            counted = count_trees(forest)
            assert type(counted) is int, (
                "cell {!r} size {}: count must be an exact int, got {}".format(
                    cell.id, size, type(counted).__name__
                )
            )
            assert counted == expected, (
                "cell {!r} size {}: count_trees says {}, closed form {}".format(
                    cell.id, size, counted, expected
                )
            )
            if expected > _ENUMERABLE:
                # Astronomically ambiguous streams cannot be enumerated;
                # the forest gate checks them without materialization.
                continue
            # Enumeration agrees with counting: exactly `expected` distinct
            # trees come out, and asking for one more finds nothing extra.
            enumerated = list(iter_trees(forest, limit=expected + 1))
            assert len(enumerated) == expected, (
                "cell {!r} size {}: enumerated {} trees, counted {}".format(
                    cell.id, size, len(enumerated), expected
                )
            )


# ---------------------------------------------------------------------------
# forest: the forest-query layer vs plain enumeration on every gated cell
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cell", cells_for_gate("forest"), ids=_CELL_ID)
def test_registry_forest_queries(cell):
    from repro.core.forest_query import ForestQuery

    grammar = cell.grammar.factory()
    parser = DerivativeParser(grammar.to_language())
    for size, seed, tokens in cell.workload.streams(quick=True):
        forest = parser.parse_forest(tokens)
        expected = cell.grammar.forest_count(tokens)
        query = ForestQuery(forest, "size")
        context = "cell {!r} size {}".format(cell.id, size)
        assert type(query.count) is int and query.count == expected, context
        ranked = list(query.iter_ranked(5))
        scores = [score for score, _tree in ranked]
        assert scores == sorted(scores), context
        assert query.sample_n(seed, 4) == query.sample_n(seed, 4), context
        if expected > _ENUMERABLE:
            continue
        # On enumerable forests the ranked stream, run to exhaustion, is a
        # permutation of plain enumeration (dedup semantics included).
        full = [tree for _score, tree in ForestQuery(forest, "size").iter_ranked()]
        plain = list(iter_trees(forest))
        assert len(full) == len(plain), context
        assert {repr(t) for t in full} == {repr(t) for t in plain}, context


def test_catalan_known_answer_pinned():
    """Regression pin: 10 leaves under S → S S | a has exactly Catalan(9)=4862 trees."""
    from repro.grammars import catalan_grammar
    from repro.workloads import catalan_count, catalan_tokens

    assert catalan_count(10) == 4862
    parser = DerivativeParser(catalan_grammar().to_language())
    assert count_trees(parser.parse_forest(catalan_tokens(10))) == 4862


# ---------------------------------------------------------------------------
# serialization: saved + reloaded tables reproduce recognition
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cell", cells_for_gate("serialization"), ids=_CELL_ID)
def test_registry_serialization_round_trip(cell, tmp_path):
    grammar = cell.grammar.factory()
    size, seed, tokens = _quick_streams(cell, max_streams=1)[0]
    table = GrammarTable(grammar)
    warm = CompiledParser(table=table)
    expected = [warm.recognize(stream) for stream in [tokens] + corrupted_streams(tokens, seed)]
    path = str(tmp_path / "{}.table.json".format(cell.id))
    save_table(table, path)
    loaded = CompiledParser(table=load_table(path, cell.grammar.factory()))
    got = [loaded.recognize(stream) for stream in [tokens] + corrupted_streams(tokens, seed)]
    assert got == expected, "cell {!r}: reloaded table changed verdicts".format(cell.id)


# ---------------------------------------------------------------------------
# dense: the int-indexed core agrees with interpreted recognition
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cell", cells_for_gate("dense"), ids=_CELL_ID)
def test_registry_dense_core_agreement(cell):
    grammar = cell.grammar.factory()
    derivative = DerivativeParser(grammar.to_language())
    parser = CompiledParser(grammar)
    for size, seed, tokens in _quick_streams(cell, max_streams=1):
        for stream in [tokens] + corrupted_streams(tokens, seed=seed):
            expected = derivative.recognize(stream)
            assert parser.recognize(stream) is expected
            # The warm pass walks dense rows; stats prove it stayed on the
            # fast path and agreed anyway.
            accepted, hits, fallbacks = parser.recognize_with_stats(stream)
            assert accepted is expected
            assert hits + fallbacks > 0 or not stream


# ---------------------------------------------------------------------------
# incremental: edits converge to the from-scratch result
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cell", cells_for_gate("incremental"), ids=_CELL_ID)
def test_registry_incremental_convergence(cell):
    grammar = cell.grammar.factory()
    size, seed, tokens = _quick_streams(cell, max_streams=1)[0]
    derivative = DerivativeParser(grammar.to_language())
    document = IncrementalDocument(grammar, tokens)
    rng = random.Random(seed)
    buffer = list(tokens)
    for _ in range(3):
        position = rng.randrange(len(buffer))
        junk = [Tok("@")]
        document.apply_edit(position, position, junk)
        buffer[position:position] = junk
        assert document.recognize() is derivative.recognize(buffer)
        assert document.failure_position() == _failure_position(derivative, buffer)
        # Repair the buffer; the document must converge back.
        document.apply_edit(position, position + 1, [])
        del buffer[position]
        assert document.recognize() is derivative.recognize(buffer)
    assert buffer == list(tokens)


# ---------------------------------------------------------------------------
# pooled: one shared worker fleet agrees with single-process recognition
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def shared_pool():
    from repro.serve import PooledParseService

    pool = PooledParseService(workers=2, replication=1)
    yield pool
    pool.close()


@pytest.mark.parametrize("cell", cells_for_gate("pooled"), ids=_CELL_ID)
def test_registry_pool_parity(cell, shared_pool):
    grammar = cell.grammar.factory()
    derivative = DerivativeParser(grammar.to_language())
    size, seed, tokens = _quick_streams(cell, max_streams=1)[0]
    streams = [tokens] + corrupted_streams(tokens, seed=seed)
    expected = [derivative.recognize(stream) for stream in streams]
    assert shared_pool.recognize_many(grammar, streams) == expected, (
        "cell {!r}: pool disagrees with single-process recognition".format(cell.id)
    )


# ---------------------------------------------------------------------------
# guard: the matrix cannot grow unchecked cells
# ---------------------------------------------------------------------------
def test_every_zoo_grammar_has_differential_coverage():
    """Every grammar registered in the zoo must sit in a differential cell."""
    covered = {cell.grammar.id for cell in cells_for_gate("differential")}
    missing = [gid for gid in zoo_grammar_ids() if gid not in covered]
    assert not missing, (
        "zoo grammars without differential coverage: {} — give their cells "
        "the 'differential' gate (or add a differential cell)".format(missing)
    )


def test_every_ambiguous_grammar_has_a_count_gate():
    """Ambiguous grammars must pin their forests to closed-form counts."""
    for cell in CELLS:
        if cell.grammar.ambiguous:
            assert "ambiguity" in cell.gates, (
                "ambiguous cell {!r} lacks the ambiguity gate".format(cell.id)
            )
            assert "trees" not in cell.gates, (
                "ambiguous cell {!r} must not claim exact tree parity".format(cell.id)
            )


def test_every_ambiguous_cell_has_a_forest_gate():
    """Ambiguous cells must run the forest-query gate too.

    The ambiguity gate pins the count; the forest gate pins ranked
    extraction and sampling on the same forests — an ambiguous cell
    without it would leave count-independent extraction uncovered.
    """
    for cell in CELLS:
        if cell.grammar.ambiguous:
            assert "forest" in cell.gates, (
                "ambiguous cell {!r} lacks the forest gate — add it so the "
                "forest-query layer (count/rank/sample) is exercised on "
                "this cell's forests".format(cell.id)
            )
