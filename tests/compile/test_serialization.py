"""Tests for compiled-table serialization (ship a hot grammar pre-warmed)."""

import json

import pytest

from repro.compile import (
    CompiledParser,
    GrammarTable,
    dump_table,
    load_table,
    restore_table,
    save_table,
)
from repro.core import DerivativeParser, ReproError
from repro.grammars import arithmetic_grammar, pl0_grammar, sexpr_grammar
from repro.workloads import arithmetic_tokens, pl0_tokens, sexpr_tokens


def warmed_table(grammar, tokens):
    table = GrammarTable(grammar.language())
    CompiledParser(table=table).recognize(tokens)
    return table


class TestRoundTrip:
    def test_save_load_reproduces_recognition(self, tmp_path):
        grammar = arithmetic_grammar()
        tokens = arithmetic_tokens(120, seed=11)
        table = warmed_table(grammar, tokens)
        path = str(tmp_path / "arith.table.json")
        save_table(table, path)

        # A *fresh* grammar object with the same structure re-attaches.
        loaded = load_table(path, arithmetic_grammar())
        parser = CompiledParser(table=loaded)
        assert parser.recognize(tokens) is True
        assert parser.recognize(tokens[:-1]) is DerivativeParser(
            arithmetic_grammar().to_language()
        ).recognize(tokens[:-1])

    def test_loaded_table_runs_without_derivation(self, tmp_path):
        grammar = pl0_grammar()
        tokens = pl0_tokens(400, seed=2)
        table = warmed_table(grammar, tokens)
        path = str(tmp_path / "pl0.table.json")
        save_table(table, path)

        loaded = load_table(path, pl0_grammar())
        parser = CompiledParser(table=loaded)
        accepted, hits, fallbacks = parser.recognize_with_stats(tokens)
        assert accepted is True
        # Warm-from-disk: the whole walk stayed on serialized transitions,
        # and entirely inside the restored dense core.
        assert loaded.transitions_derived == 0
        assert fallbacks == 0
        assert hits == len(tokens)
        # And the loaded table reports its warmth (kind edges stand in for
        # class edges until a miss re-classifies a state).
        assert loaded.transition_count() > 0
        assert loaded.stats()["class_transitions"] > 0
        assert loaded.stats()["dense_states"] == loaded.state_count()

    def test_document_shape(self, tmp_path):
        table = warmed_table(sexpr_grammar(), sexpr_tokens(40, seed=1))
        data = dump_table(table)
        assert data["format"] == "repro-compiled-table"
        assert data["version"] == 2
        assert data["start"] == 0
        assert len(data["states"]) == table.state_count()
        # The dense layout rides along: a kind table plus aligned int rows.
        assert data["dense_kinds"] == table.dense.kinds
        assert all(
            len(entry["row"]) == len(data["dense_kinds"])
            for entry in data["states"]
        )
        # JSON-clean end to end.
        path = str(tmp_path / "sexpr.table.json")
        save_table(table, path)
        with open(path) as handle:
            assert json.load(handle)["fingerprint"] == table.fingerprint

    def test_fingerprint_stable_across_grammar_constructions(self):
        first = GrammarTable(arithmetic_grammar().language())
        second = GrammarTable(arithmetic_grammar().language())
        assert first.fingerprint == second.fingerprint

    def test_fingerprint_survives_in_place_pruning(self):
        # Adaptive pruning rewrites child pointers in place, and for a
        # grammar containing an unproductive subgrammar the *original*
        # nodes get rewritten too.  The fingerprint must be the pre-parse
        # snapshot or a saved table could never re-attach in a fresh
        # process (whose grammar is un-pruned).
        from repro.core import Ref, token

        def leaky_grammar():
            dead = Ref("D")
            dead.set(token("x") + dead)  # unproductive: no base case
            start = Ref("S")
            start.set((token("a") + start) | token("a") | dead)
            return start

        warmed = GrammarTable(leaky_grammar())
        assert CompiledParser(table=warmed).recognize(["a"] * 400) is True
        assert warmed.prune_passes > 0  # the in-place mutation happened
        assert warmed.fingerprint == GrammarTable(leaky_grammar()).fingerprint

    def test_fingerprint_ignores_address_bearing_reprs(self):
        # Default object reprs embed memory addresses; hashing them would
        # make a grammar reject its own serialized tables in the next
        # process.  Two separately allocated payloads must fingerprint
        # identically.
        from repro.core import Ref, epsilon, token
        from repro.core.languages import structural_fingerprint

        class Payload:
            pass

        def build():
            return Ref("S").set(token("a") + epsilon(Payload()))

        assert structural_fingerprint(build()) == structural_fingerprint(build())

    def test_unoptimized_table_round_trips(self, tmp_path):
        # The dump records the optimize flag; the loader must rebuild the
        # grammar the same way or the fingerprints can never match.
        grammar = arithmetic_grammar()
        tokens = arithmetic_tokens(40, seed=9)
        table = GrammarTable(grammar.language(), optimize=False)
        CompiledParser(table=table).recognize(tokens)
        path = str(tmp_path / "unopt.table.json")
        save_table(table, path)
        loaded = load_table(path, arithmetic_grammar())
        assert loaded.optimized is False
        assert CompiledParser(table=loaded).recognize(tokens) is True


class TestGuards:
    def test_wrong_grammar_is_refused(self):
        table = warmed_table(arithmetic_grammar(), arithmetic_tokens(30, seed=0))
        data = dump_table(table)
        with pytest.raises(ReproError):
            restore_table(data, sexpr_grammar())

    def test_strict_false_attaches_anyway(self):
        # Without strict checking the table attaches, and unknown territory
        # falls back to live derivation — wrong tables degrade to slow, not
        # to wrong answers, only when the *caller* vouches for the grammar.
        table = warmed_table(arithmetic_grammar(), arithmetic_tokens(30, seed=0))
        data = dump_table(table)
        loaded = restore_table(data, arithmetic_grammar(), strict=False)
        assert CompiledParser(table=loaded).recognize(
            arithmetic_tokens(30, seed=0)
        ) is True

    def test_rejects_foreign_documents(self):
        with pytest.raises(ReproError):
            restore_table({"format": "something-else"}, arithmetic_grammar())
        with pytest.raises(ReproError):
            restore_table(
                {"format": "repro-compiled-table", "version": 99},
                arithmetic_grammar(),
            )

    def test_rejects_pre_dense_version_naming_both(self):
        # Version-1 documents predate the dense layout; the refusal names
        # the document's version and the version this build reads.
        with pytest.raises(ReproError) as excinfo:
            restore_table(
                {"format": "repro-compiled-table", "version": 1},
                arithmetic_grammar(),
            )
        assert "1" in str(excinfo.value)
        assert "2" in str(excinfo.value)


class TestStrictFalseSemantics:
    """``strict=False``: the caller-vouches contract, pinned as regression tests.

    ``strict`` gates only the two identity guards (fingerprint,
    kind-purity).  Attached anyway, serialized transitions replay as
    saved — covered input answers for the *saved* grammar's automaton —
    while input that steps off them re-derives through witness chains
    over the *attached* grammar.
    """

    def test_same_grammar_strict_false_equals_strict(self, tmp_path):
        from repro.core.metrics import Metrics

        grammar = arithmetic_grammar()
        tokens = arithmetic_tokens(80, seed=1)
        table = warmed_table(grammar, tokens)
        path = str(tmp_path / "same.json")
        save_table(table, path)
        metrics = Metrics()
        loaded = load_table(path, arithmetic_grammar(), strict=False, metrics=metrics)
        # Structurally equivalent grammar: behaviour is exactly the strict
        # path — warm from disk, zero derivations on the covered stream.
        assert CompiledParser(table=loaded).recognize(tokens) is True
        assert loaded.transitions_derived == 0
        assert metrics.derive_calls == 0

    def test_covered_input_answers_for_the_saved_grammar(self):
        # The sharp edge the docstring warns about: attach arithmetic's
        # table to the s-expression grammar and walk a stream the saved
        # automaton covers.  The serialized transitions replay as saved,
        # so the verdict is the *saved* grammar's — even though the
        # attached grammar rejects the stream outright.
        tokens = arithmetic_tokens(60, seed=0)
        data = dump_table(warmed_table(arithmetic_grammar(), tokens))
        cross = restore_table(data, sexpr_grammar(), strict=False)
        oracle = DerivativeParser(sexpr_grammar().to_language())
        assert oracle.recognize(tokens) is False
        assert CompiledParser(table=cross).recognize(tokens) is True

    def test_uncovered_input_rederives_through_the_attached_grammar(self):
        from repro.core.metrics import Metrics

        warm = arithmetic_tokens(40, seed=2)
        data = dump_table(warmed_table(arithmetic_grammar(), warm))
        metrics = Metrics()
        loaded = restore_table(
            data, arithmetic_grammar(), strict=False, metrics=metrics
        )
        parser = CompiledParser(table=loaded)
        oracle = DerivativeParser(arithmetic_grammar().to_language())
        fresh = arithmetic_tokens(50, seed=9)
        assert parser.recognize(fresh) is oracle.recognize(fresh)
        # Divergence forced live derivation — metered into the bag the
        # caller attached at load time.
        assert metrics.derive_calls > 0


class TestMaterialization:
    def test_divergent_input_materializes_states_lazily(self, tmp_path):
        grammar = arithmetic_grammar()
        warm = arithmetic_tokens(60, seed=3)
        table = warmed_table(grammar, warm)
        path = str(tmp_path / "t.json")
        save_table(table, path)

        loaded = load_table(path, arithmetic_grammar())
        parser = CompiledParser(table=loaded)
        oracle = DerivativeParser(arithmetic_grammar().to_language())
        for seed in range(4, 10):
            stream = arithmetic_tokens(50, seed=seed)
            assert parser.recognize(stream) is oracle.recognize(stream)
            corrupted = stream[:9] + stream[10:]
            assert parser.recognize(corrupted) is oracle.recognize(corrupted)
        # Divergence forced some live derivation through witness chains.
        assert loaded.transitions_derived > 0

    def test_loaded_table_can_be_saved_again(self, tmp_path):
        grammar = arithmetic_grammar()
        tokens = arithmetic_tokens(50, seed=6)
        table = warmed_table(grammar, tokens)
        first_path = str(tmp_path / "first.json")
        save_table(table, first_path)

        loaded = load_table(first_path, arithmetic_grammar())
        CompiledParser(table=loaded).recognize(arithmetic_tokens(50, seed=7))
        second_path = str(tmp_path / "second.json")
        save_table(loaded, second_path)

        reloaded = load_table(second_path, arithmetic_grammar())
        parser = CompiledParser(table=reloaded)
        assert parser.recognize(tokens) is True
        assert parser.recognize(arithmetic_tokens(50, seed=7)) is True
