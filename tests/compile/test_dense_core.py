"""Property + concurrency tests for the dense int-indexed automaton core.

The dense core's whole bet is that a linked-row walk over int-interned
states is interchangeable with the object layer's ``by_kind``/``step_slow``
walk.  These tests drive randomly generated grammars × randomly generated
token streams through both paths and assert they agree on acceptance *and*
on the structural failure position, then hammer one cold shared table from
eight threads to exercise concurrent dense promotion and repacking.
"""

import threading

import pytest

from repro.compile import CompiledParser, GrammarTable
from repro.core import DerivativeParser, Ref, epsilon, token
from repro.grammars import arithmetic_grammar, pl0_grammar
from repro.lexer.tokens import Tok
from repro.workloads import pl0_tokens

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402


# ---------------------------------------------------------------------------
# Random grammars over a tiny kind alphabet, built from the combinators the
# engines share.  Star rides a Ref so recursion (the automaton's interesting
# case) is always on the menu.
_KINDS = ["a", "b", "c"]


def _star(inner):
    loop = Ref("R")
    loop.set((inner + loop) | epsilon())
    return loop


def _build(shape):
    if isinstance(shape, str):
        return token(shape)
    op, parts = shape
    if op == "seq":
        left, right = (_build(part) for part in parts)
        return left + right
    if op == "alt":
        left, right = (_build(part) for part in parts)
        return left | right
    return _star(_build(parts))


_SHAPES = st.recursive(
    st.sampled_from(_KINDS),
    lambda children: st.one_of(
        st.tuples(st.just("seq"), st.tuples(children, children)),
        st.tuples(st.just("alt"), st.tuples(children, children)),
        st.tuples(st.just("star"), children),
    ),
    max_leaves=8,
)

_STREAMS = st.lists(
    st.sampled_from(_KINDS + ["z"]).map(lambda kind: Tok(kind, kind)),
    max_size=20,
)


def _object_run(table, stream):
    """Acceptance + structural failure position on the object layer only."""
    state = table.start
    for position, tok in enumerate(stream):
        successor = state.by_kind.get(tok.kind)
        if successor is None:
            successor = table.step_slow(state, tok)
        if successor.dead:
            return False, position
        state = successor
    return state.accepting, None


def _dense_run(parser, stream):
    """Acceptance + structural failure position through the dense probes."""
    state = parser.start(keep_tokens=False)
    state.feed_all(stream)
    accepted = parser.recognize(stream)  # the batch dense hot loop
    if not state.failed:
        assert accepted == state.accepts()
    return accepted, state.failure_position


@settings(max_examples=60, deadline=None)
@given(shape=_SHAPES, stream=_STREAMS)
def test_dense_and_object_paths_agree_on_random_grammars(shape, stream):
    table = GrammarTable(_build(shape))
    parser = CompiledParser(table=table)
    expected = DerivativeParser(_build(shape)).recognize(stream)
    dense_accepted, dense_failure = _dense_run(parser, stream)
    object_accepted, object_failure = _object_run(table, stream)
    assert dense_accepted is expected
    assert object_accepted is expected
    assert dense_failure == object_failure
    # A second, fully warm dense run must not flip anything.
    accepted, hits, fallbacks = parser.recognize_with_stats(stream)
    assert accepted is expected
    assert hits + fallbacks == (
        len(stream) if dense_failure is None else dense_failure + 1
    )


@settings(max_examples=40, deadline=None)
@given(stream=st.lists(st.sampled_from(["+", "*", "(", ")", "NUMBER", "NAME", "@"]).map(
    lambda kind: Tok(kind, kind)
), max_size=25))
def test_dense_failure_positions_match_object_path_on_arithmetic(stream):
    table = GrammarTable(arithmetic_grammar().language())
    parser = CompiledParser(table=table)
    dense_accepted, dense_failure = _dense_run(parser, stream)
    object_accepted, object_failure = _object_run(table, stream)
    assert dense_accepted == object_accepted
    assert dense_failure == object_failure


# ---------------------------------------------------------------------------
# Concurrency: eight threads promote one cold table at once.


def test_eight_threads_promote_one_cold_table():
    table = GrammarTable(pl0_grammar().language())
    parser = CompiledParser(table=table)
    streams = [pl0_tokens(120 + 17 * worker, seed=worker) for worker in range(8)]
    expected = [DerivativeParser(pl0_grammar().to_language()).recognize(s) for s in streams]
    barrier = threading.Barrier(8)
    results = [None] * 8
    errors = []

    def run(worker):
        try:
            barrier.wait()
            for _ in range(3):  # cold, repacked, warm
                results[worker] = parser.recognize(streams[worker])
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(w,)) for w in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert results == expected
    stats = table.stats()
    assert stats["dense_states"] == table.state_count()
    assert stats["dense_hits"] > 0
    # Fully warm now: one more pass over every stream is all dense hits.
    for stream, want in zip(streams, expected):
        accepted, hits, fallbacks = parser.recognize_with_stats(stream)
        assert accepted is want
        assert fallbacks == 0
        assert hits == len(stream)
