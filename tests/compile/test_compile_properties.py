"""Property tests: transition-cache hits never change recognition results.

The compiled automaton's whole bet is that a cached ``state × token-class``
edge is interchangeable with a fresh derivation.  These properties drive
randomly generated token streams — valid, corrupted and adversarial — through
a *shared* warm table and assert that (a) answers match the interpreted
derivative parser on every stream, and (b) re-running any stream against the
now-warmer table never flips an answer.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.compile import CompiledParser, GrammarTable  # noqa: E402
from repro.core import DerivativeParser  # noqa: E402
from repro.grammars import arithmetic_grammar, balanced_parens_grammar, pl0_grammar  # noqa: E402
from repro.lexer.tokens import Tok  # noqa: E402


def _tok(kind, value=None):
    return Tok(kind, value)


ARITH_TOKENS = st.one_of(
    st.sampled_from(["+", "-", "*", "/", "(", ")"]).map(_tok),
    st.integers(min_value=0, max_value=99).map(lambda n: _tok("NUMBER", str(n))),
    st.sampled_from(["x", "y"]).map(lambda s: _tok("NAME", s)),
    st.just(_tok("@")),  # junk: exercises the all-∅ token class
)

PAREN_TOKENS = st.sampled_from(["(", ")"]).map(_tok)

PL0_TOKENS = st.one_of(
    st.sampled_from(
        ["begin", "end", ";", ":=", ".", "if", "then", "while", "do", "+", "*", "odd", "="]
    ).map(_tok),
    st.sampled_from(["x", "y"]).map(lambda s: _tok("IDENT", s)),
    st.integers(min_value=0, max_value=9).map(lambda n: _tok("NUMBER", str(n))),
)


# One shared warm table per grammar: every example makes every later example
# hit more of the cache, which is exactly the surface under test.
_ARITH_TABLE = GrammarTable(arithmetic_grammar().language())
_ARITH_ORACLE = DerivativeParser(arithmetic_grammar().to_language())
_PAREN_TABLE = GrammarTable(balanced_parens_grammar().language())
_PAREN_ORACLE = DerivativeParser(balanced_parens_grammar().to_language())
_PL0_TABLE = GrammarTable(pl0_grammar().language())
_PL0_ORACLE = DerivativeParser(pl0_grammar().to_language())


@settings(max_examples=60, deadline=None)
@given(stream=st.lists(ARITH_TOKENS, max_size=25))
def test_warm_table_matches_interpreter_on_arithmetic(stream):
    compiled = CompiledParser(table=_ARITH_TABLE)
    expected = _ARITH_ORACLE.recognize(stream)
    assert compiled.recognize(stream) is expected
    # A second run is all cache hits; the answer must not flip.
    assert compiled.recognize(stream) is expected


@settings(max_examples=60, deadline=None)
@given(stream=st.lists(PAREN_TOKENS, max_size=20))
def test_warm_table_matches_interpreter_on_parens(stream):
    # Balanced parens force unbounded nesting states — the worst case for
    # state reuse — while staying cheap to oracle.
    compiled = CompiledParser(table=_PAREN_TABLE)
    expected = _PAREN_ORACLE.recognize(stream)
    assert compiled.recognize(stream) is expected
    assert compiled.recognize(stream) is expected


@settings(max_examples=40, deadline=None)
@given(stream=st.lists(PL0_TOKENS, max_size=15))
def test_warm_table_matches_interpreter_on_pl0(stream):
    compiled = CompiledParser(table=_PL0_TABLE)
    expected = _PL0_ORACLE.recognize(stream)
    assert compiled.recognize(stream) is expected
    assert compiled.recognize(stream) is expected


@settings(max_examples=30, deadline=None)
@given(
    stream=st.lists(ARITH_TOKENS, min_size=1, max_size=15),
    data=st.data(),
)
def test_streaming_acceptance_matches_batch(stream, data):
    # accepts() after each feed equals batch recognition of the prefix.
    state = CompiledParser(table=_ARITH_TABLE).start()
    for position, tok in enumerate(stream):
        state.feed(tok)
        prefix = stream[: position + 1]
        assert state.accepts() == _ARITH_ORACLE.recognize(prefix)
        if state.failed:
            break
