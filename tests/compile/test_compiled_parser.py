"""Unit tests for the compiled derivative automaton (repro.compile)."""

import pytest

from repro.compile import (
    CompiledParser,
    GrammarTable,
    TokenClassifier,
    compile_grammar,
    discard_table,
)
from repro.core import DerivativeParser, ParseError, Ref, token
from repro.core.languages import Token, terminal_nodes
from repro.core.parse import parse as parse_fn, recognize as recognize_fn
from repro.grammars import (
    arithmetic_grammar,
    balanced_parens_grammar,
    json_grammar,
    pl0_grammar,
    sexpr_grammar,
)
from repro.lexer.tokens import Tok
from repro.workloads import arithmetic_tokens, json_tokens, pl0_tokens, sexpr_tokens


class TestTokenClassifier:
    def test_signature_partitions_alphabet_per_state(self):
        grammar = arithmetic_grammar().language()
        classifier = TokenClassifier(grammar)
        # NUMBER and NAME hit different terminals; two '+' tokens with
        # different values share a signature; junk matches nothing.
        assert classifier.signature(Tok("NUMBER", "1")) != classifier.signature(
            Tok("NAME", "x")
        )
        assert classifier.signature(Tok("+", "+")) == classifier.signature(Tok("+"))
        assert classifier.signature(Tok("@")) == frozenset()

    def test_classes_groups_by_acceptance_vector(self):
        grammar = arithmetic_grammar().language()
        classifier = TokenClassifier(grammar)
        tokens = [Tok("NUMBER", "1"), Tok("NUMBER", "2"), Tok("+"), Tok("@"), Tok("!")]
        groups = classifier.classes(tokens)
        sizes = sorted(len(group) for group in groups.values())
        # NUMBERs together, '+' alone, the two junk tokens together.
        assert sizes == [1, 2, 2]

    def test_pure_iff_no_predicate_terminals(self):
        grammar = arithmetic_grammar().language()
        assert TokenClassifier(grammar).pure is True
        lang = Ref("p").set(Token(predicate=lambda tok: tok == "x"))
        assert TokenClassifier(lang).pure is False

    def test_terminal_nodes_enumerates_token_leaves(self):
        grammar = arithmetic_grammar().language()
        kinds = {term.kind for term in terminal_nodes(grammar)}
        assert {"+", "-", "*", "/", "(", ")", "NUMBER", "NAME"} <= kinds


class TestGrammarTable:
    def test_states_are_interned_by_node_identity(self):
        table = GrammarTable(arithmetic_grammar().language())
        tokens = arithmetic_tokens(60, seed=0)
        parser = CompiledParser(table=table)
        assert parser.recognize(tokens) is True
        first_states = table.state_count()
        first_derived = table.transitions_derived
        # Re-walking identical input creates no states and derives nothing.
        assert parser.recognize(tokens) is True
        assert table.state_count() == first_states
        assert table.transitions_derived == first_derived

    def test_one_class_transition_covers_many_tokens(self):
        # All NUMBER tokens share the start state's class edge regardless of
        # value: deriving happens once, not once per distinct value.
        table = GrammarTable(arithmetic_grammar().language())
        parser = CompiledParser(table=table)
        for value in range(20):
            parser.recognize([Tok("NUMBER", str(value))])
        assert table.transitions_derived == 1

    def test_table_is_shared_across_parser_instances(self):
        grammar = arithmetic_grammar()
        first = CompiledParser(grammar)
        second = CompiledParser(grammar)
        assert first.table is second.table
        # Warmth carries over: what the first parser derived, the second
        # walks for free.
        tokens = arithmetic_tokens(40, seed=1)
        assert first.recognize(tokens) is True
        derived = first.table.transitions_derived
        assert second.recognize(tokens) is True
        assert second.table.transitions_derived == derived

    def test_compile_method_lands_on_shared_table(self):
        grammar = arithmetic_grammar()
        compiled = CompiledParser(grammar)
        via_parser = DerivativeParser(grammar.language()).compile()
        assert via_parser.table is compiled.table

    def test_compile_method_shares_from_a_grammar_object(self):
        # DerivativeParser interprets a *fresh* to_language() conversion,
        # but compile() must resolve through the original Grammar so it
        # lands on the cached language() graph the shared table anchors on.
        grammar = arithmetic_grammar()
        first = DerivativeParser(grammar).compile()
        second = DerivativeParser(grammar).compile()
        direct = CompiledParser(grammar)
        assert first.table is second.table is direct.table

    def test_max_states_caps_interning_but_not_correctness(self):
        table = GrammarTable(arithmetic_grammar().language(), max_states=3)
        parser = CompiledParser(table=table)
        tokens = arithmetic_tokens(50, seed=2)
        assert parser.recognize(tokens) is True
        assert table.state_count() <= 3
        assert parser.recognize(tokens[:-1]) is DerivativeParser(
            arithmetic_grammar().to_language()
        ).recognize(tokens[:-1])

    def test_stats_reports_table_shape(self):
        table = GrammarTable(sexpr_grammar().language())
        CompiledParser(table=table).recognize(sexpr_tokens(30, seed=0))
        stats = table.stats()
        assert stats["states"] > 1
        assert stats["class_transitions"] >= 1
        assert stats["transitions_derived"] >= stats["class_transitions"]
        assert stats["memo_entries"] > 0


class TestRecognition:
    @pytest.mark.parametrize(
        "grammar_fn,tokens_fn",
        [
            (arithmetic_grammar, lambda: arithmetic_tokens(80, seed=3)),
            (sexpr_grammar, lambda: sexpr_tokens(60, seed=3)),
            (json_grammar, lambda: json_tokens(80, seed=3)),
            (pl0_grammar, lambda: pl0_tokens(200, seed=3)),
        ],
    )
    def test_accepts_valid_streams(self, grammar_fn, tokens_fn):
        assert CompiledParser(grammar_fn()).recognize(tokens_fn()) is True

    def test_rejects_and_accepts_like_the_interpreter(self):
        grammar = balanced_parens_grammar()
        compiled = CompiledParser(grammar)
        interpreted = DerivativeParser(grammar.to_language())
        streams = [
            [],
            [Tok("(")],
            [Tok("("), Tok(")")],
            [Tok(")"), Tok("(")],
            [Tok("("), Tok("("), Tok(")"), Tok(")")],
            [Tok("("), Tok(")"), Tok(")")],
        ]
        for stream in streams:
            assert compiled.recognize(stream) is interpreted.recognize(stream), stream

    def test_empty_input_on_non_nullable_grammar(self):
        assert CompiledParser(arithmetic_grammar()).recognize([]) is False

    def test_engine_dispatch_helpers(self):
        grammar = arithmetic_grammar()
        tokens = [Tok("NUMBER", "1"), Tok("+"), Tok("NUMBER", "2")]
        assert recognize_fn(grammar, tokens, engine="compiled") is True
        tree = parse_fn(grammar, tokens, engine="compiled")
        assert tree[0] == "expr"
        with pytest.raises(ValueError):
            recognize_fn(grammar, tokens, engine="bogus")


class TestStreamingState:
    def test_feed_tracks_acceptance(self):
        state = CompiledParser(arithmetic_grammar()).start()
        state.feed(Tok("NUMBER", "1"))
        assert state.accepts() is True
        state.feed(Tok("+"))
        assert state.accepts() is False
        state.feed(Tok("NUMBER", "2"))
        assert state.accepts() is True
        assert state.position == 3

    def test_feed_reports_structural_death(self):
        # `failed` reports *structural* collapse to ∅, with the same timing
        # as the interpreted ParserState: compaction punts on cyclic cores,
        # so only derivations that really produce the ∅ node trip it — as a
        # leading ')' does on the balanced-parens grammar.
        state = CompiledParser(balanced_parens_grammar()).start()
        state.feed(Tok(")"))
        assert state.failed is True
        assert state.failure_position == 0
        # Feeding a failed state is a no-op that keeps the position.
        state.feed(Tok("("))
        assert state.failure_position == 0
        assert state.position == 1

    def test_feed_parity_with_interpreted_state(self):
        grammar = sexpr_grammar()
        compiled = CompiledParser(grammar).start()
        interpreted = DerivativeParser(grammar.to_language()).start()
        for tok in sexpr_tokens(40, seed=5):
            compiled.feed(tok)
            interpreted.feed(tok)
            assert compiled.accepts() == interpreted.accepts()
            assert compiled.failed == interpreted.failed

    def test_keep_tokens_false_streams_without_retention(self):
        state = CompiledParser(arithmetic_grammar()).start(keep_tokens=False)
        state.feed(Tok("NUMBER", "1")).feed(Tok("+")).feed(Tok("NUMBER", "2"))
        assert state.tokens is None  # nothing retained
        assert state.accepts() is True
        with pytest.raises(ValueError, match="keep_tokens=False"):
            state.tree()
        with pytest.raises(ValueError, match="keep_tokens=False"):
            state.forest()

    def test_feed_all_stops_pulling_on_failure(self):
        state = CompiledParser(balanced_parens_grammar()).start()
        stream = iter([Tok(")"), Tok("(")])
        state.feed_all(stream)
        assert state.failed is True
        assert state.failure_position == 0
        assert next(stream).kind == "("  # unconsumed remainder survives

    def test_forest_and_tree_via_fallback(self):
        state = CompiledParser(arithmetic_grammar()).start()
        state.feed_all([Tok("NUMBER", "1"), Tok("+"), Tok("NUMBER", "2")])
        tree = state.tree()
        assert tree[0] == "expr"
        with pytest.raises(ParseError):
            CompiledParser(arithmetic_grammar()).start().feed(Tok("@")).forest()


class TestParseFallback:
    def test_parse_trees_match_interpreter(self):
        grammar = arithmetic_grammar()
        tokens = arithmetic_tokens(30, seed=7)
        compiled = CompiledParser(grammar)
        interpreted = DerivativeParser(grammar.to_language())
        assert compiled.parse(tokens) == interpreted.parse(tokens)

    def test_parse_preserves_token_values(self):
        # The automaton interns transitions per token class; parse() must
        # still see the *actual* values, not the class representative's.
        grammar = arithmetic_grammar()
        compiled = CompiledParser(grammar)
        compiled.recognize([Tok("NUMBER", "111")])  # warm the class edge
        tree = compiled.parse([Tok("NUMBER", "222")])
        assert "222" in repr(tree)
        assert "111" not in repr(tree)

    def test_parse_failure_positions_match_interpreter(self):
        grammar = arithmetic_grammar()
        compiled = CompiledParser(grammar)
        interpreted = DerivativeParser(grammar.to_language())
        for stream in (
            [Tok("NUMBER", "1"), Tok("+"), Tok("*")],
            [Tok("*")],
            [Tok("NUMBER", "1"), Tok("+")],
            [Tok("("), Tok("NUMBER", "1"), Tok(")"), Tok(")")],
        ):
            with pytest.raises(ParseError) as compiled_err:
                compiled.parse(stream)
            with pytest.raises(ParseError) as interpreted_err:
                interpreted.parse(stream)
            assert compiled_err.value.position == interpreted_err.value.position

    def test_reset_keeps_the_grammar_table(self):
        grammar = arithmetic_grammar()
        parser = CompiledParser(grammar)
        parser.recognize(arithmetic_tokens(30, seed=8))
        derived = parser.table.transitions_derived
        parser.reset()
        assert parser.table.transitions_derived == derived
        assert parser.recognize(arithmetic_tokens(30, seed=8)) is True
        assert parser.table.transitions_derived == derived


class TestImpureStates:
    def test_predicate_terminals_stay_sound(self):
        # A predicate that inspects token *values* must not be kind-cached.
        small = Token(
            predicate=lambda tok: tok.kind == "N" and tok.value < 10, label="small"
        )
        big = Token(
            predicate=lambda tok: tok.kind == "N" and tok.value >= 10, label="big"
        )
        lang = Ref("start").set((small + token("x")) | big)
        parser = CompiledParser(lang)
        assert parser.recognize([Tok("N", 3), Tok("x")]) is True
        assert parser.recognize([Tok("N", 30)]) is True
        assert parser.recognize([Tok("N", 30), Tok("x")]) is False
        assert parser.recognize([Tok("N", 3)]) is False

    def test_registry_dispatch_on_raw_language(self):
        lang = Ref("L").set(token("a") + token("b"))
        first = compile_grammar(lang)
        second = compile_grammar(lang)
        assert first is second
        assert CompiledParser(lang).recognize([Tok("a"), Tok("b")]) is True


class TestTableLifetime:
    def test_non_default_options_get_a_private_table(self):
        lang = Ref("L").set(token("a") + token("b"))
        capped = compile_grammar(lang, max_states=2)
        shared = compile_grammar(lang)
        assert capped is not shared
        assert capped.max_states == 2
        assert shared.max_states is None
        # The private table never hijacks the anchor: default-config
        # callers keep sharing one table regardless of who compiled first.
        assert compile_grammar(lang) is shared
        assert compile_grammar(lang, max_states=2) is not capped  # private each time

    def test_grammar_keeps_its_table_alive_across_parsers(self):
        # The grammar owns the table: even after every parser is dropped,
        # a new parser over the living grammar finds the warm table.
        lang = Ref("L").set(token("a") + token("b"))
        first = CompiledParser(lang)
        assert first.recognize([Tok("a"), Tok("b")]) is True
        derived = first.table.transitions_derived
        del first
        second = CompiledParser(lang)
        assert second.recognize([Tok("a"), Tok("b")]) is True
        assert second.table.transitions_derived == derived  # still warm

    def test_dropping_the_grammar_releases_the_table(self):
        import gc
        import weakref

        def build():
            lang = Ref("L").set(token("a") + token("b"))
            table = compile_grammar(lang)
            CompiledParser(table=table).recognize([Tok("a"), Tok("b")])
            return weakref.ref(table.memo)

        probe = build()
        gc.collect()
        assert probe() is None, (
            "grammar + anchored table + memo must be one collectable cycle"
        )

    def test_discard_table_restarts_the_shared_cache(self):
        lang = Ref("L").set(token("a") + token("b"))
        table = compile_grammar(lang)
        CompiledParser(table=table).recognize([Tok("a"), Tok("b")])
        assert discard_table(lang) is True
        assert lang.compiled_table is None
        assert discard_table(lang) is False  # nothing anchored anymore
        # The old table still works for holders; new compiles start fresh.
        assert CompiledParser(table=table).recognize([Tok("a"), Tok("b")]) is True
        assert compile_grammar(lang) is not table

    def test_engine_dispatch_stays_warm_across_calls(self):
        # The wrappers share the grammar-anchored table too: the second
        # call must not cold-compile.
        lang = Ref("L").set(token("a") + token("b"))
        assert recognize_fn(lang, [Tok("a"), Tok("b")], engine="compiled") is True
        derived = lang.compiled_table.transitions_derived
        assert recognize_fn(lang, [Tok("a"), Tok("b")], engine="compiled") is True
        assert lang.compiled_table.transitions_derived == derived

    def test_streaming_tree_reports_exact_semantic_position(self):
        # The automaton's structural failure can lag the semantic death;
        # tree()/forest() must re-diagnose through the fallback and report
        # the same position as the interpreted parser's parse().
        grammar = arithmetic_grammar()
        stream = [Tok("NUMBER", "1"), Tok("+"), Tok("*"), Tok("NUMBER", "2")]
        state = CompiledParser(grammar).start().feed_all(stream)
        with pytest.raises(ParseError) as compiled_err:
            state.tree()
        with pytest.raises(ParseError) as interpreted_err:
            DerivativeParser(grammar.to_language()).parse(stream)
        assert compiled_err.value.position == interpreted_err.value.position == 2

    def test_engine_dispatch_rejects_interpreted_knobs(self):
        grammar = arithmetic_grammar()
        tokens = [Tok("NUMBER", "1")]
        with pytest.raises(TypeError, match="engine='compiled'"):
            recognize_fn(grammar, tokens, engine="compiled", memo="single")
        with pytest.raises(TypeError, match="engine='compiled'"):
            parse_fn(grammar, tokens, engine="compiled", compaction=False)
