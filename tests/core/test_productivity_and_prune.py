"""Tests for the productivity analysis and the empty-branch pruning pass."""

from repro.core import CompactionConfig, DerivativeParser, Ref, count_trees, epsilon, token
from repro.core.languages import EMPTY, Alt, Cat, Delta, Empty, graph_size
from repro.core.nullability import NullabilityAnalyzer
from repro.core.productivity import ProductivityAnalyzer
from repro.core.prune import live_nodes, prune_empty


class TestProductivity:
    def test_base_cases(self):
        analyzer = ProductivityAnalyzer()
        assert analyzer.productive(epsilon()) is True
        assert analyzer.productive(token("a")) is True
        assert analyzer.productive(EMPTY) is False
        assert analyzer.is_empty(EMPTY) is True

    def test_composites(self):
        analyzer = ProductivityAnalyzer()
        assert analyzer.productive(Alt(EMPTY, token("a"))) is True
        assert analyzer.productive(Alt(EMPTY, EMPTY)) is False
        assert analyzer.productive(Cat(token("a"), EMPTY)) is False
        assert analyzer.productive(Cat(token("a"), token("b"))) is True

    def test_dead_cyclic_grammar_is_empty(self):
        # L = L 'a'  — no base case, generates nothing.
        ref = Ref("L")
        ref.set(Cat(ref, token("a")))
        analyzer = ProductivityAnalyzer()
        assert analyzer.is_empty(ref) is True

    def test_live_cyclic_grammar_is_productive(self):
        ref = Ref("L")
        ref.set(Alt(Cat(ref, token("a")), token("a")))
        assert ProductivityAnalyzer().productive(ref) is True

    def test_delta_follows_nullability(self):
        nullability = NullabilityAnalyzer()
        analyzer = ProductivityAnalyzer(nullability)
        assert analyzer.productive(Delta(epsilon())) is True
        assert analyzer.productive(Delta(token("a"))) is False

    def test_results_are_cached(self):
        analyzer = ProductivityAnalyzer()
        node = Alt(token("a"), EMPTY)
        assert analyzer.productive(node) is True
        assert analyzer.productive(node) is True


class TestPruneEmpty:
    def test_dead_child_replaced_with_empty(self):
        dead = Ref("dead")
        dead.set(Cat(dead, token("a")))
        root = Alt(dead, token("b"))
        new_root, live = prune_empty(root)
        assert new_root is root
        assert isinstance(root.left, Empty)
        assert live <= 3

    def test_fully_dead_grammar_prunes_to_empty(self):
        dead = Ref("dead")
        dead.set(Cat(dead, token("a")))
        new_root, _live = prune_empty(dead)
        assert isinstance(new_root, Empty)

    def test_live_grammar_untouched(self):
        ref = Ref("L")
        ref.set(Alt(Cat(ref, token("a")), token("a")))
        size_before = graph_size(ref)
        new_root, _live = prune_empty(ref)
        assert new_root is ref
        assert graph_size(ref) == size_before

    def test_live_nodes_skips_delta_history(self):
        history = Cat(token("x"), token("y"))
        root = Cat(Delta(history), token("z"))
        nodes = live_nodes(root)
        assert history not in nodes
        assert any(isinstance(node, Delta) for node in nodes)

    def test_pruning_does_not_change_the_language(self):
        grammar = Ref("E")
        grammar.set((grammar + token("+") + grammar) | token("n"))
        tokens = list("n+n+n")
        with_prune = DerivativeParser(grammar, prune=True)
        without_prune = DerivativeParser(grammar, prune=False)
        assert with_prune.recognize(tokens) is without_prune.recognize(tokens) is True
        assert count_trees(DerivativeParser(grammar, prune=True).parse_forest(tokens)) == 2

    def test_prune_disabled_with_compaction_disabled(self):
        grammar = Ref("E")
        grammar.set((grammar + token("+") + grammar) | token("n"))
        parser = DerivativeParser(grammar, compaction=CompactionConfig.disabled())
        assert parser.prune_enabled is False
        assert parser.recognize(list("n+n")) is True

    def test_prune_passes_counted_on_long_inputs(self):
        grammar = Ref("L")
        grammar.set((grammar + token("a")) | token("a"))
        parser = DerivativeParser(grammar)
        parser.recognize(["a"] * 500)
        # The adaptive policy may or may not fire on such a small grammar, but
        # the counter must be consistent and never negative.
        assert parser.prune_passes >= 0
