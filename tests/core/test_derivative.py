"""Unit tests for the derivative function (Figure 2, Section 2.5.2)."""

import pytest

from repro.core.compaction import CompactionConfig, Compactor
from repro.core.derivative import Deriver
from repro.core.errors import GrammarError
from repro.core.languages import (
    EMPTY,
    Alt,
    Cat,
    Delta,
    Empty,
    Epsilon,
    Reduce,
    Ref,
    epsilon,
    token,
)
from repro.core.memo import NestedDictMemo, PerNodeDictMemo, SingleEntryMemo
from repro.core.metrics import Metrics
from repro.core.nullability import NullabilityAnalyzer


def make_deriver(compaction=None, memo_cls=SingleEntryMemo):
    metrics = Metrics()
    return Deriver(
        memo=memo_cls(metrics),
        compactor=Compactor(compaction or CompactionConfig.full(), metrics),
        nullability=NullabilityAnalyzer(metrics),
        metrics=metrics,
    )


class TestBaseRules:
    def test_derivative_of_empty_is_empty(self):
        deriver = make_deriver()
        assert isinstance(deriver.derive(EMPTY, "a"), Empty)

    def test_derivative_of_epsilon_is_empty(self):
        deriver = make_deriver()
        assert isinstance(deriver.derive(epsilon(), "a"), Empty)

    def test_derivative_of_delta_is_empty(self):
        deriver = make_deriver()
        assert isinstance(deriver.derive(Delta(epsilon()), "a"), Empty)

    def test_derivative_of_matching_token_is_epsilon_with_value(self):
        deriver = make_deriver()
        result = deriver.derive(token("a"), "a")
        assert isinstance(result, Epsilon)
        assert result.trees == ("a",)

    def test_derivative_of_token_keeps_semantic_value(self):
        deriver = make_deriver()
        result = deriver.derive(token("NAME"), ("NAME", "foo"))
        assert isinstance(result, Epsilon)
        assert result.trees == ("foo",)

    def test_derivative_of_non_matching_token_is_empty(self):
        deriver = make_deriver()
        assert isinstance(deriver.derive(token("a"), "b"), Empty)


class TestCompositeRules:
    def test_derivative_of_alt_derives_both_children(self):
        deriver = make_deriver()
        result = deriver.derive(Alt(token("a"), token("b")), "a")
        # Dc(a ∪ b) = ε ∪ ∅, which compaction reduces to ε.
        assert isinstance(result, Epsilon)

    def test_derivative_of_alt_without_compaction(self):
        deriver = make_deriver(CompactionConfig.disabled())
        result = deriver.derive(Alt(token("a"), token("b")), "a")
        assert isinstance(result, Alt)
        assert isinstance(result.left, Epsilon)
        assert isinstance(result.right, Empty)

    def test_derivative_of_cat_with_non_nullable_left(self):
        deriver = make_deriver(CompactionConfig.disabled())
        result = deriver.derive(Cat(token("a"), token("b")), "a")
        assert isinstance(result, Cat)
        assert isinstance(result.left, Epsilon)
        assert isinstance(result.right, type(token("b")))

    def test_derivative_of_cat_with_nullable_left_builds_union(self):
        deriver = make_deriver(CompactionConfig.disabled())
        grammar = Cat(Alt(epsilon(), token("a")), token("b"))
        result = deriver.derive(grammar, "b")
        # Dc(L1 ◦ L2) = (Dc(L1) ◦ L2) ∪ (δ(L1) ◦ Dc(L2))
        assert isinstance(result, Alt)
        assert isinstance(result.left, Cat)
        assert isinstance(result.right, Cat)
        assert isinstance(result.right.left, Delta)

    def test_derivative_of_reduce_wraps_child_derivative(self):
        fn = lambda t: ("wrapped", t)
        deriver = make_deriver(CompactionConfig.disabled())
        result = deriver.derive(Reduce(token("a"), fn), "a")
        assert isinstance(result, Reduce)
        assert result.fn is fn

    def test_derivative_of_resolved_ref_is_targets_derivative(self):
        deriver = make_deriver()
        ref = Ref("n", token("a"))
        result = deriver.derive(ref, "a")
        assert isinstance(result, Epsilon)

    def test_derivative_of_unresolved_ref_raises(self):
        deriver = make_deriver()
        with pytest.raises(GrammarError):
            deriver.derive(Ref("n"), "a")

    def test_derivative_of_incomplete_alt_raises(self):
        deriver = make_deriver()
        with pytest.raises(GrammarError):
            deriver.derive(Alt(token("a"), None), "a")


class TestCyclesAndMemoization:
    def make_left_recursive(self):
        # L = (L ◦ c) ∪ c with c matching any single 'c' token.
        ref = Ref("L")
        ref.set(Alt(Cat(ref, token("c")), token("c")))
        return ref

    def test_cyclic_grammar_derivative_terminates(self):
        deriver = make_deriver()
        result = deriver.derive(self.make_left_recursive(), "c")
        assert result is not None
        assert not isinstance(result, Empty)

    def test_cyclic_derivative_is_itself_cyclic(self):
        from repro.core.languages import reachable_nodes

        deriver = make_deriver(CompactionConfig.disabled())
        grammar = self.make_left_recursive()
        result = deriver.derive(grammar, "c")
        # The derivative graph contains a node that (transitively) points back
        # to itself, mirroring Figure 4b of the paper.
        nodes = reachable_nodes(result)
        assert any(
            child is node
            for node in nodes
            for descendant in nodes
            for child in descendant.children()
            if child is node and descendant is not node
        ) or len(nodes) > 1

    def test_repeated_derivative_uses_memo(self):
        deriver = make_deriver()
        grammar = self.make_left_recursive()
        first = deriver.derive(grammar, "c")
        calls_before = deriver.metrics.derive_uncached
        second = deriver.derive(grammar, "c")
        assert second is first
        assert deriver.metrics.derive_uncached == calls_before

    def test_memo_shares_result_across_occurrences(self):
        deriver = make_deriver()
        shared = token("a")
        grammar = Alt(Cat(shared, token("b")), Cat(shared, token("c")))
        deriver.derive(grammar, "a")
        # `shared` appears twice, but its derivative is computed only once.
        assert deriver.metrics.derive_cache_hits >= 1

    def test_single_entry_memo_evicts_on_second_token(self):
        deriver = make_deriver()
        grammar = self.make_left_recursive()
        deriver.derive(grammar, "c")
        deriver.derive(grammar, "d")
        assert deriver.metrics.memo_evictions >= 1

    @pytest.mark.parametrize("memo_cls", [SingleEntryMemo, PerNodeDictMemo, NestedDictMemo])
    def test_all_memo_strategies_agree_on_recognition(self, memo_cls):
        from repro.core.parse import DerivativeParser

        ref = Ref("L")
        ref.set(Alt(Cat(ref, token("c")), token("c")))
        parser = DerivativeParser(ref, memo=memo_cls(Metrics()))
        assert parser.recognize(["c", "c", "c"]) is True
        parser2 = DerivativeParser(ref, memo=memo_cls(Metrics()))
        assert parser2.recognize([]) is False


class TestPlaceholderBehaviour:
    def test_non_cyclic_results_are_compacted(self):
        deriver = make_deriver()
        grammar = Alt(token("a"), token("b"))
        result = deriver.derive(grammar, "z")
        # Both branches die, so compaction collapses the result to ∅.
        assert isinstance(result, Empty)

    def test_placeholders_discarded_metric(self):
        deriver = make_deriver()
        deriver.derive(Alt(token("a"), token("b")), "a")
        assert deriver.metrics.placeholders_discarded >= 1

    def test_cyclic_placeholder_children_filled(self):
        deriver = make_deriver(CompactionConfig.disabled())
        ref = Ref("L")
        ref.set(Alt(Cat(ref, token("c")), token("c")))
        result = deriver.derive(ref, "c")
        from repro.core.languages import reachable_nodes

        for node in reachable_nodes(result):
            assert not node.under_construction
            if isinstance(node, (Alt, Cat)):
                assert node.left is not None and node.right is not None
