"""Unit tests for the named reduction functions used by compaction."""

from repro.core.reductions import (
    IDENTITY,
    Compose,
    Constant,
    Identity,
    MapFirst,
    MapSecond,
    PairLeft,
    PairRight,
    ReassocToLeft,
    compose,
)


class TestBehaviour:
    def test_identity(self):
        assert IDENTITY("x") == "x"

    def test_constant(self):
        assert Constant(42)("anything") == 42

    def test_compose_applies_inner_then_outer(self):
        fn = Compose(lambda t: ("outer", t), lambda t: ("inner", t))
        assert fn("x") == ("outer", ("inner", "x"))

    def test_pair_left(self):
        assert PairLeft("s")("u") == ("s", "u")

    def test_pair_right(self):
        assert PairRight("s")("u") == ("u", "s")

    def test_map_first(self):
        assert MapFirst(str.upper)(("a", "b")) == ("A", "b")

    def test_map_second(self):
        assert MapSecond(str.upper)(("a", "b")) == ("a", "B")

    def test_reassoc_to_left(self):
        assert ReassocToLeft()(("a", ("b", "c"))) == (("a", "b"), "c")


class TestComposeHelper:
    def test_compose_elides_identity(self):
        inner = PairLeft("s")
        assert compose(IDENTITY, inner) is inner
        assert compose(inner, IDENTITY) is inner

    def test_compose_builds_compose_node(self):
        fn = compose(PairLeft("a"), PairRight("b"))
        assert isinstance(fn, Compose)
        assert fn("u") == ("a", ("u", "b"))


class TestEqualityAndRepr:
    def test_equality_by_structure(self):
        assert PairLeft("s") == PairLeft("s")
        assert PairLeft("s") != PairLeft("t")
        assert PairLeft("s") != PairRight("s")
        assert Identity() == Identity()

    def test_hashable(self):
        assert len({PairLeft("s"), PairLeft("s"), PairRight("s")}) == 2

    def test_repr_contains_arguments(self):
        assert "s" in repr(PairLeft("s"))
        assert "ReassocToLeft" in repr(ReassocToLeft())

    def test_nested_equality(self):
        a = Compose(PairLeft("x"), MapFirst(PairRight("y")))
        b = Compose(PairLeft("x"), MapFirst(PairRight("y")))
        assert a == b
