"""Property-based tests (hypothesis) for the core parser's invariants."""

import re

from hypothesis import given, settings, strategies as st

from repro.core import (
    CompactionConfig,
    DerivativeParser,
    Ref,
    count_trees,
    epsilon,
    iter_trees,
    token,
)
from repro.core.languages import Alt, Cat, Language, any_token
from repro.core.naming import NodeName


# --------------------------------------------------------------------------
# Random regular expressions: derivative parser vs Python's re module.
# --------------------------------------------------------------------------

ALPHABET = "ab"


class _Regex:
    """A tiny regex AST we can render both as `re` syntax and as combinators."""

    def to_language(self) -> Language:
        raise NotImplementedError

    def to_pattern(self) -> str:
        raise NotImplementedError


class _Lit(_Regex):
    def __init__(self, ch):
        self.ch = ch

    def to_language(self):
        return token(self.ch)

    def to_pattern(self):
        return re.escape(self.ch)


class _Eps(_Regex):
    def to_language(self):
        return epsilon(())

    def to_pattern(self):
        return ""


class _Seq(_Regex):
    def __init__(self, left, right):
        self.left, self.right = left, right

    def to_language(self):
        return Cat(self.left.to_language(), self.right.to_language())

    def to_pattern(self):
        return "(?:{})(?:{})".format(self.left.to_pattern(), self.right.to_pattern())


class _Or(_Regex):
    def __init__(self, left, right):
        self.left, self.right = left, right

    def to_language(self):
        return Alt(self.left.to_language(), self.right.to_language())

    def to_pattern(self):
        return "(?:{}|{})".format(self.left.to_pattern(), self.right.to_pattern())


class _Star(_Regex):
    def __init__(self, inner):
        self.inner = inner

    def to_language(self):
        # L* = ε ∪ (L ◦ L*) — the encoding of Section 2.2.
        star = Ref("star")
        star.set(Alt(epsilon(()), Cat(self.inner.to_language(), star)))
        return star

    def to_pattern(self):
        return "(?:{})*".format(self.inner.to_pattern())


def regex_strategy(depth=3):
    leaf = st.one_of(
        st.sampled_from(list(ALPHABET)).map(_Lit),
        st.just(_Eps()),
    )
    if depth == 0:
        return leaf
    sub = regex_strategy(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(sub, sub).map(lambda pair: _Seq(*pair)),
        st.tuples(sub, sub).map(lambda pair: _Or(*pair)),
        sub.map(_Star),
    )


@settings(max_examples=60, deadline=None)
@given(regex=regex_strategy(), text=st.text(alphabet=ALPHABET, max_size=8))
def test_recognition_matches_python_re(regex, text):
    """The derivative parser agrees with Python's regex engine on regular languages."""
    pattern = re.compile("(?:{})\\Z".format(regex.to_pattern()))
    expected = pattern.match(text) is not None
    parser = DerivativeParser(regex.to_language())
    assert parser.recognize(list(text)) is expected


@settings(max_examples=30, deadline=None)
@given(regex=regex_strategy(depth=2), text=st.text(alphabet=ALPHABET, max_size=6))
def test_compaction_and_memo_do_not_change_the_language(regex, text):
    """Every configuration of the parser recognizes exactly the same language."""
    results = set()
    for compaction in (CompactionConfig.full(), CompactionConfig.disabled()):
        for memo in ("single", "dict"):
            parser = DerivativeParser(
                regex.to_language(), memo=memo, compaction=compaction
            )
            results.add(parser.recognize(list(text)))
    assert len(results) == 1


# --------------------------------------------------------------------------
# Balanced parentheses vs a straightforward counter check.
# --------------------------------------------------------------------------

def _is_balanced(text):
    depth = 0
    for ch in text:
        depth += 1 if ch == "(" else -1
        if depth < 0:
            return False
    return depth == 0


@settings(max_examples=60, deadline=None)
@given(text=st.text(alphabet="()", max_size=16))
def test_balanced_parentheses_against_counter(text):
    grammar = Ref("S")
    grammar.set(epsilon(()) | (token("(") + grammar + token(")") + grammar))
    parser = DerivativeParser(grammar)
    assert parser.recognize(list(text)) is _is_balanced(text)


# --------------------------------------------------------------------------
# Parse-tree round trips.
# --------------------------------------------------------------------------

def _flatten(tree, out):
    if isinstance(tree, tuple):
        for part in tree:
            _flatten(part, out)
    else:
        out.append(tree)


@settings(max_examples=60, deadline=None)
@given(tokens=st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=10))
def test_parse_tree_leaves_reconstruct_the_input(tokens):
    """For a token-list grammar, flattening the parse tree gives back the input."""
    grammar = Ref("L")
    grammar.set(any_token() | (any_token() + grammar))
    parser = DerivativeParser(grammar)
    tree = parser.parse(tokens)
    leaves = []
    _flatten(tree, leaves)
    assert leaves == tokens


@settings(max_examples=40, deadline=None)
@given(n_terms=st.integers(min_value=1, max_value=6))
def test_ambiguity_counts_follow_catalan_numbers(n_terms):
    """E → E + E | n over n (+n)^k has Catalan(k) parses."""
    catalan = [1, 1, 2, 5, 14, 42, 132]
    grammar = Ref("E")
    grammar.set((grammar + token("+") + grammar) | token("n"))
    tokens = ["n"] + ["+", "n"] * (n_terms - 1)
    parser = DerivativeParser(grammar)
    forest = parser.parse_forest(tokens)
    assert count_trees(forest) == catalan[n_terms - 1]


@settings(max_examples=40, deadline=None)
@given(tokens=st.lists(st.sampled_from(["a", "b"]), min_size=0, max_size=8))
def test_every_enumerated_tree_has_the_right_number_of_leaves(tokens):
    grammar = Ref("L")
    grammar.set(epsilon(()) | (token("a") + grammar) | (token("b") + grammar))
    parser = DerivativeParser(grammar)
    if parser.recognize(tokens):
        parser2 = DerivativeParser(grammar)
        for tree in iter_trees(parser2.parse_forest(tokens), limit=5):
            leaves = []
            _flatten(tree, leaves)
            assert [leaf for leaf in leaves if leaf != ()] == tokens


# --------------------------------------------------------------------------
# Naming-scheme invariants (Definition 5).
# --------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    steps=st.lists(st.booleans(), max_size=12),
)
def test_node_names_accumulate_positions_in_order(steps):
    name = NodeName("L")
    bullet_used = False
    position = 0
    for wants_bullet in steps:
        with_bullet = wants_bullet and not bullet_used
        name = name.extend(position, with_bullet)
        bullet_used = bullet_used or with_bullet
        position += 1
    assert name.positions == tuple(range(len(steps)))
    assert name.token_part_is_contiguous()
    assert name.bullet_count <= 1


@settings(max_examples=40, deadline=None)
@given(length=st.integers(min_value=1, max_value=7))
def test_naming_lemmas_hold_on_random_inputs(length):
    """Lemmas 6 and 7 hold for the worst-case grammar on distinct-token inputs.

    The paper's counting argument assumes pairwise-distinct tokens (repeated
    tokens only make memoization reuse more nodes), so the audit is run on
    inputs of the form c1 c2 ... cn.
    """
    tokens = ["c{}".format(index) for index in range(length)]
    grammar = Ref("L")
    grammar.set(Alt(Cat(grammar, grammar), any_token("c")))
    parser = DerivativeParser(
        grammar,
        naming=True,
        compaction=CompactionConfig.disabled(),
        optimize_grammar=False,
    )
    parser.recognize(tokens)
    audit = parser.naming.audit(len(tokens))
    assert audit.lemma6_holds
    assert audit.lemma7_holds
    assert audit.within_theorem8_bound
